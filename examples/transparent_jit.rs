//! A look inside the accelOS JIT (paper §6): print a kernel's IR before and
//! after the six-step transformation, then prove semantic equivalence by
//! running both on the same buffers.
//!
//! ```text
//! cargo run --release --example transparent_jit
//! ```

use accelos::chunk::Mode;
use accelos::jit::transform_module;
use accelos::vrange::VirtualNdRange;
use kernel_ir::interp::{ArgValue, DeviceMemory, Interpreter, NdRange};

const SRC: &str = "kernel void blur(global const float* in, global float* out) {
    local float tile[16];
    size_t lid = get_local_id(0);
    size_t gid = get_global_id(0);
    size_t n = get_global_size(0);
    tile[lid] = in[gid];
    barrier(0);
    float left = tile[lid];
    if (lid > 0) { left = tile[lid - 1]; }
    float right = tile[lid];
    if (lid < get_local_size(0) - 1) { right = tile[lid + 1]; }
    out[gid] = (left + tile[lid] + right) / 3.0f;
    if (gid == n - 1) { out[gid] = tile[lid]; }
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = minicl::compile(SRC)?;
    println!(
        "=== original kernel ===\n{}",
        kernel_ir::display::print_module(&original)
    );

    let transformed = transform_module(&original, Mode::Optimized)?;
    let info = transformed.info("blur").expect("kernel exists");
    println!("=== after the accelOS JIT ===");
    println!(
        "scheduling kernel `{}` + computation fn `{}`; chunk {}, {} local declaration(s) hoisted\n",
        info.kernel, info.compute_fn, info.chunk, info.hoisted_locals
    );
    println!("{}", kernel_ir::display::print_module(&transformed.module));

    // Differential run: original over the full NDRange vs the transformed
    // scheduling kernel over 3 persistent work groups.
    let nd = NdRange::new_1d(128, 16);
    let input: Vec<f32> = (0..128).map(|i| (i as f32).sin()).collect();

    let run = |module: &kernel_ir::Module, virtualised: bool| -> Vec<f32> {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc(128 * 4);
        let b = mem.alloc(128 * 4);
        mem.write_f32(a, &input);
        let mut args = vec![ArgValue::Buffer(a), ArgValue::Buffer(b)];
        let launch_nd = if virtualised {
            let v = VirtualNdRange::new(nd);
            let rt = mem.alloc(8 * v.descriptor().len());
            mem.write_i64(rt, &v.descriptor());
            args.push(ArgValue::Buffer(rt));
            v.hardware_range(3)
        } else {
            nd
        };
        Interpreter::new(module)
            .run_kernel(&mut mem, "blur", launch_nd, &args)
            .expect("kernel runs");
        mem.read_f32(b)
    };

    let base = run(&original, false);
    let xformed = run(&transformed.module, true);
    assert_eq!(base, xformed, "the JIT must preserve semantics");
    println!(
        "differential check: 8 work groups executed by 3 persistent workers — \
         outputs identical ({} elements).",
        base.len()
    );
    Ok(())
}
