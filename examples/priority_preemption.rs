//! Preemptive priority with mid-flight worker reclamation.
//!
//! Two batch tenants (`lbm`, `tpacf`) plan the machine between themselves
//! at t=0; a premium tenant (`sgemm`) arrives a quarter into their run.
//! Under plain accelOS the premium request is admitted at its fair share
//! but its workers *queue* — the batch tenants' persistent workers hold
//! their CU slots until their queues drain. `accelos-priority` instead
//! reclaims those workers at their next chunk boundary (the paper's
//! elastic-kernel design is exactly what makes this possible without
//! hardware preemption): in-flight chunks finish, freed slots go to the
//! premium tenant, and the batch tenants continue at the reclaim floor
//! until the premium work retires and elastic growth restores them.
//!
//! ```text
//! cargo run --release --example priority_preemption
//! ```

use accel_harness::experiments::priority_workload;
use accel_harness::runner::Runner;
use accelos::policy::{AccelOsPolicy, PriorityPolicy, SchedulingPolicy};
use gpu_sim::DeviceConfig;

/// Same episode (workload, arrival rule, seed) as `repro priority` and the
/// golden snapshot in `tests/preemption_invariants.rs`, so numbers line up
/// across all three.
const SEED: u64 = 2016;

fn main() {
    let device = DeviceConfig::k20m();
    let runner = Runner::new(device.clone());
    let names = ["sgemm (premium)", "lbm (batch)", "tpacf (batch)"];
    let workload = priority_workload();

    let queueing = AccelOsPolicy::optimized();
    let preempting = PriorityPolicy::default(); // first request is premium

    // The premium tenant joins a quarter into lbm's isolated runtime.
    let t_arrive = runner.isolated_time(&queueing, workload[1], SEED) / 4;
    let arrivals = [t_arrive, 0, 0];
    println!(
        "mixed-priority episode on {}: batch tenants at t=0, premium at t={t_arrive}\n",
        device.name
    );

    // Same session (same calibrated cost draw) for both policies; the
    // cohort-planned preemptive path drives each policy's arrival hooks.
    let ctx = runner.rep_context(&workload, SEED);
    let queue_report = runner.preemptive_report(&ctx, &queueing, &arrivals);
    let preempt_report = runner.preemptive_report(&ctx, &preempting, &arrivals);

    println!("turnaround (cycles):");
    println!(
        "  tenant           {:>12} {:>12}",
        queueing.label(),
        preempting.label()
    );
    for (i, name) in names.iter().enumerate() {
        println!(
            "  {:<16} {:>12} {:>12}",
            name,
            queue_report.kernels[i].turnaround(),
            preempt_report.kernels[i].turnaround()
        );
    }

    let reclaimed: usize = preempt_report
        .kernels
        .iter()
        .map(|k| k.reclaimed_workers)
        .sum();
    let preemptions: usize = preempt_report.kernels.iter().map(|k| k.preemptions).sum();
    println!(
        "\npreemption bookkeeping: {preemptions} reclaim commands, \
         {reclaimed} workers retired at chunk boundaries"
    );
    // Conservation: executed groups vs the launch plan's total.
    let (launches, _, _) = runner.launches_preemptive(&ctx, &preempting, &arrivals);
    for (i, (k, launch)) in preempt_report.kernels.iter().zip(&launches).enumerate() {
        assert_eq!(
            k.groups_executed as u64,
            launch.plan.total_groups(),
            "reclamation must never lose or duplicate work"
        );
        println!(
            "  {:<16} executed {}/{} groups at widths shrunk-then-regrown \
             ({} machine workers total)",
            names[i],
            k.groups_executed,
            launch.plan.total_groups(),
            k.machine_wgs
        );
    }

    let gain =
        queue_report.kernels[0].turnaround() as f64 / preempt_report.kernels[0].turnaround() as f64;
    println!(
        "\npremium tenant turnaround improvement from preemption: {gain:.2}x \
         (the batch tenants pay with a longer tail, the usual priority trade)"
    );
    assert!(
        gain >= 1.5,
        "preemption should cut the premium turnaround ≥1.5x (got {gain:.2}x)"
    );
    assert_eq!(
        queue_report
            .kernels
            .iter()
            .map(|k| k.preemptions)
            .sum::<usize>(),
        0,
        "plain accelOS never preempts"
    );
}
