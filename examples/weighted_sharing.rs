//! Weighted sharing (paper §2.2): the default gives every tenant an equal
//! share, but "this can easily be achieved by changing the sharing ratio".
//! Here a latency-critical tenant gets a 3x weight over two batch tenants,
//! as a [`WeightedPolicy`] driven end-to-end through the same
//! `SchedulingPolicy` API the paper's four schemes use — the policy plans
//! the shares, the runner simulates the co-execution, and the figures
//! could sweep it with `repro --policies accelos,accelos-weighted:3:1`.
//!
//! ```text
//! cargo run --release --example weighted_sharing
//! ```

use accel_harness::runner::Runner;
use accelos::policy::{AccelOsPolicy, PlanCtx, SchedulingPolicy, WeightedPolicy};
use gpu_sim::DeviceConfig;
use parboil::KernelSpec;

fn main() {
    let device = DeviceConfig::k20m();
    let premium = KernelSpec::by_name("sgemm").expect("kernel exists");
    let batch = KernelSpec::by_name("stencil").expect("kernel exists");
    let workload = [premium, batch, batch];

    let equal = AccelOsPolicy::optimized();
    // First tenant weight 3, everyone after repeats the final weight (1).
    let weighted = WeightedPolicy::new(&[3.0, 1.0]);

    // Show the §3 allocations the two policies plan for the same batch.
    let runner = Runner::new(device.clone());
    let ctx = runner.rep_context(&workload, 7);
    let requests = ctx.exec_requests(weighted.chunk_mode());
    let plan_ctx = PlanCtx::new(&device);
    let show = |policy: &dyn SchedulingPolicy| -> Vec<u32> {
        policy
            .plan(&plan_ctx, &requests)
            .iter()
            .map(|d| d.workers)
            .collect()
    };
    println!("work-group allocations on {}:", device.name);
    println!("  equal shares:    {:?}", show(&equal));
    println!("  3:1:1 weighting: {:?}", show(&weighted));

    // Run the co-execution under both policies (same session, same cost
    // draw) and report each tenant's turnaround.
    let arrivals = [0, 0, 0];
    let t_equal = runner.run_in(&ctx, &equal, &arrivals);
    let t_weighted = runner.run_in(&ctx, &weighted, &arrivals);
    println!("\nturnaround (cycles):");
    println!("  tenant           {:>12} {:>12}", "equal", "3:1:1");
    for (i, name) in ["sgemm (premium)", "stencil (batch)", "stencil (batch)"]
        .iter()
        .enumerate()
    {
        println!(
            "  {:<16} {:>12} {:>12}",
            name, t_equal.shared[i], t_weighted.shared[i]
        );
    }
    let gain = t_equal.shared[0] as f64 / t_weighted.shared[0] as f64;
    println!("\npremium tenant speedup from weighting: {gain:.2}x");
    println!(
        "unfairness (vs equal-share isolated runs): equal {:.2}, weighted {:.2} — \
         weighting trades global fairness for the premium tenant's latency",
        t_equal.unfairness(),
        t_weighted.unfairness()
    );
    assert!(
        gain > 1.2,
        "weighting should visibly help the premium tenant (got {gain:.2}x)"
    );
}
