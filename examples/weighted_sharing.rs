//! Weighted sharing (paper §2.2): the default gives every tenant an equal
//! share, but "this can easily be achieved by changing the sharing ratio".
//! Here a latency-critical tenant gets a 3x weight over two batch tenants.
//!
//! ```text
//! cargo run --release --example weighted_sharing
//! ```

use accelos::resource::{compute_shares, compute_weighted_shares, ResourceDemand};
use gpu_sim::{DeviceConfig, KernelLaunch, LaunchPlan, Simulator, WorkGroupReq};
use parboil::KernelSpec;

fn main() {
    let device = DeviceConfig::k20m();
    let premium = KernelSpec::by_name("sgemm").expect("kernel exists");
    let batch = KernelSpec::by_name("stencil").expect("kernel exists");

    let demand = |s: &KernelSpec| ResourceDemand {
        wg_threads: s.wg_size,
        wg_local_mem: 0,
        wg_regs: s.wg_size * 16,
        original_wgs: s.default_wgs,
    };
    let demands = [demand(premium), demand(batch), demand(batch)];

    let equal = compute_shares(&device, &demands);
    let weighted = compute_weighted_shares(&device, &demands, &[3.0, 1.0, 1.0]);
    println!("work-group allocations on {}:", device.name);
    println!("  equal shares:    {:?}", equal.wgs_per_kernel);
    println!("  3:1:1 weighting: {:?}", weighted.wgs_per_kernel);

    // Simulate both allocations and report the premium tenant's turnaround.
    let simulate = |workers: &[u32]| -> Vec<u64> {
        let mut sim = Simulator::new(device.clone());
        let specs = [premium, batch, batch];
        let ids: Vec<_> = specs
            .iter()
            .zip(workers)
            .map(|(s, &w)| {
                sim.add_launch(KernelLaunch {
                    name: s.name.into(),
                    arrival: 0,
                    req: WorkGroupReq {
                        threads: s.wg_size,
                        local_mem: 0,
                        regs_per_thread: 16,
                    },
                    mem_intensity: s.mem_intensity,
                    plan: LaunchPlan::PersistentDynamic {
                        workers: w,
                        vg_costs: s.vg_costs(s.default_wgs as usize, 7).into(),
                        chunk: 1,
                        per_vg_overhead: 2,
                    },
                    max_workers: None,
                })
            })
            .collect();
        let r = sim.run();
        ids.iter().map(|&id| r.kernel(id).turnaround()).collect()
    };

    let t_equal = simulate(&equal.wgs_per_kernel);
    let t_weighted = simulate(&weighted.wgs_per_kernel);
    println!("\nturnaround (cycles):");
    println!("  tenant     equal        3:1:1");
    for (i, name) in ["sgemm (premium)", "stencil (batch)", "stencil (batch)"]
        .iter()
        .enumerate()
    {
        println!("  {:<16} {:>9} {:>12}", name, t_equal[i], t_weighted[i]);
    }
    let gain = t_equal[0] as f64 / t_weighted[0] as f64;
    println!("\npremium tenant speedup from weighting: {gain:.2}x");
    assert!(
        gain > 1.2,
        "weighting should visibly help the premium tenant"
    );
}
