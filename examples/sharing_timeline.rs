//! Draw the paper's figure 1 live: the same four tenants on one device,
//! first under standard OpenCL (serial staircase), then under accelOS
//! (side-by-side bands), as ASCII Gantt charts of the actual simulated
//! timelines.
//!
//! ```text
//! cargo run --release --example sharing_timeline
//! ```

use accelos::resource::{compute_shares, ResourceDemand};
use gpu_sim::{gantt, DeviceConfig, KernelLaunch, LaunchPlan, Simulator, WorkGroupReq};
use parboil::KernelSpec;

fn main() {
    let device = DeviceConfig::k20m();
    let names = ["bfs", "cutcp", "stencil", "tpacf"];
    let specs: Vec<&KernelSpec> = names
        .iter()
        .map(|n| KernelSpec::by_name(n).expect("kernel exists"))
        .collect();
    let req = |s: &KernelSpec| WorkGroupReq {
        threads: s.wg_size,
        local_mem: 0,
        regs_per_thread: 16,
    };

    // (a) Standard accelerator sharing: each kernel's original work groups
    // flood the FIFO dispatcher.
    let mut baseline = Simulator::new(device.clone()).with_trace();
    for s in &specs {
        baseline.add_launch(KernelLaunch {
            name: s.name.into(),
            arrival: 0,
            req: req(s),
            mem_intensity: s.mem_intensity,
            plan: LaunchPlan::Hardware {
                wg_costs: s.vg_costs(s.default_wgs as usize, 1).into(),
            },
            max_workers: None,
        });
    }
    let base_report = baseline.run();
    println!("(a) standard accelerator sharing — requests serialise\n");
    println!("{}", gantt::render(&base_report, 72));

    // (b) accelOS: §3 equal shares, persistent dynamic workers.
    let demands: Vec<ResourceDemand> = specs
        .iter()
        .map(|s| ResourceDemand {
            wg_threads: s.wg_size,
            wg_local_mem: 0,
            wg_regs: s.wg_size * 16,
            original_wgs: s.default_wgs,
        })
        .collect();
    let shares = compute_shares(&device, &demands);
    let mut accelos = Simulator::new(device).with_trace();
    for (s, &workers) in specs.iter().zip(&shares.wgs_per_kernel) {
        accelos.add_launch(KernelLaunch {
            name: s.name.into(),
            arrival: 0,
            req: req(s),
            mem_intensity: s.mem_intensity,
            plan: LaunchPlan::PersistentDynamic {
                workers,
                vg_costs: s.vg_costs(s.default_wgs as usize, 1).into(),
                chunk: 1,
                per_vg_overhead: 2,
            },
            max_workers: Some(workers * specs.len() as u32),
        });
    }
    let acc_report = accelos.run();
    println!("(b) accelOS accelerator sharing — equal space shares\n");
    println!("{}", gantt::render(&acc_report, 72));

    let speedup = base_report.total_time() as f64 / acc_report.total_time() as f64;
    println!("whole batch finishes {speedup:.2}x faster under accelOS");
}
