//! Data-centre node scenario: four tenants submit Parboil kernels to one
//! accelerator at the same instant. Compare standard OpenCL, Elastic
//! Kernels and accelOS on fairness and throughput — the paper's fig. 2
//! situation, on the workload of your choice.
//!
//! ```text
//! cargo run --release --example datacenter_sharing [kernel ...]
//! ```
//!
//! Defaults to the paper's motivation workload (bfs, cutcp, stencil,
//! tpacf); pass any of the 25 Parboil kernel names to try other mixes.

use accel_harness::runner::Runner;
use accelos::policy::PolicySet;
use gpu_sim::DeviceConfig;
use parboil::KernelSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        vec!["bfs", "cutcp", "stencil", "tpacf"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let workload: Vec<&'static KernelSpec> = names
        .iter()
        .map(|n| {
            KernelSpec::by_name(n).unwrap_or_else(|| {
                eprintln!("unknown kernel `{n}`; available:");
                for s in KernelSpec::all() {
                    eprintln!("  {}", s.name);
                }
                std::process::exit(2);
            })
        })
        .collect();

    println!("tenants: {names:?}\n");
    let runner = Runner::new(DeviceConfig::k20m());

    let mut baseline_total = 0.0;
    for policy in PolicySet::parse("baseline,ek,accelos").unwrap().iter() {
        let run = runner.run_workload(policy.as_ref(), &workload, 2016);
        if policy.name() == "baseline" {
            baseline_total = run.total_time as f64;
        }
        println!("{}:", policy.label());
        for (name, slow) in run.names.iter().zip(run.slowdowns()) {
            println!("  {name:<28} slowdown {slow:>5.2}x");
        }
        println!(
            "  unfairness {:>5.2}   overlap {:>4.0}%   throughput vs OpenCL {:>5.2}x\n",
            run.unfairness(),
            run.overlap() * 100.0,
            baseline_total / run.total_time as f64,
        );
    }
    println!(
        "accelOS slows every tenant about equally (fair space sharing) and finishes the\n\
         whole batch sooner: the mixed residency uses both the issue and memory pipes\n\
         that a serialised schedule leaves idle."
    );
}
