//! Quickstart: compile an OpenCL-style kernel, run it transparently under
//! the accelOS runtime, and read the results back.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use accelos::chunk::Mode;
use accelos::proxycl::ProxyCl;
use clrt::{Arg, Platform};
use kernel_ir::interp::NdRange;
use kernel_ir::Value;

fn main() -> Result<(), clrt::ClError> {
    // Attach the accelOS runtime to the NVIDIA-like platform. Applications
    // keep using the ordinary host API — accelOS intercepts program builds
    // (JIT transformation) and kernel launches (software scheduling).
    let mut os = ProxyCl::new(&Platform::nvidia(), Mode::Optimized);

    let program = os.build_program(
        "kernel void saxpy(global float* y, global const float* x, float a) {
            size_t i = get_global_id(0);
            y[i] = a * x[i] + y[i];
        }",
    )?;
    println!("built `saxpy`: kernels under accelOS keep their names and arity");
    let info = program.info("saxpy").expect("kernel was just built");
    println!(
        "  JIT: compute fn `{}`, dequeue chunk {}, {} hoisted locals, {} IR instructions",
        info.compute_fn, info.chunk, info.hoisted_locals, info.original_insns
    );

    // Ordinary buffer setup.
    let n = 1 << 12;
    let y = os.context_mut().create_buffer(n * 4);
    let x = os.context_mut().create_buffer(n * 4);
    os.context_mut().write_f32(y, &vec![1.0; n])?;
    os.context_mut()
        .write_f32(x, &(0..n).map(|i| i as f32).collect::<Vec<_>>())?;

    let mut kernel = program.create_kernel("saxpy")?;
    kernel.set_arg(0, Arg::Buffer(y))?;
    kernel.set_arg(1, Arg::Buffer(x))?;
    kernel.set_arg(2, Arg::Scalar(Value::F32(2.0)))?;

    // The launch goes through the Kernel Scheduler: the NDRange is recorded
    // as a Virtual NDRange in device memory, the hardware launch shrinks to
    // the fair-share worker count, and the persistent workers dequeue the
    // original work groups.
    let event = os.enqueue(&program, &kernel, NdRange::new_1d(n, 256))?;
    println!(
        "launch: device time {} cycles ({} dynamic instructions executed)",
        event.duration(),
        event.stats.total_insns
    );

    let out = os.context_mut().read_f32(y)?;
    assert_eq!(out[0], 1.0);
    assert_eq!(out[100], 201.0);
    assert_eq!(out[n - 1], 2.0 * (n as f32 - 1.0) + 1.0);
    println!("results verified: y = 2x + 1 for all {n} elements");
    Ok(())
}
