//! Deadline- and SLA-aware preemption with resumable full pause.
//!
//! The same mixed-priority episode as `examples/priority_preemption.rs`
//! — two batch tenants (`lbm`, `tpacf`) at t=0, a premium tenant
//! (`sgemm`) arriving a quarter into their run — but scored against a
//! **deadline**: the premium tenant must finish within 2x its isolated
//! time, measured from the episode start. Three reactions compared:
//!
//! * plain `accelos` admits the arrival at its share and lets it queue —
//!   the deadline is missed;
//! * `accelos-priority` floors every batch tenant at 1 worker — the
//!   deadline holds, but the batch tenants give up almost everything;
//! * `accelos-deadline` uses the harness's cached isolated-time estimate
//!   to reclaim **just enough** width for the deadline to hold — it
//!   holds while reclaiming strictly fewer workers, so the batch tenants
//!   keep more of the machine.
//!
//! The SLA leg runs `accelos-sla:4:4:0` (floors are per-request; the
//! first entry covers the premium tenant itself and never binds): the
//! first batch tenant keeps a contractual floor of 4 workers while the
//! best-effort tenant is **fully paused** (0 workers) and resumed — via
//! `gpu_sim::ResumeCmd`, fired at the premium tenant's retirement —
//! with no virtual group lost.
//!
//! ```text
//! cargo run --release --example deadline_sla
//! ```

use accel_harness::experiments::{deadline_scenario, priority_workload, DEADLINE_SLACK};
use accel_harness::runner::Runner;
use accelos::policy::{PolicySet, SchedulingPolicy, SlaPolicy};
use gpu_sim::DeviceConfig;

/// Same episode (workload, arrival rule, seed) as `repro deadline` and
/// the golden snapshot in `tests/preemption_invariants.rs`.
const SEED: u64 = 2016;

fn main() {
    let device = DeviceConfig::k20m();
    let runner = Runner::new(device.clone());
    let set = PolicySet::parse("accelos,accelos-priority,accelos-deadline").unwrap();
    let sc = deadline_scenario(&runner, &set, SEED);
    println!(
        "deadline episode on {}: batch tenants at t=0, premium at t={}, deadline {} \
         ({}x its isolated time)\n",
        device.name, sc.arrival, sc.deadline, DEADLINE_SLACK
    );
    println!(
        "  {:<18} {:>12} {:>9} {:>10}",
        "policy", "premium end", "deadline", "reclaimed"
    );
    for row in &sc.rows {
        println!(
            "  {:<18} {:>12} {:>9} {:>10}",
            row.policy,
            row.premium_end,
            if row.met { "met" } else { "MISSED" },
            row.reclaimed_workers
        );
    }

    // The acceptance bar: accelos-deadline meets a deadline that
    // queueing accelos misses, while reclaiming strictly fewer total
    // workers than the all-or-floor accelos-priority.
    let queueing = &sc.rows[0];
    let priority = &sc.rows[1];
    let deadline = &sc.rows[2];
    assert!(
        !queueing.met,
        "queueing accelOS should miss the deadline (end {} vs {})",
        queueing.premium_end, sc.deadline
    );
    assert!(
        priority.met && deadline.met,
        "both preemptive policies should hold the deadline"
    );
    assert!(
        deadline.reclaimed_workers < priority.reclaimed_workers,
        "just-enough reclamation should take strictly fewer workers: {} vs {}",
        deadline.reclaimed_workers,
        priority.reclaimed_workers
    );
    println!(
        "\naccelOS-deadline holds the deadline reclaiming {} workers where \
         accelOS-priority takes {} — the batch tenants keep the difference.",
        deadline.reclaimed_workers, priority.reclaimed_workers
    );

    // SLA leg: a contractual floor of 4 for the first batch tenant, full
    // pause + guaranteed resume for the best-effort one.
    let workload = priority_workload();
    let arrivals = vec![sc.arrival, 0, 0];
    let ctx = runner.rep_context(&workload, SEED);
    let sla = SlaPolicy::new(&[4, 4, 0]);
    let report = runner.preemptive_report(&ctx, &sla, &arrivals);
    let (launches, _, resumes) = runner.launches_preemptive(&ctx, &sla, &arrivals);
    println!(
        "\nSLA tiers under {} (floors: lbm 4, tpacf 0 = best-effort full pause):",
        sla.name()
    );
    for (kr, launch) in report.kernels.iter().zip(&launches) {
        println!(
            "  {:<8} end {:>7}  executed {}/{} groups, {} pauses, {} resumes \
             ({} workers respawned)",
            kr.name,
            kr.end,
            kr.groups_executed,
            launch.plan.total_groups(),
            kr.pauses,
            kr.resumes,
            kr.resumed_workers
        );
        assert_eq!(
            kr.groups_executed as u64,
            launch.plan.total_groups(),
            "a paused tenant must lose no work"
        );
    }
    let paused = &report.kernels[2];
    assert_eq!(paused.pauses, 1, "tpacf is fully paused");
    assert_eq!(
        paused.resumes, 1,
        "and resumed when the premium tenant retires"
    );
    assert!(paused.resumed_workers > 0);
    assert_eq!(
        resumes.len(),
        1,
        "the planner paired the pause with a resume"
    );
    assert!(
        paused.end > report.kernels[0].end,
        "the paused tenant finishes after the premium tenant that paused it"
    );
    println!(
        "\nthe best-effort tenant was paused to 0 workers and resumed at the premium \
         retirement (t={}); every virtual group still executed exactly once.",
        report.kernels[0].end
    );
}
