//! Deadline- and SLA-aware preemption with resumable full pause.
//!
//! The same mixed-priority episode as `examples/priority_preemption.rs`
//! — two batch tenants (`lbm`, `tpacf`) at t=0, a premium tenant
//! (`sgemm`) arriving a quarter into their run — but scored against a
//! **deadline**: the premium tenant must finish within 2x its isolated
//! time, measured from the episode start. Three reactions compared:
//!
//! * plain `accelos` admits the arrival at its share and lets it queue —
//!   the deadline is missed;
//! * `accelos-priority` floors every batch tenant at 1 worker — the
//!   deadline holds, but the batch tenants give up almost everything;
//! * `accelos-deadline` uses the harness's cached isolated-time estimate
//!   to reclaim **just enough** width for the deadline to hold — it
//!   holds while reclaiming strictly fewer workers, so the batch tenants
//!   keep more of the machine.
//!
//! The SLA leg runs `accelos-sla:4:4:0` (floors are per-request; the
//! first entry covers the premium tenant itself and never binds): the
//! first batch tenant keeps a contractual floor of 4 workers while the
//! best-effort tenant is **fully paused** (0 workers) and resumed — via
//! `gpu_sim::ResumeCmd`, fired at the premium tenant's retirement —
//! with no virtual group lost.
//!
//! The transparent leg replays the just-enough story through `ProxyCl`,
//! where no harness cache exists: a [`ProfileStore`] is calibrated by
//! two solo launches, persisted, loaded into a fresh session, and the
//! deadlined tenant then holds its deadline while reclaiming strictly
//! fewer workers than the same episode runs uncalibrated (which
//! degrades to the all-or-floor fallback).
//!
//! ```text
//! cargo run --release --example deadline_sla
//! ```

use accel_harness::experiments::{deadline_scenario, priority_workload, DEADLINE_SLACK};
use accel_harness::runner::Runner;
use accelos::policy::{DeadlinePolicy, PolicySet, SchedulingPolicy, SlaPolicy};
use accelos::proxycl::{PendingExec, ProxyCl};
use clrt::{Arg, Platform};
use gpu_sim::{DeviceConfig, SimReport};
use kernel_ir::interp::NdRange;
use sched_metrics::profile::ProfileStore;
use std::sync::Arc;

/// Same episode (workload, arrival rule, seed) as `repro deadline` and
/// the golden snapshot in `tests/preemption_invariants.rs`.
const SEED: u64 = 2016;

/// Transparent-plane scenario shapes, shared with
/// `tests/profile_plane.rs`: the deadlined tenant launches 32 groups of
/// 32 threads (wide enough that the thread-share model binds, not the
/// tiny device's wg-slot budget); the batch tenants 8 groups each.
const PREMIUM_ITEMS: usize = 1024;
const BATCH_ITEMS: usize = 256;
const WG: usize = 32;

const SRC: &str = "kernel void scale(global float* b, float s) {
    size_t i = get_global_id(0);
    b[i] = b[i] * s;
}";

/// One deadline episode on the transparent plane: two short batch
/// tenants at t=0, the deadlined tenant joining at t=60, planned by
/// `accelos-deadline` with (optionally) a calibration store attached.
fn transparent_episode(store: Option<ProfileStore>) -> SimReport {
    let mut os = ProxyCl::with_policy(&Platform::test_tiny(), Arc::new(DeadlinePolicy::default()));
    if let Some(s) = store {
        os = os.with_profile_store(s);
    }
    let program = os.build_program(SRC).unwrap();
    let chunk = program.info("scale").unwrap().chunk;
    let mut make = |val: f32, items: usize| {
        let mut k = program.create_kernel("scale").unwrap();
        let buf = os.context_mut().create_buffer(items * 4);
        os.context_mut().write_f32(buf, &vec![1.0; items]).unwrap();
        k.set_arg(0, Arg::Buffer(buf)).unwrap();
        k.set_arg(1, Arg::Scalar(kernel_ir::Value::F32(val)))
            .unwrap();
        (k, buf, items)
    };
    let kernels = [
        make(2.0, PREMIUM_ITEMS),
        make(5.0, BATCH_ITEMS),
        make(9.0, BATCH_ITEMS),
    ];
    let batch = kernels
        .iter()
        .map(|(k, _, items)| PendingExec {
            kernel: k.clone(),
            chunk,
            ndrange: NdRange::new_1d(*items, WG),
        })
        .collect();
    os.enqueue_concurrent_at(batch, &[60, 0, 0]).unwrap();
    for (i, (_, buf, items)) in kernels.iter().enumerate() {
        let expect = [2.0f32, 5.0, 9.0][i];
        assert_eq!(
            os.context_mut().read_f32(*buf).unwrap(),
            vec![expect; *items],
            "transparent episode computed the wrong result"
        );
    }
    os.last_report()
        .cloned()
        .expect("an enqueue just completed")
}

/// Calibrate a fresh store with one solo launch per scenario shape (a
/// solo run's observation is its exact busy time), then round-trip it
/// through the on-disk format — the `--profile-store` dataflow.
fn calibrated_store() -> ProfileStore {
    let mut os = ProxyCl::with_policy(&Platform::test_tiny(), Arc::new(DeadlinePolicy::default()))
        .with_profile_store(ProfileStore::new());
    let program = os.build_program(SRC).unwrap();
    for items in [PREMIUM_ITEMS, BATCH_ITEMS] {
        let mut k = program.create_kernel("scale").unwrap();
        let buf = os.context_mut().create_buffer(items * 4);
        os.context_mut().write_f32(buf, &vec![1.0; items]).unwrap();
        k.set_arg(0, Arg::Buffer(buf)).unwrap();
        k.set_arg(1, Arg::Scalar(kernel_ir::Value::F32(1.5)))
            .unwrap();
        os.enqueue(&program, &k, NdRange::new_1d(items, WG))
            .unwrap();
    }
    let store = os.take_profile_store().expect("store was attached");
    let dir = std::env::temp_dir().join(format!("accelos-deadline-sla-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("session.profile");
    store.save(&path).unwrap();
    let loaded = ProfileStore::load(&path).unwrap();
    assert_eq!(
        loaded.render(),
        store.render(),
        "profile-store round-trip must be byte-stable"
    );
    std::fs::remove_dir_all(&dir).ok();
    loaded
}

fn main() {
    let device = DeviceConfig::k20m();
    let runner = Runner::new(device.clone());
    let set = PolicySet::parse("accelos,accelos-priority,accelos-deadline").unwrap();
    let sc = deadline_scenario(&runner, &set, SEED);
    println!(
        "deadline episode on {}: batch tenants at t=0, premium at t={}, deadline {} \
         ({}x its isolated time)\n",
        device.name, sc.arrival, sc.deadline, DEADLINE_SLACK
    );
    println!(
        "  {:<18} {:>12} {:>9} {:>10}",
        "policy", "premium end", "deadline", "reclaimed"
    );
    for row in &sc.rows {
        println!(
            "  {:<18} {:>12} {:>9} {:>10}",
            row.policy,
            row.premium_end,
            if row.met { "met" } else { "MISSED" },
            row.reclaimed_workers
        );
    }

    // The acceptance bar: accelos-deadline meets a deadline that
    // queueing accelos misses, while reclaiming strictly fewer total
    // workers than the all-or-floor accelos-priority.
    let queueing = &sc.rows[0];
    let priority = &sc.rows[1];
    let deadline = &sc.rows[2];
    assert!(
        !queueing.met,
        "queueing accelOS should miss the deadline (end {} vs {})",
        queueing.premium_end, sc.deadline
    );
    assert!(
        priority.met && deadline.met,
        "both preemptive policies should hold the deadline"
    );
    assert!(
        deadline.reclaimed_workers < priority.reclaimed_workers,
        "just-enough reclamation should take strictly fewer workers: {} vs {}",
        deadline.reclaimed_workers,
        priority.reclaimed_workers
    );
    println!(
        "\naccelOS-deadline holds the deadline reclaiming {} workers where \
         accelOS-priority takes {} — the batch tenants keep the difference.",
        deadline.reclaimed_workers, priority.reclaimed_workers
    );

    // SLA leg: a contractual floor of 4 for the first batch tenant, full
    // pause + guaranteed resume for the best-effort one.
    let workload = priority_workload();
    let arrivals = vec![sc.arrival, 0, 0];
    let ctx = runner.rep_context(&workload, SEED);
    let sla = SlaPolicy::new(&[4, 4, 0]);
    let report = runner.preemptive_report(&ctx, &sla, &arrivals);
    let (launches, _, resumes) = runner.launches_preemptive(&ctx, &sla, &arrivals);
    println!(
        "\nSLA tiers under {} (floors: lbm 4, tpacf 0 = best-effort full pause):",
        sla.name()
    );
    for (kr, launch) in report.kernels.iter().zip(&launches) {
        println!(
            "  {:<8} end {:>7}  executed {}/{} groups, {} pauses, {} resumes \
             ({} workers respawned)",
            kr.name,
            kr.end,
            kr.groups_executed,
            launch.plan.total_groups(),
            kr.pauses,
            kr.resumes,
            kr.resumed_workers
        );
        assert_eq!(
            kr.groups_executed as u64,
            launch.plan.total_groups(),
            "a paused tenant must lose no work"
        );
    }
    let paused = &report.kernels[2];
    assert_eq!(paused.pauses, 1, "tpacf is fully paused");
    assert_eq!(
        paused.resumes, 1,
        "and resumed when the premium tenant retires"
    );
    assert!(paused.resumed_workers > 0);
    assert_eq!(
        resumes.len(),
        1,
        "the planner paired the pause with a resume"
    );
    assert!(
        paused.end > report.kernels[0].end,
        "the paused tenant finishes after the premium tenant that paused it"
    );
    println!(
        "\nthe best-effort tenant was paused to 0 workers and resumed at the premium \
         retirement (t={}); every virtual group still executed exactly once.",
        report.kernels[0].end
    );

    // Transparent leg: the same just-enough story through ProxyCl, where
    // the only source of isolated-time estimates is the calibration
    // plane. Uncalibrated, the deadline policy cannot size the reclaim
    // and degrades to the all-or-floor fallback; a store calibrated by
    // two solo launches (and round-tripped through disk, exactly the
    // `repro --profile-store` dataflow) restores minimal reclamation.
    let store = calibrated_store();
    let estimate = store
        .estimate("scale", PREMIUM_ITEMS)
        .expect("solo launch calibrated the premium shape");
    let deadline = (DeadlinePolicy::default().slack() * estimate as f64) as u64;
    let rep_cold = transparent_episode(None);
    let rep_warm = transparent_episode(Some(store));
    let reclaimed =
        |r: &SimReport| -> usize { r.kernels.iter().map(|k| k.reclaimed_workers).sum() };
    let (cold, warm) = (reclaimed(&rep_cold), reclaimed(&rep_warm));
    println!(
        "\ntransparent plane (ProxyCl on the tiny device, deadline {deadline} = \
         {DEADLINE_SLACK}x the calibrated isolated time {estimate}):"
    );
    println!(
        "  uncalibrated  premium end {:>5}  reclaimed {:>2} workers (all-or-floor fallback)",
        rep_cold.kernels[0].end, cold
    );
    println!(
        "  calibrated    premium end {:>5}  reclaimed {:>2} workers (just enough)",
        rep_warm.kernels[0].end, warm
    );
    assert!(
        warm < cold,
        "the calibrated run must reclaim strictly fewer workers ({warm} vs {cold})"
    );
    assert!(
        rep_warm.kernels[0].end <= deadline,
        "calibrated transparent run missed its deadline: end {} > {deadline}",
        rep_warm.kernels[0].end
    );
    println!(
        "\nwith a persisted profile store the transparent runtime holds the same deadline \
         while the batch tenants keep {} more worker{}.",
        cold - warm,
        if cold - warm == 1 { "" } else { "s" }
    );
}
