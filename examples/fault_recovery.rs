//! Fault injection and recovery: a CU dies mid-episode, nothing is lost.
//!
//! The same mixed-priority episode as `examples/priority_preemption.rs`
//! — two batch tenants (`lbm`, `tpacf`) at t=0, a premium tenant
//! (`sgemm`) arriving a quarter into their run under `accelos-priority`
//! — but this time one compute unit fails **permanently** right around
//! the premium arrival. The fault plane's contract, asserted below:
//!
//! * **zero lost work** — every in-flight virtual group the failure
//!   rolls back is requeued and re-executes exactly once
//!   (`groups_retried == chunks_lost`, and every launch still completes
//!   its full plan);
//! * **proportional degradation** — losing 1 of N CUs may slow the
//!   premium tenant down, but by *less* than the removed capacity
//!   fraction `1/(N-1)`: the scheduler re-places the displaced workers
//!   instead of serialising behind the hole.
//!
//! ```text
//! cargo run --release --example fault_recovery
//! ```

use accel_harness::experiments::priority_workload;
use accel_harness::runner::Runner;
use accelos::policy::PriorityPolicy;
use gpu_sim::{DeviceConfig, FaultEvent, FaultKind, FaultPlan};

/// Same episode (workload, arrival rule, seed) as `repro priority` and
/// the golden snapshot in `tests/preemption_invariants.rs`.
const SEED: u64 = 2016;

fn main() {
    let device = DeviceConfig::k20m();
    let num_cus = device.num_cus;
    let runner = Runner::new(device.clone());
    let policy = PriorityPolicy::default();
    let workload = priority_workload();
    let t_batch = runner.isolated_time(&policy, workload[1], SEED);
    let arrival = t_batch / 4;
    let arrivals = vec![arrival, 0, 0];
    let ctx = runner.rep_context(&workload, SEED);

    // The control: the clean episode.
    let clean = runner.preemptive_report(&ctx, &policy, &arrivals);

    // The experiment: one CU fails for good just after the premium
    // tenant arrives — the worst moment, the machine is fully committed.
    let fault_at = arrival + 500;
    let faults = FaultPlan::new(vec![FaultEvent {
        at: fault_at,
        kind: FaultKind::CuFailure {
            cu: 0,
            repair_at: None,
        },
    }]);
    let faulty = runner.faulty_report(&ctx, &policy, &arrivals, &faults);
    let (launches, _, _) = runner.launches_preemptive(&ctx, &policy, &arrivals);

    println!(
        "episode on {} ({num_cus} CUs): batch tenants at t=0, premium at t={arrival}, \
         CU 0 fails permanently at t={fault_at}\n",
        device.name
    );
    println!(
        "  {:<8} {:>12} {:>12} {:>10} {:>8} {:>8}",
        "kernel", "clean end", "faulty end", "executed", "lost", "retried"
    );
    let mut lost = 0;
    let mut retried = 0;
    for ((ck, fk), launch) in clean.kernels.iter().zip(&faulty.kernels).zip(&launches) {
        println!(
            "  {:<8} {:>12} {:>12} {:>10} {:>8} {:>8}",
            fk.name, ck.end, fk.end, fk.groups_executed, fk.chunks_lost, fk.groups_retried
        );
        // Zero lost work: the full plan still executes, faults or not.
        assert_eq!(
            fk.groups_executed as u64,
            launch.plan.total_groups(),
            "{}: a CU failure must not lose work",
            fk.name
        );
        assert!(!fk.aborted);
        lost += fk.chunks_lost;
        retried += fk.groups_retried;
    }
    assert_eq!(faulty.faults_injected, 1);
    assert!(
        lost > 0,
        "the failure must catch work in flight on a committed machine"
    );
    assert_eq!(
        retried, lost,
        "every lost in-flight group re-executes exactly once"
    );
    println!(
        "\n{lost} in-flight virtual groups were rolled back by the failure and all \
         {retried} re-executed exactly once — zero work-groups lost."
    );

    // Proportional degradation: the premium tenant pays less than the
    // removed capacity fraction, because survivors are re-planned at
    // their degraded share and displaced workers migrate instead of
    // queueing behind the dead CU.
    let clean_tt = clean.kernels[0].turnaround() as f64;
    let faulty_tt = faulty.kernels[0].turnaround() as f64;
    let slowdown = faulty_tt / clean_tt - 1.0;
    let capacity_removed = 1.0 / (num_cus as f64 - 1.0);
    println!(
        "\npremium turnaround: clean {} -> faulty {} (+{:.2}%), removed capacity {:.2}%",
        clean.kernels[0].turnaround(),
        faulty.kernels[0].turnaround(),
        slowdown * 100.0,
        capacity_removed * 100.0
    );
    assert!(
        slowdown < capacity_removed,
        "premium degradation {:.4} must stay below the removed capacity fraction {:.4}",
        slowdown,
        capacity_removed
    );
    println!(
        "the premium tenant degrades by less than the capacity the machine lost — \
         recovery is work-conserving, not serialising."
    );
}
