//! In-order command queues with profiling events.
//!
//! Execution takes place on two planes (DESIGN.md):
//!
//! * **functional** — the kernel really runs, via the `kernel-ir`
//!   interpreter, against the context's device memory;
//! * **timing** — the launch's device time is obtained by running the
//!   `gpu-sim` machine model with per-work-group costs taken from the
//!   interpreter's dynamic statistics.
//!
//! Events therefore report both correct buffer contents and device-model
//! times, like `CL_QUEUE_PROFILING_ENABLE`.

use crate::context::Context;
use crate::error::ClError;
use crate::program::Kernel;
use gpu_sim::{KernelLaunch, LaunchPlan, Simulator, WorkGroupReq};
use kernel_ir::interp::{DynStats, Interpreter, NdRange};

/// A profiling event (`cl_event` with `CL_PROFILING_COMMAND_*`).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Queue time of the command.
    pub queued: u64,
    /// Time the first work group became resident.
    pub start: u64,
    /// Completion time.
    pub end: u64,
    /// Dynamic statistics of the functional execution.
    pub stats: DynStats,
}

impl Event {
    /// Device-model duration (`end - start`).
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// An in-order command queue on one context.
///
/// # Examples
///
/// ```
/// use clrt::{Arg, CommandQueue, Context, Platform, Program};
/// use kernel_ir::interp::NdRange;
///
/// # fn main() -> Result<(), clrt::ClError> {
/// let mut ctx = Context::new(&Platform::test_tiny());
/// let program = Program::build(
///     "kernel void twice(global float* b) {
///         size_t i = get_global_id(0);
///         b[i] = b[i] * 2.0f;
///     }",
/// )?;
/// let mut k = program.create_kernel("twice")?;
/// let buf = ctx.create_buffer(4 * 4);
/// ctx.write_f32(buf, &[1.0, 2.0, 3.0, 4.0])?;
/// k.set_arg(0, Arg::Buffer(buf))?;
///
/// let mut q = CommandQueue::new();
/// let ev = q.enqueue_nd_range(&mut ctx, &k, NdRange::new_1d(4, 2))?;
/// assert!(ev.end > ev.start);
/// assert_eq!(ctx.read_f32(buf)?, vec![2.0, 4.0, 6.0, 8.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct CommandQueue {
    cursor: u64,
}

impl CommandQueue {
    /// An empty queue starting at time zero.
    pub fn new() -> Self {
        CommandQueue::default()
    }

    /// Device time at which all enqueued commands have completed
    /// (`clFinish`).
    pub fn finish(&self) -> u64 {
        self.cursor
    }

    /// Launch `kernel` over `ndrange` (`clEnqueueNDRangeKernel`).
    ///
    /// Runs the kernel functionally, then models its device time; in-order
    /// semantics mean the launch starts when the previous command ended.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidArgs`] for unbound arguments,
    /// [`ClError::InvalidWorkGroupSize`] / [`ClError::OutOfResources`] for
    /// geometry the device cannot host, and [`ClError::ExecutionFailure`]
    /// if the kernel faults.
    pub fn enqueue_nd_range(
        &mut self,
        ctx: &mut Context,
        kernel: &Kernel,
        ndrange: NdRange,
    ) -> Result<Event, ClError> {
        let args = kernel.resolved_args()?;
        let req = launch_requirements(kernel, ndrange);
        let dev = ctx.device().clone();
        if req.threads > dev.threads_per_cu {
            return Err(ClError::InvalidWorkGroupSize(format!(
                "work group of {} threads exceeds the device limit {}",
                req.threads, dev.threads_per_cu
            )));
        }
        if req.local_mem > dev.local_mem_per_cu || req.regs_total() > dev.regs_per_cu {
            return Err(ClError::OutOfResources(format!(
                "work group needs {}B local / {} regs; device offers {}B / {}",
                req.local_mem,
                dev.local_mem_per_cu,
                dev.regs_per_cu,
                req.regs_total()
            )));
        }

        // Functional plane: kernels execute on the bytecode tier
        // (`ACCELOS_EXEC_TIER` selects `tree`/`bytecode`/`bytecode-opt`;
        // unsupported constructs fall back to the tree-walker), sharding
        // work groups across host threads when the accelcheck race
        // analysis proves the launch free of cross-group races — with
        // bit-identical memory contents and statistics on every path.
        // Verdicts come from the `ModuleFacts` cache computed once at
        // program build time.
        let mut interp = Interpreter::with_facts(kernel.module(), kernel.facts());
        interp.set_exec_tier(kernel_ir::ExecTier::from_env());
        let stats = interp
            .run_kernel_tiered(ctx.memory_mut(), kernel.name(), ndrange, &args)
            .map_err(|e| ClError::ExecutionFailure(e.to_string()))?;

        // Timing plane: one-launch machine simulation with per-WG costs from
        // the dynamic instruction counts.
        let mem_intensity = if stats.total_insns == 0 {
            0.0
        } else {
            (stats.mem_ops as f64 / stats.total_insns as f64).min(1.0)
        };
        let wg_costs: gpu_sim::Costs = stats.insns_per_wg.iter().map(|&c| c.max(1)).collect();
        let mut sim = Simulator::new(dev);
        let id = sim.add_launch(KernelLaunch {
            name: kernel.name().to_string(),
            arrival: 0,
            req,
            mem_intensity,
            plan: LaunchPlan::Hardware { wg_costs },
            max_workers: None,
        });
        let report = sim.run();
        let k = report.kernel(id);

        let queued = self.cursor;
        let start = queued + k.first_start.unwrap_or(0);
        let end = queued + k.end;
        self.cursor = end;
        Ok(Event {
            queued,
            start,
            end,
            stats,
        })
    }
}

/// Per-work-group device resources a launch of `kernel` over `ndrange`
/// occupies: threads from the geometry, local memory from static
/// declarations plus dynamic `local` arguments, registers from the profile.
pub fn launch_requirements(kernel: &Kernel, ndrange: NdRange) -> WorkGroupReq {
    let profile = kernel.profile();
    WorkGroupReq {
        threads: ndrange.wg_size() as u32,
        local_mem: (profile.static_local_bytes + kernel.dynamic_local_bytes()) as u32,
        regs_per_thread: profile.regs_per_item.max(1) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::program::{Arg, Program};

    fn setup() -> (Context, Kernel, crate::context::Buffer) {
        let mut ctx = Context::new(&Platform::test_tiny());
        let p = Program::build(
            "kernel void inc(global int* b) {
                size_t i = get_global_id(0);
                b[i] = b[i] + 1;
            }",
        )
        .unwrap();
        let mut k = p.create_kernel("inc").unwrap();
        let buf = ctx.create_buffer(16 * 4);
        ctx.write_i32(buf, &[0; 16]).unwrap();
        k.set_arg(0, Arg::Buffer(buf)).unwrap();
        (ctx, k, buf)
    }

    #[test]
    fn in_order_queue_serialises_commands() {
        let (mut ctx, k, buf) = setup();
        let mut q = CommandQueue::new();
        let e1 = q
            .enqueue_nd_range(&mut ctx, &k, NdRange::new_1d(16, 4))
            .unwrap();
        let e2 = q
            .enqueue_nd_range(&mut ctx, &k, NdRange::new_1d(16, 4))
            .unwrap();
        assert!(e2.queued >= e1.end);
        assert_eq!(q.finish(), e2.end);
        assert_eq!(ctx.read_i32(buf).unwrap(), vec![2; 16]);
    }

    #[test]
    fn event_times_are_consistent() {
        let (mut ctx, k, _) = setup();
        let mut q = CommandQueue::new();
        let e = q
            .enqueue_nd_range(&mut ctx, &k, NdRange::new_1d(16, 4))
            .unwrap();
        assert!(e.queued <= e.start);
        assert!(e.start < e.end);
        assert!(e.stats.total_insns > 0);
    }

    #[test]
    fn oversized_work_group_rejected() {
        let (mut ctx, k, _) = setup();
        let mut q = CommandQueue::new();
        // test_tiny allows 128 threads per CU.
        let err = q.enqueue_nd_range(&mut ctx, &k, NdRange::new_1d(512, 256));
        assert!(matches!(err, Err(ClError::InvalidWorkGroupSize(_))));
    }

    #[test]
    fn execution_failures_are_surfaced() {
        let mut ctx = Context::new(&Platform::test_tiny());
        let p = Program::build("kernel void oob(global int* b) { b[1000000] = 1; }").unwrap();
        let mut k = p.create_kernel("oob").unwrap();
        let buf = ctx.create_buffer(4);
        k.set_arg(0, Arg::Buffer(buf)).unwrap();
        let mut q = CommandQueue::new();
        let err = q.enqueue_nd_range(&mut ctx, &k, NdRange::new_1d(1, 1));
        assert!(matches!(err, Err(ClError::ExecutionFailure(_))));
    }
}
