//! Platforms and devices.
//!
//! Mirrors `clGetPlatformIDs`/`clGetDeviceIDs`: the process sees a fixed set
//! of platforms, each exposing one simulated accelerator.

use gpu_sim::DeviceConfig;

/// An OpenCL-style platform: a vendor runtime exposing one device.
///
/// # Examples
///
/// ```
/// let platforms = clrt::Platform::all();
/// assert_eq!(platforms.len(), 2);
/// assert!(platforms[0].device().num_cus > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    name: String,
    device: DeviceConfig,
}

impl Platform {
    /// Every platform visible to the process (the paper's two evaluation
    /// machines).
    pub fn all() -> Vec<Platform> {
        vec![Platform::nvidia(), Platform::amd()]
    }

    /// The NVIDIA-like platform (Tesla K20m preset).
    pub fn nvidia() -> Platform {
        Platform {
            name: "NVIDIA OpenCL (simulated)".into(),
            device: DeviceConfig::k20m(),
        }
    }

    /// The AMD-like platform (R9 295X2 preset).
    pub fn amd() -> Platform {
        Platform {
            name: "AMD APP (simulated)".into(),
            device: DeviceConfig::r9_295x2(),
        }
    }

    /// A tiny-device platform for tests.
    pub fn test_tiny() -> Platform {
        Platform {
            name: "test platform".into(),
            device: DeviceConfig::test_tiny(),
        }
    }

    /// Platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The platform's device description.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_vendor_platforms() {
        let all = Platform::all();
        assert!(all[0].name().contains("NVIDIA"));
        assert!(all[1].name().contains("AMD"));
        assert_ne!(all[0].device(), all[1].device());
    }
}
