//! # clrt — an OpenCL-flavoured host runtime
//!
//! The system-interface substrate (paper fig. 5, level 0) of the accelOS
//! (CGO 2016) reproduction: platforms, devices, contexts, buffers, programs,
//! kernels, in-order command queues and profiling events, shaped after the
//! OpenCL 1.2 host API the paper deploys on.
//!
//! Programs are MiniCL source compiled by the [`minicl`] front end;
//! execution is functional (the `kernel-ir` interpreter really runs the
//! kernel over real buffers) with device times modelled by [`gpu_sim`].
//!
//! The accelOS runtime (`accelos` crate) interposes on exactly two calls —
//! program build and NDRange enqueue — which is all its paper counterpart
//! intercepts via ProxyCL.
//!
//! # Examples
//!
//! ```
//! use clrt::{Arg, CommandQueue, Context, Platform, Program};
//! use kernel_ir::interp::NdRange;
//!
//! # fn main() -> Result<(), clrt::ClError> {
//! let platform = &Platform::all()[0]; // NVIDIA-like
//! let mut ctx = Context::new(platform);
//! let program = Program::build(
//!     "kernel void axpy(global float* y, global const float* x, float a) {
//!         size_t i = get_global_id(0);
//!         y[i] = y[i] + a * x[i];
//!     }",
//! )?;
//! let mut kernel = program.create_kernel("axpy")?;
//!
//! let y = ctx.create_buffer(4 * 4);
//! let x = ctx.create_buffer(4 * 4);
//! ctx.write_f32(y, &[1.0; 4])?;
//! ctx.write_f32(x, &[1.0, 2.0, 3.0, 4.0])?;
//! kernel.set_arg(0, Arg::Buffer(y))?;
//! kernel.set_arg(1, Arg::Buffer(x))?;
//! kernel.set_arg(2, Arg::Scalar(kernel_ir::Value::F32(2.0)))?;
//!
//! let mut queue = CommandQueue::new();
//! let event = queue.enqueue_nd_range(&mut ctx, &kernel, NdRange::new_1d(4, 2))?;
//! assert_eq!(ctx.read_f32(y)?, vec![3.0, 5.0, 7.0, 9.0]);
//! assert!(event.duration() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod context;
pub mod error;
pub mod platform;
pub mod program;
pub mod queue;

pub use context::{Buffer, Context};
pub use error::ClError;
pub use platform::Platform;
pub use program::{Arg, Kernel, Program};
pub use queue::{launch_requirements, CommandQueue, Event};
