//! Contexts and memory objects.

use crate::error::ClError;
use crate::platform::Platform;
use gpu_sim::DeviceConfig;
use kernel_ir::interp::{BufferId, DeviceMemory};

/// A device buffer handle (`cl_mem`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    pub(crate) id: BufferId,
    pub(crate) bytes: usize,
}

impl Buffer {
    /// Size of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.bytes
    }

    /// Whether the buffer has zero length.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }
}

/// An OpenCL-style context: one device plus its global memory.
///
/// # Examples
///
/// ```
/// use clrt::{Context, Platform};
/// let mut ctx = Context::new(&Platform::test_tiny());
/// let buf = ctx.create_buffer(4 * 4);
/// ctx.write_f32(buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(ctx.read_f32(buf).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
/// ```
#[derive(Debug)]
pub struct Context {
    device: DeviceConfig,
    mem: DeviceMemory,
    allocated: usize,
}

impl Context {
    /// Create a context on a platform's device.
    pub fn new(platform: &Platform) -> Self {
        Context {
            device: platform.device().clone(),
            mem: DeviceMemory::new(),
            allocated: 0,
        }
    }

    /// The device this context targets.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Total bytes currently allocated on the device.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated
    }

    /// Allocate a device buffer (`clCreateBuffer`).
    pub fn create_buffer(&mut self, bytes: usize) -> Buffer {
        self.allocated += bytes;
        Buffer {
            id: self.mem.alloc(bytes),
            bytes,
        }
    }

    fn check(&self, buf: Buffer, bytes: usize) -> Result<(), ClError> {
        if bytes > buf.bytes {
            return Err(ClError::InvalidBuffer(format!(
                "write of {bytes} bytes into buffer of {}",
                buf.bytes
            )));
        }
        Ok(())
    }

    /// Write `f32` data at offset 0 (`clEnqueueWriteBuffer`).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if the data does not fit.
    pub fn write_f32(&mut self, buf: Buffer, data: &[f32]) -> Result<(), ClError> {
        self.check(buf, data.len() * 4)?;
        self.mem.write_f32(buf.id, data);
        Ok(())
    }

    /// Write `i32` data at offset 0.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if the data does not fit.
    pub fn write_i32(&mut self, buf: Buffer, data: &[i32]) -> Result<(), ClError> {
        self.check(buf, data.len() * 4)?;
        self.mem.write_i32(buf.id, data);
        Ok(())
    }

    /// Write `i64` data at offset 0.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if the data does not fit.
    pub fn write_i64(&mut self, buf: Buffer, data: &[i64]) -> Result<(), ClError> {
        self.check(buf, data.len() * 8)?;
        self.mem.write_i64(buf.id, data);
        Ok(())
    }

    /// Read the whole buffer as `f32` (`clEnqueueReadBuffer`).
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for OpenCL-shape compatibility.
    pub fn read_f32(&self, buf: Buffer) -> Result<Vec<f32>, ClError> {
        Ok(self.mem.read_f32(buf.id))
    }

    /// Read the whole buffer as `i32`.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for OpenCL-shape compatibility.
    pub fn read_i32(&self, buf: Buffer) -> Result<Vec<i32>, ClError> {
        Ok(self.mem.read_i32(buf.id))
    }

    /// Read the whole buffer as `i64`.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for OpenCL-shape compatibility.
    pub fn read_i64(&self, buf: Buffer) -> Result<Vec<i64>, ClError> {
        Ok(self.mem.read_i64(buf.id))
    }

    /// Direct access to the underlying interpreter memory (used by the
    /// accelOS runtime, which shares the context's device memory).
    pub fn memory_mut(&mut self) -> &mut DeviceMemory {
        &mut self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_roundtrip() {
        let mut ctx = Context::new(&Platform::test_tiny());
        let b = ctx.create_buffer(8);
        ctx.write_i32(b, &[7, 9]).unwrap();
        assert_eq!(ctx.read_i32(b).unwrap(), vec![7, 9]);
        assert_eq!(ctx.allocated_bytes(), 8);
        assert_eq!(b.len(), 8);
        assert!(!b.is_empty());
    }

    #[test]
    fn oversized_write_rejected() {
        let mut ctx = Context::new(&Platform::test_tiny());
        let b = ctx.create_buffer(4);
        assert!(ctx.write_f32(b, &[1.0, 2.0]).is_err());
    }
}
