//! Error type of the clrt host API.

use std::fmt;

/// Any failure of a clrt operation, in the spirit of OpenCL's `cl_int`
/// error codes but carrying a message.
#[derive(Debug, Clone, PartialEq)]
pub enum ClError {
    /// Program compilation failed (`CL_BUILD_PROGRAM_FAILURE`).
    BuildFailure(String),
    /// A named kernel does not exist (`CL_INVALID_KERNEL_NAME`).
    InvalidKernelName(String),
    /// Kernel arguments are missing or mistyped (`CL_INVALID_KERNEL_ARGS`).
    InvalidArgs(String),
    /// A launch geometry is invalid (`CL_INVALID_WORK_GROUP_SIZE`).
    InvalidWorkGroupSize(String),
    /// Buffer handle or range problem (`CL_INVALID_MEM_OBJECT`).
    InvalidBuffer(String),
    /// The kernel faulted while executing.
    ExecutionFailure(String),
    /// The device cannot satisfy a resource requirement.
    OutOfResources(String),
}

impl fmt::Display for ClError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClError::BuildFailure(m) => write!(f, "program build failure: {m}"),
            ClError::InvalidKernelName(m) => write!(f, "invalid kernel name: {m}"),
            ClError::InvalidArgs(m) => write!(f, "invalid kernel arguments: {m}"),
            ClError::InvalidWorkGroupSize(m) => write!(f, "invalid work group size: {m}"),
            ClError::InvalidBuffer(m) => write!(f, "invalid buffer: {m}"),
            ClError::ExecutionFailure(m) => write!(f, "kernel execution failure: {m}"),
            ClError::OutOfResources(m) => write!(f, "out of resources: {m}"),
        }
    }
}

impl std::error::Error for ClError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ClError::BuildFailure("syntax error at 1:2".into());
        assert!(e.to_string().contains("syntax error"));
    }
}
