//! Programs and kernels.
//!
//! [`Program::build`] is the `clBuildProgram` analogue: it compiles MiniCL
//! source through the `minicl` front end into a `kernel-ir` module. This is
//! the exact call the accelOS JIT intercepts (paper §6.1, fig. 7): the
//! accelOS runtime builds a *transformed* module and hands it to the same
//! [`Kernel`] machinery.

use crate::context::Buffer;
use crate::error::ClError;
use kernel_ir::interp::ArgValue;
use kernel_ir::ir::Module;
use kernel_ir::{KernelProfile, ModuleFacts, Value};
use std::rc::Rc;

/// A built program: an IR module plus per-kernel resource profiles.
///
/// # Examples
///
/// ```
/// let program = clrt::Program::build(
///     "kernel void k(global float* o) { o[get_global_id(0)] = 1.0f; }",
/// ).unwrap();
/// assert_eq!(program.kernel_names(), vec!["k".to_string()]);
/// ```
#[derive(Debug, Clone)]
pub struct Program {
    module: Rc<Module>,
    facts: Rc<ModuleFacts>,
    profiles: Vec<KernelProfile>,
    source: String,
}

impl Program {
    /// Compile MiniCL source (`clBuildProgram`).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::BuildFailure`] with the front end's diagnostic on
    /// any compile error.
    pub fn build(source: &str) -> Result<Program, ClError> {
        let module = minicl::compile(source).map_err(|e| ClError::BuildFailure(e.to_string()))?;
        Self::from_module(module, source)
    }

    /// Wrap an already-lowered module (used by the accelOS JIT, which
    /// rewrites modules between interception and execution).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::BuildFailure`] if the module fails verification or
    /// profiling.
    pub fn from_module(module: Module, source: &str) -> Result<Program, ClError> {
        kernel_ir::verify::verify_module(&module)
            .map_err(|e| ClError::BuildFailure(e.to_string()))?;
        let profiles =
            KernelProfile::all(&module).map_err(|e| ClError::BuildFailure(e.to_string()))?;
        // Run the accelcheck analyses once at build time; every launch of
        // every kernel in this program reuses the cached verdicts.
        let facts = Rc::new(ModuleFacts::compute(&module));
        Ok(Program {
            module: Rc::new(module),
            facts,
            profiles,
            source: source.to_string(),
        })
    }

    /// Names of kernels in the program.
    pub fn kernel_names(&self) -> Vec<String> {
        self.module
            .kernel_names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// The compiled module.
    pub fn module(&self) -> &Rc<Module> {
        &self.module
    }

    /// Cached accelcheck analysis results (race verdicts and per-function
    /// facts) computed at build time.
    pub fn facts(&self) -> &Rc<ModuleFacts> {
        &self.facts
    }

    /// Original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Resource profile of one kernel.
    pub fn profile(&self, name: &str) -> Option<&KernelProfile> {
        self.profiles.iter().find(|p| p.name == name)
    }

    /// Instantiate a kernel object (`clCreateKernel`).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidKernelName`] if the program has no kernel
    /// of that name.
    pub fn create_kernel(&self, name: &str) -> Result<Kernel, ClError> {
        let profile = self
            .profile(name)
            .cloned()
            .ok_or_else(|| ClError::InvalidKernelName(name.to_string()))?;
        let arity = self
            .module
            .function(name)
            .expect("profiled kernels exist in the module")
            .params
            .len();
        Ok(Kernel {
            module: Rc::clone(&self.module),
            facts: Rc::clone(&self.facts),
            name: name.to_string(),
            profile,
            args: vec![None; arity],
        })
    }
}

/// A kernel argument (`clSetKernelArg`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arg {
    /// A device buffer for a `global`/`constant` pointer parameter.
    Buffer(Buffer),
    /// A scalar value.
    Scalar(Value),
    /// Dynamically sized `local` memory: element count (the element type
    /// comes from the kernel signature), mirroring
    /// `clSetKernelArg(k, i, n * sizeof(T), NULL)`.
    Local {
        /// Number of elements.
        elems: u32,
    },
}

/// A kernel with bound arguments.
///
/// # Examples
///
/// ```
/// use clrt::{Arg, Context, Platform, Program};
/// # fn main() -> Result<(), clrt::ClError> {
/// let mut ctx = Context::new(&Platform::test_tiny());
/// let program = Program::build(
///     "kernel void fill(global int* o, int v) { o[get_global_id(0)] = v; }",
/// )?;
/// let mut k = program.create_kernel("fill")?;
/// let buf = ctx.create_buffer(4 * 4);
/// k.set_arg(0, Arg::Buffer(buf))?;
/// k.set_arg(1, Arg::Scalar(kernel_ir::Value::I32(9)))?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Kernel {
    module: Rc<Module>,
    facts: Rc<ModuleFacts>,
    name: String,
    profile: KernelProfile,
    args: Vec<Option<Arg>>,
}

impl Kernel {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The module the kernel lives in.
    pub fn module(&self) -> &Rc<Module> {
        &self.module
    }

    /// Cached accelcheck analysis results for the module (shared with the
    /// owning [`Program`]).
    pub fn facts(&self) -> &Rc<ModuleFacts> {
        &self.facts
    }

    /// The kernel's static resource profile.
    pub fn profile(&self) -> &KernelProfile {
        &self.profile
    }

    /// Number of declared parameters.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Bind argument `index` (`clSetKernelArg`).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidArgs`] if `index` is out of range.
    pub fn set_arg(&mut self, index: usize, arg: Arg) -> Result<(), ClError> {
        let slot = self
            .args
            .get_mut(index)
            .ok_or_else(|| ClError::InvalidArgs(format!("kernel takes {} arguments", index)))?;
        *slot = Some(arg);
        Ok(())
    }

    /// All bound arguments as interpreter values.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidArgs`] if any argument is unbound.
    pub fn resolved_args(&self) -> Result<Vec<ArgValue>, ClError> {
        self.args
            .iter()
            .enumerate()
            .map(|(i, a)| match a {
                Some(Arg::Buffer(b)) => Ok(ArgValue::Buffer(b.id)),
                Some(Arg::Scalar(v)) => Ok(ArgValue::Scalar(*v)),
                Some(Arg::Local { elems }) => Ok(ArgValue::Local { elems: *elems }),
                None => Err(ClError::InvalidArgs(format!("argument {i} is not set"))),
            })
            .collect()
    }

    /// Bytes of dynamically sized local memory requested via
    /// [`Arg::Local`] arguments, given the kernel signature.
    pub fn dynamic_local_bytes(&self) -> usize {
        let func = self.module.function(&self.name).expect("kernel exists");
        self.args
            .iter()
            .zip(&func.params)
            .map(|(a, p)| match (a, p.ty.pointee()) {
                (Some(Arg::Local { elems }), Some(elem)) => *elems as usize * elem.byte_size(),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::platform::Platform;

    const SRC: &str = "kernel void k(global float* o, local float* tile, float s) {
        tile[get_local_id(0)] = s;
        barrier(0);
        o[get_global_id(0)] = tile[get_local_id(0)];
    }";

    #[test]
    fn build_and_create_kernel() {
        let p = Program::build(SRC).unwrap();
        assert_eq!(p.kernel_names(), vec!["k"]);
        let k = p.create_kernel("k").unwrap();
        assert_eq!(k.arity(), 3);
        assert!(k.profile().uses_barrier);
    }

    #[test]
    fn unknown_kernel_rejected() {
        let p = Program::build(SRC).unwrap();
        assert!(matches!(
            p.create_kernel("zzz"),
            Err(ClError::InvalidKernelName(_))
        ));
    }

    #[test]
    fn bad_source_reports_build_failure() {
        assert!(matches!(
            Program::build("kernel void ("),
            Err(ClError::BuildFailure(_))
        ));
    }

    #[test]
    fn unbound_args_rejected() {
        let p = Program::build(SRC).unwrap();
        let k = p.create_kernel("k").unwrap();
        assert!(matches!(k.resolved_args(), Err(ClError::InvalidArgs(_))));
    }

    #[test]
    fn dynamic_local_bytes_counts_local_args() {
        let mut ctx = Context::new(&Platform::test_tiny());
        let p = Program::build(SRC).unwrap();
        let mut k = p.create_kernel("k").unwrap();
        let b = ctx.create_buffer(64);
        k.set_arg(0, Arg::Buffer(b)).unwrap();
        k.set_arg(1, Arg::Local { elems: 16 }).unwrap();
        k.set_arg(2, Arg::Scalar(Value::F32(1.0))).unwrap();
        assert_eq!(k.dynamic_local_bytes(), 16 * 4);
        assert_eq!(k.resolved_args().unwrap().len(), 3);
    }

    #[test]
    fn out_of_range_arg_rejected() {
        let p = Program::build(SRC).unwrap();
        let mut k = p.create_kernel("k").unwrap();
        assert!(k.set_arg(5, Arg::Local { elems: 1 }).is_err());
    }
}
