//! Lowering from the MiniCL AST to `kernel-ir`.
//!
//! The lowering performs type checking on the fly and emits clang-`-O0`-style
//! IR: every source variable lives in a private `alloca` cell; loops and
//! conditionals become explicit CFG edges. This mirrors the IR shape the
//! accelOS JIT pass in the paper consumes before vendor optimisation.
//!
//! # Semantics notes (deliberate MiniCL simplifications)
//!
//! * `a && b`, `a || b` and `c ? x : y` evaluate **all** operands (they lower
//!   to `select`), unlike C's short-circuit rules. Kernel sources in this
//!   repository are written accordingly.
//! * `uint` is modelled as `i32`, `size_t` as `i64`.
//! * Falling off the end of a non-`void` function returns a zero value.

use crate::ast::*;
use crate::error::CompileError;
use crate::token::Pos;
use kernel_ir::builder::FunctionBuilder;
use kernel_ir::ir::{
    AtomicOp, BinOp, BlockId, CmpOp, FunctionKind, Module, UnOp, ValueId, WiBuiltin,
};
use kernel_ir::types::{AddressSpace, Type};
use std::collections::HashMap;

/// Lower a parsed [`Program`] to a verified-shape IR [`Module`].
///
/// # Errors
///
/// Returns a [`CompileError`] on any type error, unknown identifier, bad
/// builtin usage, or unsupported construct.
pub fn lower(prog: &Program) -> Result<Module, CompileError> {
    let mut sigs: HashMap<String, Signature> = HashMap::new();
    for f in &prog.functions {
        let params = f
            .params
            .iter()
            .map(|p| type_of_name(&p.ty, true))
            .collect::<Result<Vec<_>, _>>()?;
        let ret = type_of_name(&f.ret, false)?;
        if sigs
            .insert(
                f.name.clone(),
                Signature {
                    params,
                    ret,
                    is_kernel: f.is_kernel,
                },
            )
            .is_some()
        {
            return Err(CompileError::at(
                f.pos,
                format!("duplicate function `{}`", f.name),
            ));
        }
    }

    let mut module = Module::new();
    for f in &prog.functions {
        let func = Lowerer::new(&sigs, f)?.lower_function(f)?;
        module.insert_function(func);
    }
    Ok(module)
}

#[derive(Debug, Clone)]
struct Signature {
    params: Vec<Type>,
    ret: Type,
    is_kernel: bool,
}

/// Convert a syntactic type to an IR type.
///
/// Pointer declarations default to `global` when written without an address
/// space in a parameter list (the common OpenCL shorthand), and to `private`
/// elsewhere.
fn type_of_name(tn: &TypeName, is_param: bool) -> Result<Type, CompileError> {
    let base = match tn.base {
        BaseType::Void => Type::Void,
        BaseType::Bool => Type::Bool,
        BaseType::Int | BaseType::Uint => Type::I32,
        BaseType::Long | BaseType::SizeT => Type::I64,
        BaseType::Float => Type::F32,
        BaseType::Double => Type::F64,
    };
    if tn.is_ptr {
        let default = if is_param {
            AddressSpace::Global
        } else {
            AddressSpace::Private
        };
        Ok(Type::ptr(tn.space.unwrap_or(default), base))
    } else {
        Ok(base)
    }
}

/// How a source variable is bound.
#[derive(Debug, Clone)]
enum Binding {
    /// Scalar or pointer variable stored in a private cell; the `ValueId` is
    /// a pointer to the cell, the `Type` is the variable's type.
    Cell(ValueId, Type),
    /// An array declaration; the `ValueId` *is* the pointer value.
    Direct(ValueId, Type),
}

struct LoopCtx {
    continue_to: BlockId,
    break_to: BlockId,
}

struct Lowerer<'a> {
    sigs: &'a HashMap<String, Signature>,
    b: FunctionBuilder,
    scopes: Vec<HashMap<String, Binding>>,
    loops: Vec<LoopCtx>,
    ret: Type,
}

impl<'a> Lowerer<'a> {
    fn new(sigs: &'a HashMap<String, Signature>, f: &FuncDecl) -> Result<Self, CompileError> {
        let ret = type_of_name(&f.ret, false)?;
        let kind = if f.is_kernel {
            FunctionKind::Kernel
        } else {
            FunctionKind::Helper
        };
        if f.is_kernel && ret != Type::Void {
            return Err(CompileError::at(f.pos, "kernels must return void"));
        }
        let b = FunctionBuilder::new(&f.name, kind, ret.clone());
        Ok(Lowerer {
            sigs,
            b,
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
            ret,
        })
    }

    fn lower_function(mut self, f: &FuncDecl) -> Result<kernel_ir::ir::Function, CompileError> {
        // Parameters first (they must occupy the first value ids), then copy
        // each into a private cell so that assignments to parameters work.
        let mut param_ids = Vec::new();
        for p in &f.params {
            let ty = type_of_name(&p.ty, true)?;
            if ty == Type::Void {
                return Err(CompileError::at(p.pos, "parameter of type void"));
            }
            param_ids.push((
                self.b.add_param(&p.name, ty.clone()),
                ty,
                p.name.clone(),
                p.pos,
            ));
        }
        for (id, ty, name, pos) in param_ids {
            let cell = self.b.alloca(ty.clone(), 1, AddressSpace::Private);
            self.b.store(cell, id);
            self.declare(&name, Binding::Cell(cell, ty), pos)?;
        }

        self.lower_stmts(&f.body)?;

        if !self.b.is_terminated() {
            if self.ret == Type::Void {
                self.b.ret(None);
            } else {
                // Fall-off return of a zero value (documented semantics).
                let ret_ty = self.ret.clone();
                let z = self.zero_of(&ret_ty, f.pos)?;
                self.b.ret(Some(z));
            }
        }
        Ok(self.b.finish())
    }

    fn declare(&mut self, name: &str, binding: Binding, pos: Pos) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.to_string(), binding).is_some() {
            return Err(CompileError::at(pos, format!("redeclaration of `{name}`")));
        }
        Ok(())
    }

    fn lookup(&self, name: &str, pos: Pos) -> Result<Binding, CompileError> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Ok(b.clone());
            }
        }
        Err(CompileError::at(pos, format!("unknown variable `{name}`")))
    }

    fn zero_of(&mut self, ty: &Type, pos: Pos) -> Result<ValueId, CompileError> {
        Ok(match ty {
            Type::Bool => self.b.const_bool(false),
            Type::I32 => self.b.const_i32(0),
            Type::I64 => self.b.const_i64(0),
            Type::F32 => self.b.const_f32(0.0),
            Type::F64 => self.b.const_f64(0.0),
            other => {
                return Err(CompileError::at(
                    pos,
                    format!("cannot produce a default `{other}`"),
                ))
            }
        })
    }

    // ---- statements -----------------------------------------------------

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            if self.b.is_terminated() {
                // Dead code after return/break/continue still needs a block
                // to land in (it will be unreachable, which the verifier
                // accepts).
                let dead = self.b.new_block();
                self.b.switch_to(dead);
            }
            self.lower_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    /// Best source position for a statement: its own keyword/name position
    /// where the AST records one, else the position of its leading
    /// expression.
    fn stmt_pos(s: &Stmt) -> Option<Pos> {
        match s {
            Stmt::Decl { pos, .. }
            | Stmt::Return(_, pos)
            | Stmt::Break(pos)
            | Stmt::Continue(pos)
            | Stmt::Barrier(pos) => Some(*pos),
            Stmt::Assign { target, .. } => match target {
                LValue::Var(_, _, pos) | LValue::Index(_, _, _, pos) => Some(*pos),
            },
            Stmt::If { cond, .. } | Stmt::While { cond, .. } | Stmt::DoWhile { cond, .. } => {
                Some(cond.pos)
            }
            Stmt::For {
                init, cond, body, ..
            } => init
                .as_deref()
                .and_then(Self::stmt_pos)
                .or(cond.as_ref().map(|c| c.pos))
                .or_else(|| body.first().and_then(Self::stmt_pos)),
            Stmt::ExprStmt(e) => Some(e.pos),
        }
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        // Stamp the statement's source location onto every instruction it
        // emits, so lint diagnostics point back into the MiniCL source.
        if let Some(pos) = Self::stmt_pos(s) {
            self.b.set_span(Some((pos.line, pos.col)));
        }
        match s {
            Stmt::Decl {
                pos,
                ty,
                name,
                array,
                init,
                ..
            } => self.lower_decl(*pos, ty, name, *array, init.as_ref()),
            Stmt::Assign { target, op, value } => self.lower_assign(target, *op, value),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let (c, _) = self.lower_expr_as_bool(cond)?;
                let then_bb = self.b.new_block();
                let else_bb = self.b.new_block();
                let join = self.b.new_block();
                self.b.cond_br(c, then_bb, else_bb);
                self.b.switch_to(then_bb);
                self.lower_stmts(then_branch)?;
                if !self.b.is_terminated() {
                    self.b.br(join);
                }
                self.b.switch_to(else_bb);
                self.lower_stmts(else_branch)?;
                if !self.b.is_terminated() {
                    self.b.br(join);
                }
                self.b.switch_to(join);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.b.new_block();
                let body_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(head);
                self.b.switch_to(head);
                let (c, _) = self.lower_expr_as_bool(cond)?;
                self.b.cond_br(c, body_bb, exit);
                self.b.switch_to(body_bb);
                self.loops.push(LoopCtx {
                    continue_to: head,
                    break_to: exit,
                });
                self.lower_stmts(body)?;
                self.loops.pop();
                if !self.b.is_terminated() {
                    self.b.br(head);
                }
                self.b.switch_to(exit);
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                let body_bb = self.b.new_block();
                let head = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(body_bb);
                self.b.switch_to(body_bb);
                self.loops.push(LoopCtx {
                    continue_to: head,
                    break_to: exit,
                });
                self.lower_stmts(body)?;
                self.loops.pop();
                if !self.b.is_terminated() {
                    self.b.br(head);
                }
                self.b.switch_to(head);
                let (c, _) = self.lower_expr_as_bool(cond)?;
                self.b.cond_br(c, body_bb, exit);
                self.b.switch_to(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.lower_stmt(i)?;
                }
                let head = self.b.new_block();
                let body_bb = self.b.new_block();
                let step_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.b.br(head);
                self.b.switch_to(head);
                match cond {
                    Some(c) => {
                        let (v, _) = self.lower_expr_as_bool(c)?;
                        self.b.cond_br(v, body_bb, exit);
                    }
                    None => self.b.br(body_bb),
                }
                self.b.switch_to(body_bb);
                self.loops.push(LoopCtx {
                    continue_to: step_bb,
                    break_to: exit,
                });
                self.lower_stmts(body)?;
                self.loops.pop();
                if !self.b.is_terminated() {
                    self.b.br(step_bb);
                }
                self.b.switch_to(step_bb);
                if let Some(st) = step {
                    self.lower_stmt(st)?;
                }
                self.b.br(head);
                self.b.switch_to(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(value, pos) => match (value, self.ret.clone()) {
                (None, Type::Void) => {
                    self.b.ret(None);
                    Ok(())
                }
                (Some(_), Type::Void) => Err(CompileError::at(
                    *pos,
                    "returning a value from a void function",
                )),
                (None, _) => Err(CompileError::at(*pos, "missing return value")),
                (Some(e), ret_ty) => {
                    let (v, ty) = self.lower_expr(e)?;
                    let v = self.coerce(v, &ty, &ret_ty, *pos)?;
                    self.b.ret(Some(v));
                    Ok(())
                }
            },
            Stmt::Break(pos) => {
                let target = self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::at(*pos, "`break` outside a loop"))?
                    .break_to;
                self.b.br(target);
                Ok(())
            }
            Stmt::Continue(pos) => {
                let target = self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::at(*pos, "`continue` outside a loop"))?
                    .continue_to;
                self.b.br(target);
                Ok(())
            }
            Stmt::ExprStmt(e) => {
                self.lower_expr_allow_void(e)?;
                Ok(())
            }
            Stmt::Barrier(_) => {
                self.b.barrier();
                Ok(())
            }
        }
    }

    fn lower_decl(
        &mut self,
        pos: Pos,
        tn: &TypeName,
        name: &str,
        array: Option<u32>,
        init: Option<&Expr>,
    ) -> Result<(), CompileError> {
        let ty = type_of_name(tn, false)?;
        if let Some(n) = array {
            if ty.is_ptr() {
                return Err(CompileError::at(pos, "array of pointers is not supported"));
            }
            if ty == Type::Void {
                return Err(CompileError::at(pos, "array of void"));
            }
            let space = tn.space.unwrap_or(AddressSpace::Private);
            if !matches!(space, AddressSpace::Private | AddressSpace::Local) {
                return Err(CompileError::at(
                    pos,
                    format!("arrays may only live in private or local memory, not `{space}`"),
                ));
            }
            if init.is_some() {
                return Err(CompileError::at(
                    pos,
                    "array initialisers are not supported",
                ));
            }
            let ptr = self.b.alloca(ty.clone(), n, space);
            let pty = Type::ptr(space, ty);
            self.declare(name, Binding::Direct(ptr, pty), pos)?;
            return Ok(());
        }
        if ty == Type::Void {
            return Err(CompileError::at(pos, "variable of type void"));
        }
        let cell = self.b.alloca(ty.clone(), 1, AddressSpace::Private);
        if let Some(e) = init {
            let (v, vty) = self.lower_expr(e)?;
            let v = self.coerce(v, &vty, &ty, pos)?;
            self.b.store(cell, v);
        }
        self.declare(name, Binding::Cell(cell, ty), pos)?;
        Ok(())
    }

    fn lower_assign(
        &mut self,
        target: &LValue,
        op: AssignOp,
        value: &Expr,
    ) -> Result<(), CompileError> {
        match target {
            LValue::Var(name, _, pos) => {
                let binding = self.lookup(name, *pos)?;
                let (cell, ty) = match binding {
                    Binding::Cell(c, t) => (c, t),
                    Binding::Direct(..) => {
                        return Err(CompileError::at(
                            *pos,
                            format!("cannot assign to array `{name}`"),
                        ))
                    }
                };
                let stored = self.assigned_value(op, Some((cell, &ty)), value, *pos)?;
                self.b.store(cell, stored);
                Ok(())
            }
            LValue::Index(base, index, _, pos) => {
                let ptr = self.lower_index_ptr(base, index, *pos)?;
                let elem_ty = self
                    .b
                    .type_of(ptr)
                    .pointee()
                    .expect("index pointer is always a pointer")
                    .clone();
                let stored = self.assigned_value(op, Some((ptr, &elem_ty)), value, *pos)?;
                self.b.store(ptr, stored);
                Ok(())
            }
        }
    }

    /// Compute the value to store for `target op= value`, loading the old
    /// value through `ptr` for compound ops.
    fn assigned_value(
        &mut self,
        op: AssignOp,
        ptr_and_ty: Option<(ValueId, &Type)>,
        value: &Expr,
        pos: Pos,
    ) -> Result<ValueId, CompileError> {
        let (ptr, ty) = ptr_and_ty.expect("assignment target always resolved");
        let (rhs, rhs_ty) = self.lower_expr(value)?;
        match op {
            AssignOp::Set => self.coerce(rhs, &rhs_ty, ty, pos),
            _ => {
                let bin = match op {
                    AssignOp::Add => BinOp::Add,
                    AssignOp::Sub => BinOp::Sub,
                    AssignOp::Mul => BinOp::Mul,
                    AssignOp::Div => BinOp::Div,
                    AssignOp::Rem => BinOp::Rem,
                    AssignOp::Set => unreachable!(),
                };
                let old = self.b.load(ptr);
                if ty.is_ptr() {
                    return Err(CompileError::at(pos, "compound assignment to a pointer"));
                }
                let rhs = self.coerce(rhs, &rhs_ty, ty, pos)?;
                Ok(self.b.bin(bin, old, rhs))
            }
        }
    }

    // ---- expressions ----------------------------------------------------

    /// Lower an expression; error if it has type void.
    fn lower_expr(&mut self, e: &Expr) -> Result<(ValueId, Type), CompileError> {
        match self.lower_expr_allow_void(e)? {
            Some(v) => Ok(v),
            None => Err(CompileError::at(e.pos, "void value used in an expression")),
        }
    }

    fn lower_expr_allow_void(&mut self, e: &Expr) -> Result<Option<(ValueId, Type)>, CompileError> {
        let pos = e.pos;
        // Refine the span to the sub-expression being lowered.
        self.b.set_span(Some((pos.line, pos.col)));
        let out = match &e.kind {
            ExprKind::IntLit(v) => {
                if let Ok(v32) = i32::try_from(*v) {
                    (self.b.const_i32(v32), Type::I32)
                } else {
                    (self.b.const_i64(*v), Type::I64)
                }
            }
            ExprKind::FloatLit(v, single) => {
                if *single {
                    (self.b.const_f32(*v as f32), Type::F32)
                } else {
                    (self.b.const_f64(*v), Type::F64)
                }
            }
            ExprKind::BoolLit(v) => (self.b.const_bool(*v), Type::Bool),
            ExprKind::Ident(name) => match self.lookup(name, pos)? {
                Binding::Cell(cell, ty) => (self.b.load(cell), ty),
                Binding::Direct(v, ty) => (v, ty),
            },
            ExprKind::Bin(kind, lhs, rhs) => self.lower_bin(*kind, lhs, rhs, pos)?,
            ExprKind::Un(kind, inner) => {
                let (v, ty) = self.lower_expr(inner)?;
                match kind {
                    UnKind::Neg => {
                        if !ty.is_numeric() {
                            return Err(CompileError::at(pos, format!("cannot negate `{ty}`")));
                        }
                        (self.b.un(UnOp::Neg, v), ty)
                    }
                    UnKind::Not => {
                        let b = self.coerce_bool(v, &ty, pos)?;
                        (self.b.un(UnOp::Not, b), Type::Bool)
                    }
                }
            }
            ExprKind::Cast(tn, inner) => {
                let target = type_of_name(tn, false)?;
                let (v, ty) = self.lower_expr(inner)?;
                if target == ty {
                    (v, target)
                } else if target.is_numeric() && (ty.is_numeric() || ty == Type::Bool) {
                    (self.b.cast(target.clone(), v), target)
                } else {
                    return Err(CompileError::at(
                        pos,
                        format!("invalid cast from `{ty}` to `{target}`"),
                    ));
                }
            }
            ExprKind::Index(base, index) => {
                let ptr = self.lower_index_ptr(base, index, pos)?;
                let elem = self
                    .b
                    .type_of(ptr)
                    .pointee()
                    .expect("index pointer is always a pointer")
                    .clone();
                (self.b.load(ptr), elem)
            }
            ExprKind::Call(name, args) => return self.lower_call(name, args, pos),
            ExprKind::Ternary(cond, then_e, else_e) => {
                // Lowered to `select`: both arms are evaluated (see module
                // docs for the documented deviation from C).
                let (c, cty) = self.lower_expr(cond)?;
                let c = self.coerce_bool(c, &cty, pos)?;
                let (a, aty) = self.lower_expr(then_e)?;
                let (b_v, bty) = self.lower_expr(else_e)?;
                let ty = self.unify(&aty, &bty, pos)?;
                let a = self.coerce(a, &aty, &ty, pos)?;
                let b_v = self.coerce(b_v, &bty, &ty, pos)?;
                (self.b.select(c, a, b_v), ty)
            }
        };
        Ok(Some(out))
    }

    fn lower_index_ptr(
        &mut self,
        base: &Expr,
        index: &Expr,
        pos: Pos,
    ) -> Result<ValueId, CompileError> {
        let (bv, bty) = self.lower_expr(base)?;
        if !bty.is_ptr() {
            return Err(CompileError::at(
                pos,
                format!("cannot index non-pointer `{bty}`"),
            ));
        }
        let (iv, ity) = self.lower_expr(index)?;
        if !ity.is_int() {
            return Err(CompileError::at(
                pos,
                format!("array index must be an integer, got `{ity}`"),
            ));
        }
        Ok(self.b.gep(bv, iv))
    }

    fn lower_bin(
        &mut self,
        kind: BinKind,
        lhs: &Expr,
        rhs: &Expr,
        pos: Pos,
    ) -> Result<(ValueId, Type), CompileError> {
        // Logical operators first: they operate on bools.
        if matches!(kind, BinKind::LogAnd | BinKind::LogOr) {
            let (l, lt) = self.lower_expr(lhs)?;
            let l = self.coerce_bool(l, &lt, pos)?;
            let (r, rt) = self.lower_expr(rhs)?;
            let r = self.coerce_bool(r, &rt, pos)?;
            let out = match kind {
                BinKind::LogAnd => {
                    let f = self.b.const_bool(false);
                    self.b.select(l, r, f)
                }
                BinKind::LogOr => {
                    let t = self.b.const_bool(true);
                    self.b.select(l, t, r)
                }
                _ => unreachable!(),
            };
            return Ok((out, Type::Bool));
        }

        let (l, lt) = self.lower_expr(lhs)?;
        let (r, rt) = self.lower_expr(rhs)?;

        // Pointer arithmetic: ptr + int and ptr - int lower to gep.
        if lt.is_ptr() && matches!(kind, BinKind::Add | BinKind::Sub) {
            if !rt.is_int() {
                return Err(CompileError::at(pos, "pointer offset must be an integer"));
            }
            let off = if kind == BinKind::Sub {
                self.b.un(UnOp::Neg, r)
            } else {
                r
            };
            return Ok((self.b.gep(l, off), lt));
        }

        let cmp = match kind {
            BinKind::Eq => Some(CmpOp::Eq),
            BinKind::Ne => Some(CmpOp::Ne),
            BinKind::Lt => Some(CmpOp::Lt),
            BinKind::Le => Some(CmpOp::Le),
            BinKind::Gt => Some(CmpOp::Gt),
            BinKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = cmp {
            let ty = self.unify(&lt, &rt, pos)?;
            let l = self.coerce(l, &lt, &ty, pos)?;
            let r = self.coerce(r, &rt, &ty, pos)?;
            return Ok((self.b.cmp(op, l, r), Type::Bool));
        }

        let op = match kind {
            BinKind::Add => BinOp::Add,
            BinKind::Sub => BinOp::Sub,
            BinKind::Mul => BinOp::Mul,
            BinKind::Div => BinOp::Div,
            BinKind::Rem => BinOp::Rem,
            BinKind::And => BinOp::And,
            BinKind::Or => BinOp::Or,
            BinKind::Xor => BinOp::Xor,
            BinKind::Shl => BinOp::Shl,
            BinKind::Shr => BinOp::Shr,
            _ => unreachable!("comparison and logical ops handled above"),
        };
        let ty = self.unify(&lt, &rt, pos)?;
        if op.int_only() && !ty.is_int() {
            return Err(CompileError::at(
                pos,
                format!("`{}` requires integer operands, got `{ty}`", op.mnemonic()),
            ));
        }
        if !ty.is_numeric() {
            return Err(CompileError::at(
                pos,
                format!("`{}` requires numeric operands, got `{ty}`", op.mnemonic()),
            ));
        }
        let l = self.coerce(l, &lt, &ty, pos)?;
        let r = self.coerce(r, &rt, &ty, pos)?;
        Ok((self.b.bin(op, l, r), ty))
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[Expr],
        pos: Pos,
    ) -> Result<Option<(ValueId, Type)>, CompileError> {
        // Work-item builtins need a literal dimension argument.
        let wi = match name {
            "get_global_id" => Some(WiBuiltin::GlobalId),
            "get_local_id" => Some(WiBuiltin::LocalId),
            "get_group_id" => Some(WiBuiltin::GroupId),
            "get_global_size" => Some(WiBuiltin::GlobalSize),
            "get_local_size" => Some(WiBuiltin::LocalSize),
            "get_num_groups" => Some(WiBuiltin::NumGroups),
            "get_work_dim" => Some(WiBuiltin::WorkDim),
            _ => None,
        };
        if let Some(builtin) = wi {
            let dim = if builtin == WiBuiltin::WorkDim {
                0
            } else {
                match args {
                    [Expr {
                        kind: ExprKind::IntLit(d),
                        ..
                    }] if (0..=2).contains(d) => *d as u8,
                    _ => {
                        return Err(CompileError::at(
                            pos,
                            format!("`{name}` takes one literal dimension argument 0..=2"),
                        ))
                    }
                }
            };
            return Ok(Some((self.b.work_item(builtin, dim), Type::I64)));
        }

        // Unary float math builtins.
        let un = match name {
            "sqrt" => Some(UnOp::Sqrt),
            "fabs" => Some(UnOp::Abs),
            "exp" => Some(UnOp::Exp),
            "log" => Some(UnOp::Log),
            "sin" => Some(UnOp::Sin),
            "cos" => Some(UnOp::Cos),
            "floor" => Some(UnOp::Floor),
            "ceil" => Some(UnOp::Ceil),
            _ => None,
        };
        if let Some(op) = un {
            let [a] = args else {
                return Err(CompileError::at(
                    pos,
                    format!("`{name}` takes exactly one argument"),
                ));
            };
            let (v, ty) = self.lower_expr(a)?;
            if !ty.is_float() {
                return Err(CompileError::at(
                    pos,
                    format!("`{name}` requires a float argument, got `{ty}`"),
                ));
            }
            return Ok(Some((self.b.un(op, v), ty)));
        }
        if name == "abs" {
            let [a] = args else {
                return Err(CompileError::at(
                    pos,
                    "`abs` takes exactly one argument".to_string(),
                ));
            };
            let (v, ty) = self.lower_expr(a)?;
            if !ty.is_numeric() {
                return Err(CompileError::at(
                    pos,
                    format!("`abs` requires a numeric argument, got `{ty}`"),
                ));
            }
            return Ok(Some((self.b.un(UnOp::Abs, v), ty)));
        }
        if name == "rsqrt" {
            let [a] = args else {
                return Err(CompileError::at(
                    pos,
                    "`rsqrt` takes exactly one argument".to_string(),
                ));
            };
            let (v, ty) = self.lower_expr(a)?;
            if !ty.is_float() {
                return Err(CompileError::at(
                    pos,
                    format!("`rsqrt` requires a float argument, got `{ty}`"),
                ));
            }
            let s = self.b.un(UnOp::Sqrt, v);
            let one = if ty == Type::F32 {
                self.b.const_f32(1.0)
            } else {
                self.b.const_f64(1.0)
            };
            return Ok(Some((self.b.bin(BinOp::Div, one, s), ty)));
        }
        if name == "pow" || name == "powf" {
            // pow(x, y) = exp(y * log(x)); valid for x > 0, which is how the
            // bundled kernels use it.
            let [x, y] = args else {
                return Err(CompileError::at(
                    pos,
                    "`pow` takes exactly two arguments".to_string(),
                ));
            };
            let (xv, xt) = self.lower_expr(x)?;
            let (yv, yt) = self.lower_expr(y)?;
            let ty = self.unify(&xt, &yt, pos)?;
            if !ty.is_float() {
                return Err(CompileError::at(
                    pos,
                    "`pow` requires float arguments".to_string(),
                ));
            }
            let xv = self.coerce(xv, &xt, &ty, pos)?;
            let yv = self.coerce(yv, &yt, &ty, pos)?;
            let lx = self.b.un(UnOp::Log, xv);
            let m = self.b.bin(BinOp::Mul, yv, lx);
            return Ok(Some((self.b.un(UnOp::Exp, m), ty)));
        }

        // Two-operand min/max (integer or float, like OpenCL's min/fmin).
        if matches!(name, "min" | "max" | "fmin" | "fmax") {
            let [a, b] = args else {
                return Err(CompileError::at(
                    pos,
                    format!("`{name}` takes exactly two arguments"),
                ));
            };
            let (av, at) = self.lower_expr(a)?;
            let (bv, bt) = self.lower_expr(b)?;
            let ty = self.unify(&at, &bt, pos)?;
            if !ty.is_numeric() {
                return Err(CompileError::at(
                    pos,
                    format!("`{name}` requires numeric arguments"),
                ));
            }
            let av = self.coerce(av, &at, &ty, pos)?;
            let bv = self.coerce(bv, &bt, &ty, pos)?;
            let op = if name.ends_with("min") || name == "min" {
                BinOp::Min
            } else {
                BinOp::Max
            };
            return Ok(Some((self.b.bin(op, av, bv), ty)));
        }

        // Atomics.
        let atomic = match name {
            "atomic_add" | "atom_add" => Some(AtomicOp::Add),
            "atomic_sub" | "atom_sub" => Some(AtomicOp::Sub),
            "atomic_min" | "atom_min" => Some(AtomicOp::Min),
            "atomic_max" | "atom_max" => Some(AtomicOp::Max),
            "atomic_xchg" | "atom_xchg" => Some(AtomicOp::Xchg),
            _ => None,
        };
        if let Some(op) = atomic {
            let [p, v] = args else {
                return Err(CompileError::at(
                    pos,
                    format!("`{name}` takes a pointer and a value"),
                ));
            };
            let (pv, pt) = self.lower_expr(p)?;
            let elem = pt
                .pointee()
                .ok_or_else(|| {
                    CompileError::at(pos, format!("`{name}` requires a pointer argument"))
                })?
                .clone();
            if !elem.is_int() {
                return Err(CompileError::at(
                    pos,
                    format!("`{name}` requires an integer pointee"),
                ));
            }
            let (vv, vt) = self.lower_expr(v)?;
            let vv = self.coerce(vv, &vt, &elem, pos)?;
            return Ok(Some((self.b.atomic_rmw(op, pv, vv), elem)));
        }
        if name == "atomic_cmpxchg" || name == "atom_cmpxchg" {
            let [p, ex, de] = args else {
                return Err(CompileError::at(
                    pos,
                    "`atomic_cmpxchg` takes pointer, expected, desired".to_string(),
                ));
            };
            let (pv, pt) = self.lower_expr(p)?;
            let elem = pt
                .pointee()
                .ok_or_else(|| {
                    CompileError::at(pos, "`atomic_cmpxchg` requires a pointer argument")
                })?
                .clone();
            let (ev, et) = self.lower_expr(ex)?;
            let (dv, dt) = self.lower_expr(de)?;
            let ev = self.coerce(ev, &et, &elem, pos)?;
            let dv = self.coerce(dv, &dt, &elem, pos)?;
            return Ok(Some((self.b.atomic_cmpxchg(pv, ev, dv), elem)));
        }

        // User-defined function.
        let sig = self
            .sigs
            .get(name)
            .ok_or_else(|| CompileError::at(pos, format!("unknown function `{name}`")))?
            .clone();
        if sig.is_kernel {
            return Err(CompileError::at(
                pos,
                format!("cannot call kernel `{name}` from device code"),
            ));
        }
        if sig.params.len() != args.len() {
            return Err(CompileError::at(
                pos,
                format!(
                    "`{name}` takes {} arguments, {} given",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        let mut lowered = Vec::with_capacity(args.len());
        for (a, pty) in args.iter().zip(&sig.params) {
            let (v, ty) = self.lower_expr(a)?;
            lowered.push(self.coerce(v, &ty, pty, a.pos)?);
        }
        let ret = sig.ret.clone();
        match self.b.call(name, lowered, ret.clone()) {
            Some(v) => Ok(Some((v, ret))),
            None => Ok(None),
        }
    }

    // ---- conversions ----------------------------------------------------

    fn rank(ty: &Type) -> Option<u8> {
        match ty {
            Type::Bool => Some(0),
            Type::I32 => Some(1),
            Type::I64 => Some(2),
            Type::F32 => Some(3),
            Type::F64 => Some(4),
            _ => None,
        }
    }

    /// The common type of two operands (usual arithmetic conversions).
    fn unify(&self, a: &Type, b: &Type, pos: Pos) -> Result<Type, CompileError> {
        if a == b {
            return Ok(a.clone());
        }
        match (Self::rank(a), Self::rank(b)) {
            (Some(ra), Some(rb)) => Ok(if ra >= rb { a.clone() } else { b.clone() }),
            _ => Err(CompileError::at(
                pos,
                format!("incompatible operand types `{a}` and `{b}`"),
            )),
        }
    }

    /// Convert `v: from` to `to`, inserting a cast when needed.
    fn coerce(
        &mut self,
        v: ValueId,
        from: &Type,
        to: &Type,
        pos: Pos,
    ) -> Result<ValueId, CompileError> {
        if from == to {
            return Ok(v);
        }
        if Self::rank(from).is_some() && Self::rank(to).is_some() {
            return Ok(self.b.cast(to.clone(), v));
        }
        Err(CompileError::at(
            pos,
            format!("cannot convert `{from}` to `{to}`"),
        ))
    }

    /// Coerce an arbitrary scalar to `bool` (`x` becomes `x != 0`).
    fn coerce_bool(&mut self, v: ValueId, ty: &Type, pos: Pos) -> Result<ValueId, CompileError> {
        match ty {
            Type::Bool => Ok(v),
            t if t.is_numeric() => {
                let z = self.zero_of(t, pos)?;
                Ok(self.b.cmp(CmpOp::Ne, v, z))
            }
            other => Err(CompileError::at(
                pos,
                format!("cannot use `{other}` as a condition"),
            )),
        }
    }

    fn lower_expr_as_bool(&mut self, e: &Expr) -> Result<(ValueId, Type), CompileError> {
        let (v, ty) = self.lower_expr(e)?;
        let b = self.coerce_bool(v, &ty, e.pos)?;
        Ok((b, Type::Bool))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use kernel_ir::interp::{ArgValue, DeviceMemory, Interpreter, NdRange, Value};
    use kernel_ir::verify::verify_module;

    fn compile(src: &str) -> Module {
        let prog = parse(src).expect("parse");
        let m = lower(&prog).expect("lower");
        verify_module(&m).expect("verify");
        m
    }

    #[test]
    fn lowered_instructions_carry_source_spans() {
        let m = compile(
            "kernel void k(global float* o) {
                size_t i = get_global_id(0);
                o[i] = 2.0f;
            }",
        );
        let f = m.function("k").expect("kernel exists");
        let spanned: Vec<(u32, u32)> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|inst| inst.span)
            .collect();
        assert!(
            !spanned.is_empty(),
            "lowering must stamp source spans onto instructions"
        );
        // The store of `o[i] = 2.0f` sits on source line 3.
        assert!(
            spanned.iter().any(|&(line, _)| line == 3),
            "expected a span on line 3, got {spanned:?}"
        );
        // Param spills at entry precede any statement and stay unspanned
        // until the first statement stamps; all stamped lines are within
        // the kernel body.
        assert!(spanned.iter().all(|&(line, _)| (2..=4).contains(&line)));
    }

    #[test]
    fn vector_add_runs() {
        let m = compile(
            "kernel void vadd(global const float* a, global const float* b, global float* c) {
                size_t i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
        );
        let mut mem = DeviceMemory::new();
        let a = mem.alloc(16);
        let b = mem.alloc(16);
        let c = mem.alloc(16);
        mem.write_f32(a, &[1.0, 2.0, 3.0, 4.0]);
        mem.write_f32(b, &[10.0, 20.0, 30.0, 40.0]);
        Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "vadd",
                NdRange::new_1d(4, 2),
                &[
                    ArgValue::Buffer(a),
                    ArgValue::Buffer(b),
                    ArgValue::Buffer(c),
                ],
            )
            .unwrap();
        assert_eq!(mem.read_f32(c), vec![11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn control_flow_and_loops() {
        let m = compile(
            "kernel void k(global int* out, int n) {
                size_t gid = get_global_id(0);
                int acc = 0;
                for (int i = 0; i < n; ++i) {
                    if (i % 2 == 0) { acc += i; } else { acc -= 1; }
                }
                out[gid] = acc;
            }",
        );
        let mut mem = DeviceMemory::new();
        let out = mem.alloc(8);
        Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "k",
                NdRange::new_1d(2, 1),
                &[ArgValue::Buffer(out), ArgValue::Scalar(Value::I32(5))],
            )
            .unwrap();
        // i=0:+0, i=1:-1, i=2:+2, i=3:-1, i=4:+4 => 4
        assert_eq!(mem.read_i32(out), vec![4, 4]);
    }

    #[test]
    fn while_break_continue() {
        let m = compile(
            "kernel void k(global int* out) {
                int i = 0;
                int acc = 0;
                while (true) {
                    i += 1;
                    if (i > 10) { break; }
                    if (i % 2 == 0) { continue; }
                    acc += i;
                }
                out[get_global_id(0)] = acc;
            }",
        );
        let mut mem = DeviceMemory::new();
        let out = mem.alloc(4);
        Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "k",
                NdRange::new_1d(1, 1),
                &[ArgValue::Buffer(out)],
            )
            .unwrap();
        assert_eq!(mem.read_i32(out), vec![1 + 3 + 5 + 7 + 9]);
    }

    #[test]
    fn helper_function_calls() {
        let m = compile(
            "float square(float x) { return x * x; }
            kernel void k(global float* out) {
                size_t i = get_global_id(0);
                out[i] = square((float)i);
            }",
        );
        let mut mem = DeviceMemory::new();
        let out = mem.alloc(16);
        Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "k",
                NdRange::new_1d(4, 2),
                &[ArgValue::Buffer(out)],
            )
            .unwrap();
        assert_eq!(mem.read_f32(out), vec![0.0, 1.0, 4.0, 9.0]);
    }

    #[test]
    fn local_memory_and_barrier() {
        let m = compile(
            "kernel void rev(global const float* in, global float* out) {
                local float tile[4];
                size_t lid = get_local_id(0);
                size_t ls = get_local_size(0);
                size_t base = get_group_id(0) * ls;
                tile[lid] = in[base + lid];
                barrier(0);
                out[base + lid] = tile[ls - 1 - lid];
            }",
        );
        let mut mem = DeviceMemory::new();
        let inb = mem.alloc(32);
        let out = mem.alloc(32);
        mem.write_f32(inb, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "rev",
                NdRange::new_1d(8, 4),
                &[ArgValue::Buffer(inb), ArgValue::Buffer(out)],
            )
            .unwrap();
        assert_eq!(
            mem.read_f32(out),
            vec![4.0, 3.0, 2.0, 1.0, 8.0, 7.0, 6.0, 5.0]
        );
    }

    #[test]
    fn atomics_count() {
        let m = compile(
            "kernel void count(global int* counter) {
                atomic_add(counter, 1);
            }",
        );
        let mut mem = DeviceMemory::new();
        let c = mem.alloc(4);
        Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "count",
                NdRange::new_1d(64, 8),
                &[ArgValue::Buffer(c)],
            )
            .unwrap();
        assert_eq!(mem.read_i32(c), vec![64]);
    }

    #[test]
    fn ternary_and_logic() {
        let m = compile(
            "kernel void k(global int* out, int n) {
                size_t i = get_global_id(0);
                int v = (int)i;
                out[i] = (v > 1 && v < n) ? v : -v;
            }",
        );
        let mut mem = DeviceMemory::new();
        let out = mem.alloc(16);
        Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "k",
                NdRange::new_1d(4, 2),
                &[ArgValue::Buffer(out), ArgValue::Scalar(Value::I32(3))],
            )
            .unwrap();
        assert_eq!(mem.read_i32(out), vec![0, -1, 2, -3]);
    }

    #[test]
    fn math_builtins() {
        let m = compile(
            "kernel void k(global float* out) {
                out[0] = sqrt(16.0f);
                out[1] = fabs(-2.5f);
                out[2] = min(3.0f, 1.0f);
                out[3] = max(3, 7);
            }",
        );
        let mut mem = DeviceMemory::new();
        let out = mem.alloc(16);
        Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "k",
                NdRange::new_1d(1, 1),
                &[ArgValue::Buffer(out)],
            )
            .unwrap();
        let v = mem.read_f32(out);
        assert_eq!(v[0], 4.0);
        assert_eq!(v[1], 2.5);
        assert_eq!(v[2], 1.0);
        // out[3] stores an int-max result converted on assignment.
        assert_eq!(v[3], 7.0);
    }

    #[test]
    fn type_errors_are_reported() {
        let prog = parse("kernel void k(global float* o) { o[0] = unknown; }").unwrap();
        assert!(lower(&prog).is_err());
        let prog = parse("kernel void k(global float* o) { o[1.5] = 0.0f; }").unwrap();
        assert!(lower(&prog).is_err());
        let prog = parse("int f() { } kernel void k(global int* o) { o[0] = f(); }").unwrap();
        // Fall-off non-void returns zero (documented), so this lowers fine.
        assert!(lower(&prog).is_ok());
        let prog = parse("kernel int k(global int* o) { return 1; }").unwrap();
        assert!(lower(&prog).is_err(), "kernels must return void");
    }

    #[test]
    fn break_outside_loop_rejected() {
        let prog = parse("kernel void k(global int* o) { break; }").unwrap();
        assert!(lower(&prog).is_err());
    }

    #[test]
    fn duplicate_function_rejected() {
        let prog = parse("void f() {} void f() {}").unwrap();
        assert!(lower(&prog).is_err());
    }

    #[test]
    fn dead_code_after_return_is_tolerated() {
        let m = compile(
            "kernel void k(global int* o) {
                o[0] = 1;
                return;
                o[0] = 2;
            }",
        );
        let mut mem = DeviceMemory::new();
        let o = mem.alloc(4);
        Interpreter::new(&m)
            .run_kernel(&mut mem, "k", NdRange::new_1d(1, 1), &[ArgValue::Buffer(o)])
            .unwrap();
        assert_eq!(mem.read_i32(o), vec![1]);
    }

    #[test]
    fn do_while_executes_at_least_once() {
        let m = compile(
            "kernel void k(global int* o) {
                int i = 100;
                int n = 0;
                do { n += 1; i += 1; } while (i < 3);
                o[0] = n;
            }",
        );
        let mut mem = DeviceMemory::new();
        let o = mem.alloc(4);
        Interpreter::new(&m)
            .run_kernel(&mut mem, "k", NdRange::new_1d(1, 1), &[ArgValue::Buffer(o)])
            .unwrap();
        assert_eq!(mem.read_i32(o), vec![1]);
    }

    #[test]
    fn pointer_arithmetic() {
        let m = compile(
            "kernel void k(global float* o) {
                global float* p = o + 2;
                p[0] = 5.0f;
            }",
        );
        let mut mem = DeviceMemory::new();
        let o = mem.alloc(16);
        Interpreter::new(&m)
            .run_kernel(&mut mem, "k", NdRange::new_1d(1, 1), &[ArgValue::Buffer(o)])
            .unwrap();
        assert_eq!(mem.read_f32(o)[2], 5.0);
    }
}
