//! Abstract syntax tree for MiniCL.
//!
//! Every expression and declaration carries a [`NodeId`] so later passes
//! (type checking, resolution) can attach information in side tables without
//! mutating the tree.

use crate::token::Pos;
use kernel_ir::types::AddressSpace;

/// Unique id of an AST node within one translation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Base (non-pointer) source types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseType {
    /// `void`
    Void,
    /// `bool`
    Bool,
    /// `int`
    Int,
    /// `uint` (modelled as `i32`; MiniCL has no unsigned arithmetic).
    Uint,
    /// `long`
    Long,
    /// `size_t` (modelled as `i64`).
    SizeT,
    /// `float`
    Float,
    /// `double`
    Double,
}

/// A syntactic type: base type, optional pointer, optional address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeName {
    /// Address space qualifier (`global float*`); defaults to `Private` for
    /// non-pointer declarations.
    pub space: Option<AddressSpace>,
    /// Whether `const` was written (informational; `constant` is the
    /// enforced read-only space).
    pub is_const: bool,
    /// The scalar base type.
    pub base: BaseType,
    /// Whether a `*` followed.
    pub is_ptr: bool,
}

/// Binary operators (source level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Compound assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Rem,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Node id for side tables.
    pub id: NodeId,
    /// Source position.
    pub pos: Pos,
    /// The expression kind.
    pub kind: ExprKind,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal; `bool` is `true` for single precision (`f` suffix).
    FloatLit(f64, bool),
    /// `true`/`false`.
    BoolLit(bool),
    /// Variable reference.
    Ident(String),
    /// Binary operation.
    Bin(BinKind, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnKind, Box<Expr>),
    /// C-style cast `(float)x`.
    Cast(TypeName, Box<Expr>),
    /// Indexing `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Call of a user function or builtin.
    Call(String, Vec<Expr>),
    /// Ternary `c ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Var(String, NodeId, Pos),
    /// `base[index]` where `base` evaluates to a pointer.
    Index(Box<Expr>, Box<Expr>, NodeId, Pos),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Variable declaration, optionally an array, optionally initialised.
    Decl {
        /// Node id (resolution attaches the slot here).
        id: NodeId,
        /// Position of the name.
        pos: Pos,
        /// Declared type.
        ty: TypeName,
        /// Variable name.
        name: String,
        /// `Some(n)` for `T name[n];`.
        array: Option<u32>,
        /// Initialiser (scalars only).
        init: Option<Expr>,
    },
    /// Assignment through an lvalue.
    Assign {
        /// Target.
        target: LValue,
        /// Plain or compound operator.
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `do { } while (c);` loop.
    DoWhile {
        /// Body.
        body: Vec<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for` loop. Init and step are restricted to declaration/assignment
    /// statements (C expression-statements like `i++` are accepted by the
    /// parser and desugared).
    For {
        /// Optional init statement.
        init: Option<Box<Stmt>>,
        /// Optional condition (absent = infinite).
        cond: Option<Expr>,
        /// Optional step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `return expr?;`
    Return(Option<Expr>, Pos),
    /// `break;`
    Break(Pos),
    /// `continue;`
    Continue(Pos),
    /// Expression evaluated for side effects (function call).
    ExprStmt(Expr),
    /// `barrier(...)`.
    Barrier(Pos),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Node id (resolution attaches the slot here).
    pub id: NodeId,
    /// Position.
    pub pos: Pos,
    /// Declared type.
    pub ty: TypeName,
    /// Name.
    pub name: String,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Position of the name.
    pub pos: Pos,
    /// Whether declared `kernel`.
    pub is_kernel: bool,
    /// Return type.
    pub ret: TypeName,
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<ParamDecl>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Function definitions in source order.
    pub functions: Vec<FuncDecl>,
    /// Number of node ids handed out (side tables can size themselves).
    pub node_count: u32,
}
