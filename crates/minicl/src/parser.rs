//! Recursive-descent parser for MiniCL.
//!
//! Grammar (C-like, simplified to what accelerator kernels actually use):
//!
//! ```text
//! program   := func*
//! func      := 'kernel'? type IDENT '(' params? ')' block
//! stmt      := decl | if | while | do-while | for | return
//!            | break | continue | assign | call-stmt | block
//! expr      := ternary with C precedence, casts, calls, indexing
//! ```
//!
//! `++i` / `i--` are accepted as statements (and `for` clauses) and desugared
//! into compound assignments.

use crate::ast::*;
use crate::error::CompileError;
use crate::token::{lex, Kw, Pos, Tok, Token};
use kernel_ir::types::AddressSpace;

/// Parse a MiniCL translation unit.
///
/// # Errors
///
/// Returns the first [`CompileError`] encountered (lexical or syntactic).
///
/// # Examples
///
/// ```
/// let src = "kernel void k(global float* out) { out[get_global_id(0)] = 1.0f; }";
/// let prog = minicl::parser::parse(src).unwrap();
/// assert_eq!(prog.functions.len(), 1);
/// assert!(prog.functions[0].is_kernel);
/// ```
pub fn parse(src: &str) -> Result<Program, CompileError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_id: 0,
    };
    let mut functions = Vec::new();
    while !p.at(&Tok::Eof) {
        functions.push(p.function()?);
    }
    Ok(Program {
        functions,
        node_count: p.next_id,
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn here(&self) -> Pos {
        self.tokens[self.pos].pos
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), CompileError> {
        if self.at(t) {
            self.bump();
            Ok(())
        } else {
            Err(CompileError::at(
                self.here(),
                format!("expected {t}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Pos), CompileError> {
        let pos = self.here();
        match self.bump() {
            Tok::Ident(s) => Ok((s, pos)),
            other => Err(CompileError::at(
                pos,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn is_type_start(&self, tok: &Tok) -> bool {
        matches!(
            tok,
            Tok::Kw(
                Kw::Void
                    | Kw::Bool
                    | Kw::Int
                    | Kw::Uint
                    | Kw::Long
                    | Kw::SizeT
                    | Kw::Float
                    | Kw::Double
                    | Kw::Global
                    | Kw::Local
                    | Kw::Constant
                    | Kw::Private
                    | Kw::Const
            )
        )
    }

    fn type_name(&mut self) -> Result<TypeName, CompileError> {
        let mut space = None;
        let mut is_const = false;
        loop {
            match self.peek() {
                Tok::Kw(Kw::Global) => {
                    space = Some(AddressSpace::Global);
                    self.bump();
                }
                Tok::Kw(Kw::Local) => {
                    space = Some(AddressSpace::Local);
                    self.bump();
                }
                Tok::Kw(Kw::Constant) => {
                    space = Some(AddressSpace::Constant);
                    self.bump();
                }
                Tok::Kw(Kw::Private) => {
                    space = Some(AddressSpace::Private);
                    self.bump();
                }
                Tok::Kw(Kw::Const) => {
                    is_const = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let pos = self.here();
        let base = match self.bump() {
            Tok::Kw(Kw::Void) => BaseType::Void,
            Tok::Kw(Kw::Bool) => BaseType::Bool,
            Tok::Kw(Kw::Int) => BaseType::Int,
            Tok::Kw(Kw::Uint) => BaseType::Uint,
            Tok::Kw(Kw::Long) => BaseType::Long,
            Tok::Kw(Kw::SizeT) => BaseType::SizeT,
            Tok::Kw(Kw::Float) => BaseType::Float,
            Tok::Kw(Kw::Double) => BaseType::Double,
            other => {
                return Err(CompileError::at(
                    pos,
                    format!("expected a type, found {other}"),
                ))
            }
        };
        // trailing `const` (e.g. `float const`)
        if self.at(&Tok::Kw(Kw::Const)) {
            is_const = true;
            self.bump();
        }
        let is_ptr = if self.at(&Tok::Star) {
            self.bump();
            // `float* const`
            if self.at(&Tok::Kw(Kw::Const)) {
                self.bump();
                is_const = true;
            }
            true
        } else {
            false
        };
        Ok(TypeName {
            space,
            is_const,
            base,
            is_ptr,
        })
    }

    fn function(&mut self) -> Result<FuncDecl, CompileError> {
        let is_kernel = if self.at(&Tok::Kw(Kw::Kernel)) {
            self.bump();
            true
        } else {
            false
        };
        let ret = self.type_name()?;
        let (name, pos) = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                let ty = self.type_name()?;
                let id = self.id();
                let (pname, ppos) = self.ident()?;
                params.push(ParamDecl {
                    id,
                    pos: ppos,
                    ty,
                    name: pname,
                });
                if self.at(&Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let body = self.block()?;
        Ok(FuncDecl {
            pos,
            is_kernel,
            ret,
            name,
            params,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&Tok::RBrace) {
            if self.at(&Tok::Eof) {
                return Err(CompileError::at(self.here(), "unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    /// A block, or a single statement treated as a one-statement block.
    fn block_or_stmt(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.at(&Tok::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.here();
        match self.peek() {
            Tok::Kw(Kw::If) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then_branch = self.block_or_stmt()?;
                let else_branch = if self.at(&Tok::Kw(Kw::Else)) {
                    self.bump();
                    self.block_or_stmt()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Kw(Kw::Do) => {
                self.bump();
                let body = self.block_or_stmt()?;
                self.expect(&Tok::Kw(Kw::While))?;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = if self.at(&Tok::Semi) {
                    self.bump();
                    None
                } else {
                    let s = self.simple_stmt()?; // consumes `;`
                    Some(Box::new(s))
                };
                let cond = if self.at(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                let step = if self.at(&Tok::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_no_semi()?))
                };
                self.expect(&Tok::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let value = if self.at(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(value, pos))
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Break(pos))
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Continue(pos))
            }
            _ => self.simple_stmt(),
        }
    }

    /// Declaration / assignment / increment / call, ending with `;`.
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let s = self.simple_stmt_no_semi()?;
        self.expect(&Tok::Semi)?;
        Ok(s)
    }

    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, CompileError> {
        let t = self.peek().clone();
        if self.is_type_start(&t) {
            return self.decl();
        }
        // Prefix ++/--
        if matches!(t, Tok::PlusPlus | Tok::MinusMinus) {
            self.bump();
            let e = self.postfix_expr()?;
            let target = self.lvalue_of(e)?;
            let op = if t == Tok::PlusPlus {
                AssignOp::Add
            } else {
                AssignOp::Sub
            };
            return Ok(self.incr_assign(target, op));
        }
        let e = self.expr()?;
        let epos = e.pos;
        match self.peek().clone() {
            Tok::Eq | Tok::PlusEq | Tok::MinusEq | Tok::StarEq | Tok::SlashEq | Tok::PercentEq => {
                let op = match self.bump() {
                    Tok::Eq => AssignOp::Set,
                    Tok::PlusEq => AssignOp::Add,
                    Tok::MinusEq => AssignOp::Sub,
                    Tok::StarEq => AssignOp::Mul,
                    Tok::SlashEq => AssignOp::Div,
                    Tok::PercentEq => AssignOp::Rem,
                    _ => unreachable!(),
                };
                let target = self.lvalue_of(e)?;
                let value = self.expr()?;
                Ok(Stmt::Assign { target, op, value })
            }
            Tok::PlusPlus | Tok::MinusMinus => {
                let t = self.bump();
                let target = self.lvalue_of(e)?;
                let op = if t == Tok::PlusPlus {
                    AssignOp::Add
                } else {
                    AssignOp::Sub
                };
                Ok(self.incr_assign(target, op))
            }
            _ => match &e.kind {
                ExprKind::Call(name, _) if name == "barrier" => Ok(Stmt::Barrier(epos)),
                ExprKind::Call(..) => Ok(Stmt::ExprStmt(e)),
                _ => Err(CompileError::at(epos, "expression statement has no effect")),
            },
        }
    }

    fn incr_assign(&mut self, target: LValue, op: AssignOp) -> Stmt {
        let id = self.id();
        let pos = match &target {
            LValue::Var(_, _, p) => *p,
            LValue::Index(_, _, _, p) => *p,
        };
        Stmt::Assign {
            target,
            op,
            value: Expr {
                id,
                pos,
                kind: ExprKind::IntLit(1),
            },
        }
    }

    fn lvalue_of(&mut self, e: Expr) -> Result<LValue, CompileError> {
        match e.kind {
            ExprKind::Ident(name) => Ok(LValue::Var(name, e.id, e.pos)),
            ExprKind::Index(base, index) => Ok(LValue::Index(base, index, e.id, e.pos)),
            _ => Err(CompileError::at(e.pos, "invalid assignment target")),
        }
    }

    fn decl(&mut self) -> Result<Stmt, CompileError> {
        let ty = self.type_name()?;
        let id = self.id();
        let (name, pos) = self.ident()?;
        let array = if self.at(&Tok::LBracket) {
            self.bump();
            let npos = self.here();
            let n = match self.bump() {
                Tok::IntLit(v) if v > 0 => v as u32,
                other => {
                    return Err(CompileError::at(
                        npos,
                        format!("array size must be a positive integer literal, found {other}"),
                    ))
                }
            };
            self.expect(&Tok::RBracket)?;
            Some(n)
        } else {
            None
        };
        let init = if self.at(&Tok::Eq) {
            self.bump();
            if array.is_some() {
                return Err(CompileError::at(
                    pos,
                    "array initialisers are not supported",
                ));
            }
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Decl {
            id,
            pos,
            ty,
            name,
            array,
            init,
        })
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary(0)?;
        if self.at(&Tok::Question) {
            let pos = self.here();
            self.bump();
            let a = self.expr()?;
            self.expect(&Tok::Colon)?;
            let b = self.ternary()?;
            let id = self.id();
            Ok(Expr {
                id,
                pos,
                kind: ExprKind::Ternary(Box::new(cond), Box::new(a), Box::new(b)),
            })
        } else {
            Ok(cond)
        }
    }

    fn bin_kind(tok: &Tok) -> Option<(BinKind, u8)> {
        // Higher number binds tighter.
        Some(match tok {
            Tok::PipePipe => (BinKind::LogOr, 1),
            Tok::AmpAmp => (BinKind::LogAnd, 2),
            Tok::Pipe => (BinKind::Or, 3),
            Tok::Caret => (BinKind::Xor, 4),
            Tok::Amp => (BinKind::And, 5),
            Tok::EqEq => (BinKind::Eq, 6),
            Tok::Ne => (BinKind::Ne, 6),
            Tok::Lt => (BinKind::Lt, 7),
            Tok::Le => (BinKind::Le, 7),
            Tok::Gt => (BinKind::Gt, 7),
            Tok::Ge => (BinKind::Ge, 7),
            Tok::Shl => (BinKind::Shl, 8),
            Tok::Shr => (BinKind::Shr, 8),
            Tok::Plus => (BinKind::Add, 9),
            Tok::Minus => (BinKind::Sub, 9),
            Tok::Star => (BinKind::Mul, 10),
            Tok::Slash => (BinKind::Div, 10),
            Tok::Percent => (BinKind::Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        while let Some((kind, prec)) = Self::bin_kind(self.peek()) {
            if prec < min_prec {
                break;
            }
            let pos = self.here();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let id = self.id();
            lhs = Expr {
                id,
                pos,
                kind: ExprKind::Bin(kind, Box::new(lhs), Box::new(rhs)),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.here();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                let id = self.id();
                Ok(Expr {
                    id,
                    pos,
                    kind: ExprKind::Un(UnKind::Neg, Box::new(e)),
                })
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary()?;
                let id = self.id();
                Ok(Expr {
                    id,
                    pos,
                    kind: ExprKind::Un(UnKind::Not, Box::new(e)),
                })
            }
            Tok::LParen if self.is_type_start(self.peek2()) => {
                // cast
                self.bump();
                let ty = self.type_name()?;
                self.expect(&Tok::RParen)?;
                let e = self.unary()?;
                let id = self.id();
                Ok(Expr {
                    id,
                    pos,
                    kind: ExprKind::Cast(ty, Box::new(e)),
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            if self.at(&Tok::LBracket) {
                let pos = self.here();
                self.bump();
                let idx = self.expr()?;
                self.expect(&Tok::RBracket)?;
                let id = self.id();
                e = Expr {
                    id,
                    pos,
                    kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.here();
        match self.bump() {
            Tok::IntLit(v) => {
                let id = self.id();
                Ok(Expr {
                    id,
                    pos,
                    kind: ExprKind::IntLit(v),
                })
            }
            Tok::FloatLit(v, single) => {
                let id = self.id();
                Ok(Expr {
                    id,
                    pos,
                    kind: ExprKind::FloatLit(v, single),
                })
            }
            Tok::Kw(Kw::True) => {
                let id = self.id();
                Ok(Expr {
                    id,
                    pos,
                    kind: ExprKind::BoolLit(true),
                })
            }
            Tok::Kw(Kw::False) => {
                let id = self.id();
                Ok(Expr {
                    id,
                    pos,
                    kind: ExprKind::BoolLit(false),
                })
            }
            Tok::Ident(name) => {
                if self.at(&Tok::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.at(&Tok::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    let id = self.id();
                    Ok(Expr {
                        id,
                        pos,
                        kind: ExprKind::Call(name, args),
                    })
                } else {
                    let id = self.id();
                    Ok(Expr {
                        id,
                        pos,
                        kind: ExprKind::Ident(name),
                    })
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(CompileError::at(
                pos,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figure8_kernel() {
        let src = r#"
            kernel void mop(global const float* ina, global const float* inb,
                            global float* out) {
                size_t gid = get_global_id(0);
                size_t grid = get_group_id(0);
                if (grid < 4) {
                    out[gid] = ina[gid] + inb[gid];
                } else {
                    out[gid] = ina[gid] - inb[gid];
                }
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.functions.len(), 1);
        let f = &prog.functions[0];
        assert!(f.is_kernel);
        assert_eq!(f.name, "mop");
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.body.len(), 3);
        assert!(matches!(f.body[2], Stmt::If { .. }));
    }

    #[test]
    fn parses_for_loop_with_increments() {
        let src = r#"
            float dot(global float* a, global float* b, int n) {
                float acc = 0.0f;
                for (int i = 0; i < n; ++i) {
                    acc += a[i] * b[i];
                }
                return acc;
            }
        "#;
        let prog = parse(src).unwrap();
        let f = &prog.functions[0];
        assert!(!f.is_kernel);
        match &f.body[1] {
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(matches!(step.as_deref(), Some(Stmt::Assign { .. })));
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_local_arrays_and_barrier() {
        let src = r#"
            kernel void k(global float* out) {
                local float tile[64];
                float acc[4];
                tile[get_local_id(0)] = 0.0f;
                barrier(CLK_LOCAL_MEM_FENCE);
                out[0] = tile[0] + acc[0];
            }
        "#;
        let prog = parse(src).unwrap();
        let body = &prog.functions[0].body;
        assert!(matches!(
            &body[0],
            Stmt::Decl {
                array: Some(64),
                ty: TypeName {
                    space: Some(AddressSpace::Local),
                    ..
                },
                ..
            }
        ));
        assert!(matches!(&body[1], Stmt::Decl { array: Some(4), .. }));
        assert!(matches!(&body[3], Stmt::Barrier(_)));
    }

    #[test]
    fn precedence_and_ternary() {
        let prog = parse("int f(int a, int b) { return a + b * 2 < 10 ? a : b; }").unwrap();
        match &prog.functions[0].body[0] {
            Stmt::Return(Some(e), _) => match &e.kind {
                ExprKind::Ternary(c, _, _) => match &c.kind {
                    ExprKind::Bin(BinKind::Lt, l, _) => {
                        assert!(matches!(l.kind, ExprKind::Bin(BinKind::Add, _, _)));
                    }
                    other => panic!("expected <, got {other:?}"),
                },
                other => panic!("expected ternary, got {other:?}"),
            },
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn parses_casts() {
        let prog = parse("float f(int x) { return (float)x / 2.0f; }").unwrap();
        match &prog.functions[0].body[0] {
            Stmt::Return(Some(e), _) => {
                assert!(matches!(
                    &e.kind,
                    ExprKind::Bin(BinKind::Div, l, _) if matches!(l.kind, ExprKind::Cast(..))
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_while_do_break_continue() {
        let src = r#"
            void f(int n) {
                int i = 0;
                while (i < n) {
                    i++;
                    if (i == 3) continue;
                    if (i == 7) break;
                }
                do { i--; } while (i > 0);
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.functions[0].body.len(), 3);
        assert!(matches!(prog.functions[0].body[2], Stmt::DoWhile { .. }));
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(parse("kernel void k( {").is_err());
        assert!(parse("void f() { 1 + 2; }").is_err()); // no effect
        assert!(parse("void f() { int a[0]; }").is_err()); // zero-size array
        assert!(parse("void f() { return }").is_err());
        assert!(parse("void f() { x = ; }").is_err());
    }

    #[test]
    fn single_statement_bodies() {
        let prog = parse("void f(int n) { if (n > 0) n = 1; else n = 2; }").unwrap();
        match &prog.functions[0].body[0] {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                assert_eq!(then_branch.len(), 1);
                assert_eq!(else_branch.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn call_statement_is_expr_stmt() {
        let prog = parse("void g(int x) { } void f() { g(1); }").unwrap();
        assert!(matches!(prog.functions[1].body[0], Stmt::ExprStmt(_)));
    }
}
