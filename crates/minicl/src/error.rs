//! Compilation error type for MiniCL.

use crate::token::Pos;
use std::error::Error;
use std::fmt;

/// A front-end error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Where the error occurred (0:0 when unknown).
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Error at a known position.
    pub fn at(pos: Pos, message: impl Into<String>) -> Self {
        CompileError {
            pos,
            message: message.into(),
        }
    }

    /// Error without a position.
    pub fn new(message: impl Into<String>) -> Self {
        CompileError {
            pos: Pos::default(),
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pos.line == 0 {
            f.write_str(&self.message)
        } else {
            write!(f, "{}: {}", self.pos, self.message)
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CompileError::at(Pos { line: 3, col: 7 }, "bad token");
        assert_eq!(e.to_string(), "3:7: bad token");
        assert_eq!(CompileError::new("no pos").to_string(), "no pos");
    }
}
