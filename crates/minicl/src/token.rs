//! Lexical analysis for MiniCL, the OpenCL C dialect of this reproduction.

use crate::error::CompileError;
use std::fmt;

/// Source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword-adjacent name.
    Ident(String),
    /// Integer literal (decimal or `0x` hex).
    IntLit(i64),
    /// Float literal; `true` when suffixed `f`/`F` (single precision).
    FloatLit(f64, bool),
    /// A keyword.
    Kw(Kw),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `!`
    Bang,
    /// `~`
    Tilde,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `=`
    Eq,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `*=`
    StarEq,
    /// `/=`
    SlashEq,
    /// `%=`
    PercentEq,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::IntLit(v) => write!(f, "integer literal `{v}`"),
            Tok::FloatLit(v, _) => write!(f, "float literal `{v}`"),
            Tok::Kw(k) => write!(f, "keyword `{k}`"),
            Tok::Eof => f.write_str("end of input"),
            other => {
                let s = match other {
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Semi => ";",
                    Tok::Comma => ",",
                    Tok::Question => "?",
                    Tok::Colon => ":",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::PlusPlus => "++",
                    Tok::MinusMinus => "--",
                    Tok::Bang => "!",
                    Tok::Tilde => "~",
                    Tok::Amp => "&",
                    Tok::Pipe => "|",
                    Tok::Caret => "^",
                    Tok::AmpAmp => "&&",
                    Tok::PipePipe => "||",
                    Tok::Shl => "<<",
                    Tok::Shr => ">>",
                    Tok::Lt => "<",
                    Tok::Gt => ">",
                    Tok::Le => "<=",
                    Tok::Ge => ">=",
                    Tok::EqEq => "==",
                    Tok::Ne => "!=",
                    Tok::Eq => "=",
                    Tok::PlusEq => "+=",
                    Tok::MinusEq => "-=",
                    Tok::StarEq => "*=",
                    Tok::SlashEq => "/=",
                    Tok::PercentEq => "%=",
                    _ => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}

/// MiniCL keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    /// `kernel` (also accepts `__kernel`).
    Kernel,
    /// `void`
    Void,
    /// `bool`
    Bool,
    /// `int`
    Int,
    /// `uint`
    Uint,
    /// `long`
    Long,
    /// `size_t`
    SizeT,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `global` (also `__global`)
    Global,
    /// `local` (also `__local`)
    Local,
    /// `constant` (also `__constant`)
    Constant,
    /// `private` (also `__private`)
    Private,
    /// `const`
    Const,
    /// `if`
    If,
    /// `else`
    Else,
    /// `for`
    For,
    /// `while`
    While,
    /// `do`
    Do,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `true`
    True,
    /// `false`
    False,
}

impl fmt::Display for Kw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Kw::Kernel => "kernel",
            Kw::Void => "void",
            Kw::Bool => "bool",
            Kw::Int => "int",
            Kw::Uint => "uint",
            Kw::Long => "long",
            Kw::SizeT => "size_t",
            Kw::Float => "float",
            Kw::Double => "double",
            Kw::Global => "global",
            Kw::Local => "local",
            Kw::Constant => "constant",
            Kw::Private => "private",
            Kw::Const => "const",
            Kw::If => "if",
            Kw::Else => "else",
            Kw::For => "for",
            Kw::While => "while",
            Kw::Do => "do",
            Kw::Return => "return",
            Kw::Break => "break",
            Kw::Continue => "continue",
            Kw::True => "true",
            Kw::False => "false",
        };
        f.write_str(s)
    }
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "kernel" | "__kernel" => Kw::Kernel,
        "void" => Kw::Void,
        "bool" => Kw::Bool,
        "int" => Kw::Int,
        "uint" | "unsigned" => Kw::Uint,
        "long" => Kw::Long,
        "size_t" => Kw::SizeT,
        "float" => Kw::Float,
        "double" => Kw::Double,
        "global" | "__global" => Kw::Global,
        "local" | "__local" => Kw::Local,
        "constant" | "__constant" => Kw::Constant,
        "private" | "__private" => Kw::Private,
        "const" => Kw::Const,
        "if" => Kw::If,
        "else" => Kw::Else,
        "for" => Kw::For,
        "while" => Kw::While,
        "do" => Kw::Do,
        "return" => Kw::Return,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "true" => Kw::True,
        "false" => Kw::False,
        _ => return None,
    })
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Position of the first character.
    pub pos: Pos,
}

/// Tokenise MiniCL source.
///
/// Line (`//`) and block (`/* */`) comments are skipped.
///
/// # Errors
///
/// Returns [`CompileError`] on unknown characters, malformed numbers and
/// unterminated block comments.
///
/// # Examples
///
/// ```
/// use minicl::token::{lex, Tok};
/// let toks = lex("x = 42;").unwrap();
/// assert_eq!(toks[1].tok, Tok::Eq);
/// assert_eq!(toks[2].tok, Tok::IntLit(42));
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! advance {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                advance!();
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    advance!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                advance!();
                advance!();
                let mut closed = false;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        advance!();
                        advance!();
                        closed = true;
                        break;
                    }
                    advance!();
                }
                if !closed {
                    return Err(CompileError::at(pos, "unterminated block comment"));
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    advance!();
                }
                let word = &src[start..i];
                let tok = match keyword(word) {
                    Some(k) => Tok::Kw(k),
                    None => Tok::Ident(word.to_string()),
                };
                toks.push(Token { tok, pos });
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 32) == b'x' {
                    advance!();
                    advance!();
                    let hs = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        advance!();
                    }
                    let v = i64::from_str_radix(&src[hs..i], 16)
                        .map_err(|e| CompileError::at(pos, format!("bad hex literal: {e}")))?;
                    toks.push(Token {
                        tok: Tok::IntLit(v),
                        pos,
                    });
                    continue;
                }
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    advance!();
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    advance!();
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        advance!();
                    }
                }
                if i < bytes.len() && (bytes[i] | 32) == b'e' {
                    is_float = true;
                    advance!();
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        advance!();
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        advance!();
                    }
                }
                let text = &src[start..i];
                let mut single = false;
                if i < bytes.len() && (bytes[i] | 32) == b'f' {
                    is_float = true;
                    single = true;
                    advance!();
                }
                let tok = if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|e| CompileError::at(pos, format!("bad float literal: {e}")))?;
                    Tok::FloatLit(v, single)
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|e| CompileError::at(pos, format!("bad int literal: {e}")))?;
                    Tok::IntLit(v)
                };
                toks.push(Token { tok, pos });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (tok, len) = match two {
                    "++" => (Tok::PlusPlus, 2),
                    "--" => (Tok::MinusMinus, 2),
                    "&&" => (Tok::AmpAmp, 2),
                    "||" => (Tok::PipePipe, 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::Ne, 2),
                    "+=" => (Tok::PlusEq, 2),
                    "-=" => (Tok::MinusEq, 2),
                    "*=" => (Tok::StarEq, 2),
                    "/=" => (Tok::SlashEq, 2),
                    "%=" => (Tok::PercentEq, 2),
                    _ => {
                        let t = match c {
                            b'(' => Tok::LParen,
                            b')' => Tok::RParen,
                            b'{' => Tok::LBrace,
                            b'}' => Tok::RBrace,
                            b'[' => Tok::LBracket,
                            b']' => Tok::RBracket,
                            b';' => Tok::Semi,
                            b',' => Tok::Comma,
                            b'?' => Tok::Question,
                            b':' => Tok::Colon,
                            b'*' => Tok::Star,
                            b'/' => Tok::Slash,
                            b'%' => Tok::Percent,
                            b'+' => Tok::Plus,
                            b'-' => Tok::Minus,
                            b'!' => Tok::Bang,
                            b'~' => Tok::Tilde,
                            b'&' => Tok::Amp,
                            b'|' => Tok::Pipe,
                            b'^' => Tok::Caret,
                            b'<' => Tok::Lt,
                            b'>' => Tok::Gt,
                            b'=' => Tok::Eq,
                            other => {
                                return Err(CompileError::at(
                                    pos,
                                    format!("unexpected character `{}`", other as char),
                                ));
                            }
                        };
                        (t, 1)
                    }
                };
                for _ in 0..len {
                    advance!();
                }
                toks.push(Token { tok, pos });
            }
        }
    }
    toks.push(Token {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_kernel_header() {
        let toks = kinds("kernel void mop(global const float* ina)");
        assert_eq!(
            toks,
            vec![
                Tok::Kw(Kw::Kernel),
                Tok::Kw(Kw::Void),
                Tok::Ident("mop".into()),
                Tok::LParen,
                Tok::Kw(Kw::Global),
                Tok::Kw(Kw::Const),
                Tok::Kw(Kw::Float),
                Tok::Star,
                Tok::Ident("ina".into()),
                Tok::RParen,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], Tok::IntLit(42));
        assert_eq!(kinds("0x1F")[0], Tok::IntLit(31));
        assert_eq!(kinds("1.5")[0], Tok::FloatLit(1.5, false));
        assert_eq!(kinds("1.5f")[0], Tok::FloatLit(1.5, true));
        assert_eq!(kinds("2e3")[0], Tok::FloatLit(2000.0, false));
        assert_eq!(kinds("1.0e-2f")[0], Tok::FloatLit(0.01, true));
        assert_eq!(kinds("3f")[0], Tok::FloatLit(3.0, true));
    }

    #[test]
    fn lexes_double_underscore_keywords() {
        assert_eq!(kinds("__kernel")[0], Tok::Kw(Kw::Kernel));
        assert_eq!(kinds("__global")[0], Tok::Kw(Kw::Global));
        assert_eq!(kinds("__local")[0], Tok::Kw(Kw::Local));
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("a // comment\n b /* multi\nline */ c");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn multi_char_operators() {
        let toks = kinds("a<<=1"); // lexes as a, <<, =, 1
        assert_eq!(toks[1], Tok::Shl);
        assert_eq!(kinds("a+=b")[1], Tok::PlusEq);
        assert_eq!(kinds("a&&b")[1], Tok::AmpAmp);
        assert_eq!(kinds("i++")[1], Tok::PlusPlus);
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a $ b").is_err());
        assert!(lex("/* open").is_err());
    }
}
