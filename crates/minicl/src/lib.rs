//! # minicl — a mini OpenCL C front end
//!
//! The front-end substrate of the accelOS (CGO 2016) reproduction. It
//! compiles a practical subset of OpenCL C ("MiniCL") into the [`kernel_ir`]
//! intermediate representation that the accelOS JIT transforms and the
//! bundled interpreter executes.
//!
//! Pipeline: [`token::lex`] → [`parser::parse`] → [`lower::lower`] →
//! `kernel_ir::verify`.
//!
//! The dialect covers what accelerator kernels actually use: scalar types
//! (`int`, `uint`, `long`, `size_t`, `float`, `double`, `bool`), pointers
//! qualified by `global`/`local`/`constant`/`private`, arrays in private or
//! local memory, `if`/`while`/`do`/`for`/`break`/`continue`/`return`,
//! work-item builtins (`get_global_id`, …), math builtins (`sqrt`, `exp`,
//! `min`/`max`, …), atomics (`atomic_add`, …) and `barrier()`. See
//! [`lower`] for the documented semantic simplifications.
//!
//! # Examples
//!
//! ```
//! use kernel_ir::interp::{ArgValue, DeviceMemory, Interpreter, NdRange};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = minicl::compile(
//!     "kernel void scale(global float* buf, float s) {
//!         size_t i = get_global_id(0);
//!         buf[i] = buf[i] * s;
//!     }",
//! )?;
//!
//! let mut mem = DeviceMemory::new();
//! let buf = mem.alloc(4 * 4);
//! mem.write_f32(buf, &[1.0, 2.0, 3.0, 4.0]);
//! Interpreter::new(&module).run_kernel(
//!     &mut mem,
//!     "scale",
//!     NdRange::new_1d(4, 2),
//!     &[ArgValue::Buffer(buf), ArgValue::Scalar(kernel_ir::Value::F32(10.0))],
//! )?;
//! assert_eq!(mem.read_f32(buf), vec![10.0, 20.0, 30.0, 40.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lower;
pub mod parser;
pub mod token;

pub use error::CompileError;

use kernel_ir::ir::Module;

/// Compile MiniCL source into a verified IR [`Module`].
///
/// # Errors
///
/// Returns a [`CompileError`] on lexical, syntactic or type errors, and an
/// internal error if the produced IR fails verification (which would be a
/// bug in the front end, not in the input).
pub fn compile(src: &str) -> Result<Module, CompileError> {
    let prog = parser::parse(src)?;
    let module = lower::lower(&prog)?;
    kernel_ir::verify::verify_module(&module)
        .map_err(|e| CompileError::new(format!("internal: lowered IR failed verification: {e}")))?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_smoke() {
        let m = compile("kernel void k(global int* o) { o[get_global_id(0)] = 1; }").unwrap();
        assert_eq!(m.kernel_names(), vec!["k"]);
    }

    #[test]
    fn compile_reports_parse_errors() {
        assert!(compile("kernel void k( {").is_err());
    }

    #[test]
    fn compile_reports_type_errors() {
        assert!(compile("kernel void k(global int* o) { o[0] = nope(); }").is_err());
    }
}
