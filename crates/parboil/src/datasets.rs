//! Dataset generators: build real (functional-plane) launches for every
//! Parboil kernel at a reduced scale.
//!
//! Each generator allocates and fills the kernel's buffers with seeded
//! pseudo-random data shaped like the original benchmark's inputs (CSR
//! graphs for `bfs`/`spmv`, packed atoms for `cutcp`, sample streams for
//! the `histo`/`mri` families, frames for `sad`, matrices for `sgemm`),
//! binds the arguments, and returns the launch geometry. Scale 1 is small
//! enough for the interpreter; larger scales grow the dataset linearly.

use crate::KernelSpec;
use clrt::{Arg, Buffer, ClError, Context, Kernel, Program};
use kernel_ir::interp::NdRange;
use kernel_ir::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A ready-to-enqueue functional launch.
#[derive(Debug)]
pub struct PreparedLaunch {
    /// The kernel with every argument bound.
    pub kernel: Kernel,
    /// Launch geometry (reduced scale).
    pub ndrange: NdRange,
    /// Buffers of interest for validation (kernel-specific meaning).
    pub outputs: Vec<Buffer>,
}

fn rng_for(spec: &KernelSpec, seed: u64) -> StdRng {
    let mut h: u64 = seed ^ 0x9e37_79b9_7f4a_7c15;
    for b in spec.name.bytes() {
        h = h.rotate_left(7) ^ b as u64;
    }
    StdRng::seed_from_u64(h)
}

fn f32s(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.random::<f32>()).collect()
}

fn i32s(rng: &mut StdRng, n: usize, lo: i32, hi: i32) -> Vec<i32> {
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

/// CSR adjacency with `nodes` rows and degrees in `0..max_deg`.
fn csr(rng: &mut StdRng, nodes: usize, max_deg: i32) -> (Vec<i32>, Vec<i32>) {
    let mut row_ptr = Vec::with_capacity(nodes + 1);
    let mut cols = Vec::new();
    row_ptr.push(0);
    for _ in 0..nodes {
        let deg = rng.random_range(0..max_deg);
        for _ in 0..deg {
            cols.push(rng.random_range(0..nodes as i32));
        }
        row_ptr.push(cols.len() as i32);
    }
    (row_ptr, cols)
}

/// Build the functional launch for `spec` at `scale` (1 = smallest).
///
/// # Errors
///
/// Propagates [`ClError`] from buffer writes and argument binding; returns
/// [`ClError::InvalidKernelName`] if `program` was not built from the
/// spec's source.
///
/// # Panics
///
/// Panics if `scale` is zero.
pub fn prepare_launch(
    spec: &KernelSpec,
    ctx: &mut Context,
    program: &Program,
    scale: usize,
    seed: u64,
) -> Result<PreparedLaunch, ClError> {
    assert!(scale > 0, "scale must be at least 1");
    let mut rng = rng_for(spec, seed);
    let mut kernel = program.create_kernel(spec.entry)?;
    let s = scale;

    // Shorthands for building buffers.
    macro_rules! fbuf {
        ($data:expr) => {{
            let d: Vec<f32> = $data;
            let b = ctx.create_buffer(d.len() * 4);
            ctx.write_f32(b, &d)?;
            b
        }};
    }
    macro_rules! ibuf {
        ($data:expr) => {{
            let d: Vec<i32> = $data;
            let b = ctx.create_buffer(d.len() * 4);
            ctx.write_i32(b, &d)?;
            b
        }};
    }

    let (ndrange, outputs) = match spec.name {
        "bfs" => {
            let nodes = 1024 * s;
            let (row_ptr, cols) = csr(&mut rng, nodes, 16);
            let frontier_size = 256 * s as i32;
            let mut dist = vec![-1i32; nodes];
            let frontier: Vec<i32> = (0..frontier_size)
                .map(|_| rng.random_range(0..nodes as i32))
                .collect();
            for &f in &frontier {
                dist[f as usize] = 1;
            }
            let b_row = ibuf!(row_ptr);
            let b_cols = ibuf!(cols);
            let b_dist = ibuf!(dist);
            let b_frontier = ibuf!(frontier);
            let b_next = ibuf!(vec![0; nodes]);
            let b_count = ibuf!(vec![0]);
            kernel.set_arg(0, Arg::Buffer(b_row))?;
            kernel.set_arg(1, Arg::Buffer(b_cols))?;
            kernel.set_arg(2, Arg::Buffer(b_dist))?;
            kernel.set_arg(3, Arg::Buffer(b_frontier))?;
            kernel.set_arg(4, Arg::Buffer(b_next))?;
            kernel.set_arg(5, Arg::Buffer(b_count))?;
            kernel.set_arg(6, Arg::Scalar(Value::I32(frontier_size)))?;
            kernel.set_arg(7, Arg::Scalar(Value::I32(2)))?;
            (NdRange::new_1d(512 * s, 512), vec![b_dist, b_count])
        }
        "cutcp" => {
            let natoms = 64 * s as i32;
            let (nx, ny) = (64, 16 * s);
            let atoms = fbuf!(f32s(&mut rng, 4 * natoms as usize));
            let lattice = fbuf!(vec![0.0; nx * ny]);
            kernel.set_arg(0, Arg::Buffer(atoms))?;
            kernel.set_arg(1, Arg::Buffer(lattice))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(natoms)))?;
            kernel.set_arg(3, Arg::Scalar(Value::F32(100.0)))?;
            kernel.set_arg(4, Arg::Scalar(Value::I32(nx as i32)))?;
            (NdRange::new_2d([nx, ny], [16, 8]), vec![lattice])
        }
        "histo_final" => {
            let nbins = 256 * s;
            let histo = ibuf!(i32s(&mut rng, nbins, 0, 1000));
            let out = ibuf!(vec![0; nbins]);
            kernel.set_arg(0, Arg::Buffer(histo))?;
            kernel.set_arg(1, Arg::Buffer(out))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(nbins as i32)))?;
            (NdRange::new_1d(nbins, 256), vec![out])
        }
        "histo_intermediates" => {
            let n = 2048 * s;
            let input = ibuf!(i32s(&mut rng, n, -10_000, 10_000));
            let bins = ibuf!(vec![0; n]);
            kernel.set_arg(0, Arg::Buffer(input))?;
            kernel.set_arg(1, Arg::Buffer(bins))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(n as i32)))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(256)))?;
            (NdRange::new_1d(n, 256), vec![bins])
        }
        "histo_main" => {
            let n = 2048 * s;
            let bins = ibuf!(i32s(&mut rng, n, 0, 256));
            let histo = ibuf!(vec![0; 256]);
            kernel.set_arg(0, Arg::Buffer(bins))?;
            kernel.set_arg(1, Arg::Buffer(histo))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(n as i32)))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(256)))?;
            (NdRange::new_1d(512, 256), vec![histo])
        }
        "histo_prescan" => {
            let n = 2048 * s;
            let input = ibuf!(i32s(&mut rng, n, -5_000, 5_000));
            let minmax = ibuf!(vec![i32::MAX, i32::MIN]);
            kernel.set_arg(0, Arg::Buffer(input))?;
            kernel.set_arg(1, Arg::Buffer(minmax))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(n as i32)))?;
            (NdRange::new_1d(n, 128), vec![minmax])
        }
        "lbm" => {
            let (nx, n) = (64, 4096 * s);
            let src = fbuf!(f32s(&mut rng, n));
            let dst = fbuf!(vec![0.0; n]);
            kernel.set_arg(0, Arg::Buffer(src))?;
            kernel.set_arg(1, Arg::Buffer(dst))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(nx)))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(n as i32)))?;
            (NdRange::new_1d(n, 128), vec![dst])
        }
        "mri-gridding_GPU" => {
            let n = 1024 * s;
            let gridsize = 256;
            let samples = fbuf!(f32s(&mut rng, n));
            let grid = ibuf!(vec![0; gridsize]);
            kernel.set_arg(0, Arg::Buffer(samples))?;
            kernel.set_arg(1, Arg::Buffer(grid))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(n as i32)))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(gridsize as i32)))?;
            kernel.set_arg(4, Arg::Scalar(Value::I32(4)))?;
            (NdRange::new_1d(n, 256), vec![grid])
        }
        "mri-gridding_binning" => {
            let n = 2048 * s;
            let nbins = 64;
            let sx = fbuf!(f32s(&mut rng, n));
            let bin_of = ibuf!(vec![0; n]);
            let bin_count = ibuf!(vec![0; nbins]);
            kernel.set_arg(0, Arg::Buffer(sx))?;
            kernel.set_arg(1, Arg::Buffer(bin_of))?;
            kernel.set_arg(2, Arg::Buffer(bin_count))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(n as i32)))?;
            kernel.set_arg(4, Arg::Scalar(Value::I32(nbins as i32)))?;
            (NdRange::new_1d(n, 256), vec![bin_of, bin_count])
        }
        "mri-gridding_reorder" => {
            let n = 1024 * s;
            let nbins = 32usize;
            let bin_of_v = i32s(&mut rng, n, 0, nbins as i32);
            let mut counts = vec![0i32; nbins];
            for &b in &bin_of_v {
                counts[b as usize] += 1;
            }
            let mut bin_start_v = vec![0i32; nbins];
            for i in 1..nbins {
                bin_start_v[i] = bin_start_v[i - 1] + counts[i - 1];
            }
            let sx = fbuf!(f32s(&mut rng, n));
            let bin_of = ibuf!(bin_of_v);
            let bin_start = ibuf!(bin_start_v);
            let cursor = ibuf!(vec![0; nbins]);
            let out = ibuf!(vec![0; n]);
            kernel.set_arg(0, Arg::Buffer(sx))?;
            kernel.set_arg(1, Arg::Buffer(bin_of))?;
            kernel.set_arg(2, Arg::Buffer(bin_start))?;
            kernel.set_arg(3, Arg::Buffer(cursor))?;
            kernel.set_arg(4, Arg::Buffer(out))?;
            kernel.set_arg(5, Arg::Scalar(Value::I32(n as i32)))?;
            (NdRange::new_1d(n, 256), vec![out])
        }
        "mri-gridding_scan_L1" => {
            let n = 2048 * s;
            let input = ibuf!(i32s(&mut rng, n, 0, 8));
            let out = ibuf!(vec![0; n]);
            let sums = ibuf!(vec![0; n / 256]);
            kernel.set_arg(0, Arg::Buffer(input))?;
            kernel.set_arg(1, Arg::Buffer(out))?;
            kernel.set_arg(2, Arg::Buffer(sums))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(n as i32)))?;
            (NdRange::new_1d(n, 256), vec![out, sums])
        }
        "mri-gridding_scan_inter1" => {
            let nblocks = 64 * s;
            let sums = ibuf!(i32s(&mut rng, nblocks, 0, 100));
            kernel.set_arg(0, Arg::Buffer(sums))?;
            kernel.set_arg(1, Arg::Scalar(Value::I32(nblocks as i32)))?;
            (NdRange::new_1d(64, 64), vec![sums])
        }
        "mri-gridding_scan_inter2" => {
            let nblocks = 512 * s;
            let sums = ibuf!(i32s(&mut rng, nblocks, 0, 100));
            let carry = ibuf!(i32s(&mut rng, nblocks / 64 + 1, 0, 50));
            kernel.set_arg(0, Arg::Buffer(sums))?;
            kernel.set_arg(1, Arg::Buffer(carry))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(nblocks as i32)))?;
            (NdRange::new_1d(nblocks, 256), vec![sums])
        }
        "mri-gridding_splitRearrange" => {
            let n = 1024 * s;
            let keys = ibuf!(i32s(&mut rng, n, 0, 1 << 20));
            // `pos` must be a permutation for the scatter to be total.
            let mut perm: Vec<i32> = (0..n as i32).collect();
            for i in (1..n).rev() {
                perm.swap(i, rng.random_range(0..=i));
            }
            let pos = ibuf!(perm);
            let out = ibuf!(vec![0; n]);
            kernel.set_arg(0, Arg::Buffer(keys))?;
            kernel.set_arg(1, Arg::Buffer(pos))?;
            kernel.set_arg(2, Arg::Buffer(out))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(n as i32)))?;
            (NdRange::new_1d(n, 256), vec![out])
        }
        "mri-gridding_splitSort" => {
            let n = 1024 * s;
            let keys = ibuf!(i32s(&mut rng, n, 0, 1 << 20));
            kernel.set_arg(0, Arg::Buffer(keys))?;
            kernel.set_arg(1, Arg::Scalar(Value::I32(n as i32)))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(0)))?;
            (NdRange::new_1d(n, 128), vec![keys])
        }
        "mri-gridding_uniformAdd" => {
            let n = 2048 * s;
            let data = ibuf!(i32s(&mut rng, n, 0, 1000));
            let offsets = ibuf!(i32s(&mut rng, n / 256, 0, 100));
            kernel.set_arg(0, Arg::Buffer(data))?;
            kernel.set_arg(1, Arg::Buffer(offsets))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(n as i32)))?;
            (NdRange::new_1d(n, 256), vec![data])
        }
        "mri-q_ComputePhiMag" => {
            let n = 1024 * s;
            let phir = fbuf!(f32s(&mut rng, n));
            let phii = fbuf!(f32s(&mut rng, n));
            let mag = fbuf!(vec![0.0; n]);
            kernel.set_arg(0, Arg::Buffer(phir))?;
            kernel.set_arg(1, Arg::Buffer(phii))?;
            kernel.set_arg(2, Arg::Buffer(mag))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(n as i32)))?;
            (NdRange::new_1d(n, 256), vec![mag])
        }
        "mri-q_ComputeQ" => {
            let n = 512 * s;
            let nk = 128;
            let kx = fbuf!(f32s(&mut rng, nk));
            let mag = fbuf!(f32s(&mut rng, nk));
            let qr = fbuf!(vec![0.0; n]);
            let qi = fbuf!(vec![0.0; n]);
            kernel.set_arg(0, Arg::Buffer(kx))?;
            kernel.set_arg(1, Arg::Buffer(mag))?;
            kernel.set_arg(2, Arg::Buffer(qr))?;
            kernel.set_arg(3, Arg::Buffer(qi))?;
            kernel.set_arg(4, Arg::Scalar(Value::I32(nk as i32)))?;
            (NdRange::new_1d(n, 256), vec![qr, qi])
        }
        "sad_calc" => {
            let width = 64;
            let positions = 8 * s;
            let blocks = (width / 4) * (width / 4);
            let cur = ibuf!(i32s(&mut rng, width * width, 0, 256));
            let refb = ibuf!(i32s(&mut rng, width * width + positions, 0, 256));
            let sad = ibuf!(vec![0; positions * blocks]);
            kernel.set_arg(0, Arg::Buffer(cur))?;
            kernel.set_arg(1, Arg::Buffer(refb))?;
            kernel.set_arg(2, Arg::Buffer(sad))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(width as i32)))?;
            kernel.set_arg(4, Arg::Scalar(Value::I32(positions as i32)))?;
            (NdRange::new_2d([blocks, positions], [32, 4]), vec![sad])
        }
        "sad_calc_16" => {
            let blocks16 = 16;
            let positions = 8 * s;
            let sad8 = ibuf!(i32s(&mut rng, positions * blocks16 * 4, 0, 4000));
            let sad16 = ibuf!(vec![0; positions * blocks16]);
            kernel.set_arg(0, Arg::Buffer(sad8))?;
            kernel.set_arg(1, Arg::Buffer(sad16))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(blocks16 as i32)))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(positions as i32)))?;
            (NdRange::new_2d([blocks16, positions], [16, 8]), vec![sad16])
        }
        "sad_calc_8" => {
            let blocks8 = 64;
            let positions = 8 * s;
            let sad4 = ibuf!(i32s(&mut rng, positions * blocks8 * 4, 0, 2000));
            let sad8 = ibuf!(vec![0; positions * blocks8]);
            kernel.set_arg(0, Arg::Buffer(sad4))?;
            kernel.set_arg(1, Arg::Buffer(sad8))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(blocks8 as i32)))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(positions as i32)))?;
            (NdRange::new_2d([blocks8, positions], [32, 4]), vec![sad8])
        }
        "sgemm" => {
            let n = 64 * s;
            let a = fbuf!(f32s(&mut rng, n * n));
            let b = fbuf!(f32s(&mut rng, n * n));
            let c = fbuf!(vec![0.0; n * n]);
            kernel.set_arg(0, Arg::Buffer(a))?;
            kernel.set_arg(1, Arg::Buffer(b))?;
            kernel.set_arg(2, Arg::Buffer(c))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(n as i32)))?;
            kernel.set_arg(4, Arg::Scalar(Value::F32(1.0)))?;
            kernel.set_arg(5, Arg::Scalar(Value::F32(0.0)))?;
            (NdRange::new_2d([n, n], [64, 2]), vec![c])
        }
        "spmv" => {
            let rows = 1024 * s;
            let (row_ptr, cols) = csr(&mut rng, rows, 32);
            let nnz = cols.len();
            let b_row = ibuf!(row_ptr);
            let b_cols = ibuf!(cols);
            let vals = fbuf!(f32s(&mut rng, nnz.max(1)));
            let x = fbuf!(f32s(&mut rng, rows));
            let y = fbuf!(vec![0.0; rows]);
            kernel.set_arg(0, Arg::Buffer(b_row))?;
            kernel.set_arg(1, Arg::Buffer(b_cols))?;
            kernel.set_arg(2, Arg::Buffer(vals))?;
            kernel.set_arg(3, Arg::Buffer(x))?;
            kernel.set_arg(4, Arg::Buffer(y))?;
            kernel.set_arg(5, Arg::Scalar(Value::I32(rows as i32)))?;
            (NdRange::new_1d(rows, 128), vec![y])
        }
        "stencil" => {
            let (nx, ny) = (16, 16);
            let n = 4096 * s;
            let input = fbuf!(f32s(&mut rng, n));
            let out = fbuf!(vec![0.0; n]);
            kernel.set_arg(0, Arg::Buffer(input))?;
            kernel.set_arg(1, Arg::Buffer(out))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(nx)))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(ny)))?;
            kernel.set_arg(4, Arg::Scalar(Value::I32(n as i32)))?;
            (NdRange::new_1d(n, 256), vec![out])
        }
        "tpacf" => {
            let n = 1024 * s;
            let nbins = 64;
            let angles = fbuf!(f32s(&mut rng, n));
            let hist = ibuf!(vec![0; nbins]);
            kernel.set_arg(0, Arg::Buffer(angles))?;
            kernel.set_arg(1, Arg::Buffer(hist))?;
            kernel.set_arg(2, Arg::Scalar(Value::I32(n as i32)))?;
            kernel.set_arg(3, Arg::Scalar(Value::I32(nbins as i32)))?;
            (NdRange::new_1d(n, 128), vec![hist])
        }
        other => {
            return Err(ClError::InvalidKernelName(format!(
                "no dataset generator for `{other}`"
            )))
        }
    };

    Ok(PreparedLaunch {
        kernel,
        ndrange,
        outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clrt::{CommandQueue, Platform};

    /// Every kernel must run functionally end-to-end on its dataset.
    #[test]
    fn all_kernels_execute_on_their_datasets() {
        for spec in KernelSpec::all() {
            let mut ctx = Context::new(&Platform::nvidia());
            let program = Program::build(spec.source)
                .unwrap_or_else(|e| panic!("`{}` build: {e}", spec.name));
            let prepared = prepare_launch(spec, &mut ctx, &program, 1, 7)
                .unwrap_or_else(|e| panic!("`{}` prepare: {e}", spec.name));
            let mut q = CommandQueue::new();
            let ev = q
                .enqueue_nd_range(&mut ctx, &prepared.kernel, prepared.ndrange)
                .unwrap_or_else(|e| panic!("`{}` run: {e}", spec.name));
            assert!(ev.stats.total_insns > 0, "`{}` executed nothing", spec.name);
        }
    }

    #[test]
    fn spot_check_semantics_histo_main() {
        let spec = KernelSpec::by_name("histo_main").unwrap();
        let mut ctx = Context::new(&Platform::nvidia());
        let program = Program::build(spec.source).unwrap();
        let p = prepare_launch(spec, &mut ctx, &program, 1, 3).unwrap();
        let mut q = CommandQueue::new();
        q.enqueue_nd_range(&mut ctx, &p.kernel, p.ndrange).unwrap();
        let histo = ctx.read_i32(p.outputs[0]).unwrap();
        assert_eq!(
            histo.iter().sum::<i32>(),
            2048,
            "every sample lands in a bin"
        );
    }

    #[test]
    fn spot_check_semantics_splitsort_sorts_tiles() {
        let spec = KernelSpec::by_name("mri-gridding_splitSort").unwrap();
        let mut ctx = Context::new(&Platform::nvidia());
        let program = Program::build(spec.source).unwrap();
        let p = prepare_launch(spec, &mut ctx, &program, 1, 3).unwrap();
        let mut q = CommandQueue::new();
        q.enqueue_nd_range(&mut ctx, &p.kernel, p.ndrange).unwrap();
        let keys = ctx.read_i32(p.outputs[0]).unwrap();
        for tile in keys.chunks(128) {
            for w in tile.windows(2) {
                assert!(w[0] <= w[1], "each 128-wide tile must be sorted");
            }
        }
    }

    #[test]
    fn spot_check_semantics_scan_l1() {
        let spec = KernelSpec::by_name("mri-gridding_scan_L1").unwrap();
        let mut ctx = Context::new(&Platform::nvidia());
        let program = Program::build(spec.source).unwrap();
        let p = prepare_launch(spec, &mut ctx, &program, 1, 9).unwrap();
        let mut q = CommandQueue::new();
        q.enqueue_nd_range(&mut ctx, &p.kernel, p.ndrange).unwrap();
        let out = ctx.read_i32(p.outputs[0]).unwrap();
        // Inclusive scans of non-negative inputs are non-decreasing within
        // each block.
        for blk in out.chunks(256) {
            for w in blk.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn scale_grows_datasets() {
        let spec = KernelSpec::by_name("stencil").unwrap();
        let mut ctx = Context::new(&Platform::nvidia());
        let program = Program::build(spec.source).unwrap();
        let p1 = prepare_launch(spec, &mut ctx, &program, 1, 1).unwrap();
        let p2 = prepare_launch(spec, &mut ctx, &program, 2, 1).unwrap();
        assert_eq!(p2.ndrange.total_items(), 2 * p1.ndrange.total_items());
    }

    #[test]
    #[should_panic(expected = "scale must be at least 1")]
    fn zero_scale_rejected() {
        let spec = KernelSpec::by_name("lbm").unwrap();
        let mut ctx = Context::new(&Platform::nvidia());
        let program = Program::build(spec.source).unwrap();
        let _ = prepare_launch(spec, &mut ctx, &program, 0, 1);
    }
}
