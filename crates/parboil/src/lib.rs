//! # parboil — the Parboil benchmark kernels in MiniCL
//!
//! The workload substrate of the accelOS (CGO 2016) reproduction: the 25
//! OpenCL kernels of the Parboil suite (Stratton et al.), re-implemented in
//! the MiniCL dialect with dataset generators and launch/cost profiles.
//!
//! Each [`KernelSpec`] carries two kinds of facts:
//!
//! * **compiled facts** — registers, local memory, instruction counts —
//!   obtained by actually compiling the bundled source through `minicl`
//!   (see [`KernelSpec::profile`] / [`KernelDb`]);
//! * **calibrated launch facts** — default work-group counts, per-group
//!   cost and imbalance, memory intensity — set per kernel to mirror the
//!   qualitative behaviour reported for Parboil in the literature
//!   (irregular kernels like `bfs`/`spmv`/`gridding_GPU` are imbalanced,
//!   `lbm`/`stencil` are regular and memory-bound, `sgemm`/`ComputeQ` are
//!   compute-bound, `uniformAdd`/`ComputePhiMag` are the paper's "small
//!   kernels").
//!
//! # Examples
//!
//! ```
//! let specs = parboil::KernelSpec::all();
//! assert_eq!(specs.len(), 25);
//! let bfs = parboil::KernelSpec::by_name("bfs").unwrap();
//! let module = bfs.compile().unwrap();
//! assert_eq!(module.kernel_names(), vec!["bfs_kernel"]);
//! ```

#![warn(missing_docs)]

pub mod datasets;
pub mod sources;

use kernel_ir::ir::Module;
use kernel_ir::KernelProfile;
use minicl::CompileError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One Parboil kernel: source, entry point, and launch/cost profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSpec {
    /// Benchmark the kernel belongs to (`"mri-gridding"`, `"sad"`, …).
    pub benchmark: &'static str,
    /// Unique kernel name used throughout the harness (`"bfs"`,
    /// `"histo_main"`, `"mri-q_ComputeQ"`, …), alphabetically orderable the
    /// way the paper's fig. 11 pairs kernels.
    pub name: &'static str,
    /// Entry-point function inside [`KernelSpec::source`].
    pub entry: &'static str,
    /// MiniCL source text.
    pub source: &'static str,
    /// Work-group size (threads) of the canonical launch.
    pub wg_size: u32,
    /// Local shape of the canonical launch (product equals `wg_size`).
    pub local_shape: [usize; 3],
    /// Work groups of the canonical (sweep-scale) NDRange.
    pub default_wgs: u64,
    /// Mean execution cost of one work group, in model cycles.
    pub base_cost: u64,
    /// Coefficient of variation of per-work-group cost (the imbalance that
    /// dynamic scheduling exploits).
    pub imbalance: f64,
    /// Fraction of execution bound on memory bandwidth (0..=1).
    pub mem_intensity: f64,
}

/// The canonical sweep-scale table: all 25 Parboil kernels.
const SPECS: &[KernelSpec] = &[
    KernelSpec {
        benchmark: "bfs",
        name: "bfs",
        entry: "bfs_kernel",
        source: sources::BFS,
        wg_size: 512,
        local_shape: [512, 1, 1],
        default_wgs: 1536,
        base_cost: 900,
        imbalance: 0.80,
        mem_intensity: 0.70,
    },
    KernelSpec {
        benchmark: "cutcp",
        name: "cutcp",
        entry: "cutcp",
        source: sources::CUTCP,
        wg_size: 128,
        local_shape: [16, 8, 1],
        default_wgs: 2048,
        base_cost: 1600,
        imbalance: 0.15,
        mem_intensity: 0.20,
    },
    KernelSpec {
        benchmark: "histo",
        name: "histo_final",
        entry: "histo_final",
        source: sources::HISTO_FINAL,
        wg_size: 256,
        local_shape: [256, 1, 1],
        default_wgs: 6144,
        base_cost: 250,
        imbalance: 0.02,
        mem_intensity: 0.90,
    },
    KernelSpec {
        benchmark: "histo",
        name: "histo_intermediates",
        entry: "histo_intermediates",
        source: sources::HISTO_INTERMEDIATES,
        wg_size: 256,
        local_shape: [256, 1, 1],
        default_wgs: 6144,
        base_cost: 275,
        imbalance: 0.05,
        mem_intensity: 0.90,
    },
    KernelSpec {
        benchmark: "histo",
        name: "histo_main",
        entry: "histo_main",
        source: sources::HISTO_MAIN,
        wg_size: 256,
        local_shape: [256, 1, 1],
        default_wgs: 1536,
        base_cost: 1400,
        imbalance: 0.35,
        mem_intensity: 0.60,
    },
    KernelSpec {
        benchmark: "histo",
        name: "histo_prescan",
        entry: "histo_prescan",
        source: sources::HISTO_PRESCAN,
        wg_size: 128,
        local_shape: [128, 1, 1],
        default_wgs: 3072,
        base_cost: 500,
        imbalance: 0.05,
        mem_intensity: 0.80,
    },
    KernelSpec {
        benchmark: "lbm",
        name: "lbm",
        entry: "lbm",
        source: sources::LBM,
        wg_size: 128,
        local_shape: [128, 1, 1],
        default_wgs: 2048,
        base_cost: 1600,
        imbalance: 0.05,
        mem_intensity: 0.95,
    },
    KernelSpec {
        benchmark: "mri-gridding",
        name: "mri-gridding_GPU",
        entry: "gridding_GPU",
        source: sources::MRIG_GRIDDING,
        wg_size: 256,
        local_shape: [256, 1, 1],
        default_wgs: 2048,
        base_cost: 1600,
        imbalance: 0.70,
        mem_intensity: 0.50,
    },
    KernelSpec {
        benchmark: "mri-gridding",
        name: "mri-gridding_binning",
        entry: "binning_kernel",
        source: sources::MRIG_BINNING,
        wg_size: 256,
        local_shape: [256, 1, 1],
        default_wgs: 2048,
        base_cost: 600,
        imbalance: 0.10,
        mem_intensity: 0.80,
    },
    KernelSpec {
        benchmark: "mri-gridding",
        name: "mri-gridding_reorder",
        entry: "reorder_kernel",
        source: sources::MRIG_REORDER,
        wg_size: 256,
        local_shape: [256, 1, 1],
        default_wgs: 2048,
        base_cost: 650,
        imbalance: 0.30,
        mem_intensity: 0.90,
    },
    KernelSpec {
        benchmark: "mri-gridding",
        name: "mri-gridding_scan_L1",
        entry: "scan_L1_kernel",
        source: sources::MRIG_SCAN_L1,
        wg_size: 256,
        local_shape: [256, 1, 1],
        default_wgs: 2048,
        base_cost: 700,
        imbalance: 0.05,
        mem_intensity: 0.70,
    },
    KernelSpec {
        benchmark: "mri-gridding",
        name: "mri-gridding_scan_inter1",
        entry: "scan_inter1_kernel",
        source: sources::MRIG_SCAN_INTER1,
        wg_size: 64,
        local_shape: [64, 1, 1],
        default_wgs: 1024,
        base_cost: 1500,
        imbalance: 0.90,
        mem_intensity: 0.60,
    },
    KernelSpec {
        benchmark: "mri-gridding",
        name: "mri-gridding_scan_inter2",
        entry: "scan_inter2_kernel",
        source: sources::MRIG_SCAN_INTER2,
        wg_size: 256,
        local_shape: [256, 1, 1],
        default_wgs: 6144,
        base_cost: 250,
        imbalance: 0.05,
        mem_intensity: 0.90,
    },
    KernelSpec {
        benchmark: "mri-gridding",
        name: "mri-gridding_splitRearrange",
        entry: "splitRearrange",
        source: sources::MRIG_SPLIT_REARRANGE,
        wg_size: 256,
        local_shape: [256, 1, 1],
        default_wgs: 6144,
        base_cost: 260,
        imbalance: 0.15,
        mem_intensity: 0.95,
    },
    KernelSpec {
        benchmark: "mri-gridding",
        name: "mri-gridding_splitSort",
        entry: "splitSort",
        source: sources::MRIG_SPLIT_SORT,
        wg_size: 128,
        local_shape: [128, 1, 1],
        default_wgs: 1536,
        base_cost: 1700,
        imbalance: 0.10,
        mem_intensity: 0.50,
    },
    KernelSpec {
        benchmark: "mri-gridding",
        name: "mri-gridding_uniformAdd",
        entry: "uniformAdd",
        source: sources::MRIG_UNIFORM_ADD,
        wg_size: 256,
        local_shape: [256, 1, 1],
        default_wgs: 6144,
        base_cost: 225,
        imbalance: 0.02,
        mem_intensity: 0.95,
    },
    KernelSpec {
        benchmark: "mri-q",
        name: "mri-q_ComputePhiMag",
        entry: "ComputePhiMag",
        source: sources::MRIQ_PHIMAG,
        wg_size: 256,
        local_shape: [256, 1, 1],
        default_wgs: 6144,
        base_cost: 250,
        imbalance: 0.02,
        mem_intensity: 0.90,
    },
    KernelSpec {
        benchmark: "mri-q",
        name: "mri-q_ComputeQ",
        entry: "ComputeQ",
        source: sources::MRIQ_COMPUTEQ,
        wg_size: 256,
        local_shape: [256, 1, 1],
        default_wgs: 2048,
        base_cost: 1600,
        imbalance: 0.05,
        mem_intensity: 0.10,
    },
    KernelSpec {
        benchmark: "sad",
        name: "sad_calc",
        entry: "mb_sad_calc",
        source: sources::SAD_CALC,
        wg_size: 128,
        local_shape: [32, 4, 1],
        default_wgs: 2048,
        base_cost: 1100,
        imbalance: 0.10,
        mem_intensity: 0.60,
    },
    KernelSpec {
        benchmark: "sad",
        name: "sad_calc_16",
        entry: "larger_sad_calc_16",
        source: sources::SAD_CALC_16,
        wg_size: 128,
        local_shape: [16, 8, 1],
        default_wgs: 3072,
        base_cost: 450,
        imbalance: 0.05,
        mem_intensity: 0.85,
    },
    KernelSpec {
        benchmark: "sad",
        name: "sad_calc_8",
        entry: "larger_sad_calc_8",
        source: sources::SAD_CALC_8,
        wg_size: 128,
        local_shape: [32, 4, 1],
        default_wgs: 3072,
        base_cost: 470,
        imbalance: 0.05,
        mem_intensity: 0.85,
    },
    KernelSpec {
        benchmark: "sgemm",
        name: "sgemm",
        entry: "sgemm",
        source: sources::SGEMM,
        wg_size: 128,
        local_shape: [64, 2, 1],
        default_wgs: 2048,
        base_cost: 1600,
        imbalance: 0.08,
        mem_intensity: 0.35,
    },
    KernelSpec {
        benchmark: "spmv",
        name: "spmv",
        entry: "spmv",
        source: sources::SPMV,
        wg_size: 128,
        local_shape: [128, 1, 1],
        default_wgs: 2048,
        base_cost: 800,
        imbalance: 0.90,
        mem_intensity: 0.85,
    },
    KernelSpec {
        benchmark: "stencil",
        name: "stencil",
        entry: "stencil",
        source: sources::STENCIL,
        wg_size: 256,
        local_shape: [256, 1, 1],
        default_wgs: 3072,
        base_cost: 600,
        imbalance: 0.03,
        mem_intensity: 0.90,
    },
    KernelSpec {
        benchmark: "tpacf",
        name: "tpacf",
        entry: "tpacf",
        source: sources::TPACF,
        wg_size: 128,
        local_shape: [128, 1, 1],
        default_wgs: 2048,
        base_cost: 1600,
        imbalance: 0.20,
        mem_intensity: 0.30,
    },
];

impl KernelSpec {
    /// All 25 kernels, sorted by [`KernelSpec::name`] (the alphabetical
    /// order the paper's fig. 11 pairs by).
    pub fn all() -> &'static [KernelSpec] {
        SPECS
    }

    /// Look a kernel up by its unique name.
    pub fn by_name(name: &str) -> Option<&'static KernelSpec> {
        SPECS.iter().find(|s| s.name == name)
    }

    /// Compile the bundled source to a verified IR module.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] (which would indicate a bug in the
    /// bundled sources — the test suite compiles all 25).
    pub fn compile(&self) -> Result<Module, CompileError> {
        minicl::compile(self.source)
    }

    /// Compile and profile the kernel (registers, local memory, instruction
    /// count). Use [`KernelDb`] to amortise compilation across many calls.
    ///
    /// # Errors
    ///
    /// Propagates compile errors as in [`KernelSpec::compile`].
    pub fn profile(&self) -> Result<KernelProfile, CompileError> {
        let module = self.compile()?;
        KernelProfile::of(&module, self.entry)
            .map_err(|e| CompileError::new(format!("profiling `{}`: {e}", self.name)))
    }

    /// Deterministic per-work-group cost samples: mean [`Self::base_cost`],
    /// coefficient of variation [`Self::imbalance`] (Box-Muller normal,
    /// clamped positive), reproducible for a given `(kernel, seed)`.
    pub fn vg_costs(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(seed ^ h);
        (0..n)
            .map(|_| {
                let u1: f64 = rng.random::<f64>().max(1e-12);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let factor = (1.0 + self.imbalance * z).max(0.05);
                (self.base_cost as f64 * factor).round().max(1.0) as u64
            })
            .collect()
    }

    /// The canonical sweep-scale NDRange (all `default_wgs` groups laid out
    /// along dimension 0 of the local shape).
    pub fn default_ndrange(&self) -> kernel_ir::interp::NdRange {
        let l = self.local_shape;
        kernel_ir::interp::NdRange {
            work_dim: if l[1] > 1 || l[2] > 1 { 2 } else { 1 },
            global: [l[0] * self.default_wgs as usize, l[1], l[2]],
            local: l,
        }
    }
}

/// All 25 kernels compiled once, with cached profiles — what sweeps use.
///
/// # Examples
///
/// ```
/// let db = parboil::KernelDb::load().unwrap();
/// let (spec, profile) = db.get("sgemm").unwrap();
/// assert_eq!(spec.name, "sgemm");
/// assert!(profile.static_local_bytes > 0, "sgemm tiles B in local memory");
/// ```
#[derive(Debug, Clone)]
pub struct KernelDb {
    entries: Vec<(&'static KernelSpec, KernelProfile)>,
}

impl KernelDb {
    /// Compile and profile every kernel.
    ///
    /// # Errors
    ///
    /// Propagates the first compile error (none for the bundled sources).
    pub fn load() -> Result<KernelDb, CompileError> {
        let entries = SPECS
            .iter()
            .map(|s| Ok((s, s.profile()?)))
            .collect::<Result<Vec<_>, CompileError>>()?;
        Ok(KernelDb { entries })
    }

    /// Spec and profile by kernel name.
    pub fn get(&self, name: &str) -> Option<(&'static KernelSpec, &KernelProfile)> {
        self.entries
            .iter()
            .find(|(s, _)| s.name == name)
            .map(|(s, p)| (*s, p))
    }

    /// All entries in table (alphabetical) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static KernelSpec, &KernelProfile)> {
        self.entries.iter().map(|(s, p)| (*s, p))
    }

    /// Number of kernels (25).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty (never, for the bundled table).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_five_kernels_with_unique_names() {
        assert_eq!(KernelSpec::all().len(), 25);
        let mut names: Vec<&str> = KernelSpec::all().iter().map(|s| s.name).collect();
        let sorted = {
            let mut s = names.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(names, sorted, "table must be in alphabetical order");
        names.dedup();
        assert_eq!(names.len(), 25, "names must be unique");
    }

    #[test]
    fn every_kernel_compiles_and_profiles() {
        for spec in KernelSpec::all() {
            let module = spec.compile().unwrap_or_else(|e| {
                panic!("`{}` failed to compile: {e}", spec.name);
            });
            assert_eq!(
                module.kernel_names(),
                vec![spec.entry],
                "`{}` entry point mismatch",
                spec.name
            );
            let profile = spec.profile().unwrap();
            assert!(profile.insn_count > 0);
        }
    }

    #[test]
    fn local_shapes_match_wg_sizes() {
        for spec in KernelSpec::all() {
            let p: usize = spec.local_shape.iter().product();
            assert_eq!(p, spec.wg_size as usize, "`{}` local shape", spec.name);
            assert_eq!(
                spec.default_ndrange().total_groups() as u64,
                spec.default_wgs
            );
        }
    }

    #[test]
    fn vg_costs_are_deterministic_and_shaped() {
        let bfs = KernelSpec::by_name("bfs").unwrap();
        let a = bfs.vg_costs(1000, 42);
        let b = bfs.vg_costs(1000, 42);
        assert_eq!(a, b);
        let c = bfs.vg_costs(1000, 43);
        assert_ne!(a, c, "different seeds give different draws");

        let mean = a.iter().sum::<u64>() as f64 / a.len() as f64;
        assert!((mean - bfs.base_cost as f64).abs() < bfs.base_cost as f64 * 0.15);

        // Regular kernels have much tighter distributions.
        let stencil = KernelSpec::by_name("stencil").unwrap();
        let s = stencil.vg_costs(1000, 42);
        let cv = |xs: &[u64]| {
            let m = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
            let v = xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64;
            v.sqrt() / m
        };
        assert!(
            cv(&a) > 4.0 * cv(&s),
            "bfs must be far more imbalanced than stencil"
        );
    }

    #[test]
    fn db_loads_all() {
        let db = KernelDb::load().unwrap();
        assert_eq!(db.len(), 25);
        assert!(!db.is_empty());
        assert!(db.get("tpacf").is_some());
        assert!(db.get("nope").is_none());
        // Kernels using local tiles report local memory.
        let (_, histo_main) = db.get("histo_main").unwrap();
        assert!(histo_main.static_local_bytes >= 256 * 4);
        let (_, sgemm) = db.get("sgemm").unwrap();
        assert!(sgemm.uses_barrier);
    }

    #[test]
    fn small_kernels_have_small_insn_counts() {
        // The paper's §6.4 adaptive scheduling needs the tiny kernels to
        // actually look tiny to the chunk heuristic.
        let db = KernelDb::load().unwrap();
        let (_, ua) = db.get("mri-gridding_uniformAdd").unwrap();
        let (_, pm) = db.get("mri-q_ComputePhiMag").unwrap();
        let (_, gq) = db.get("mri-q_ComputeQ").unwrap();
        assert!(
            ua.insn_count < 40,
            "uniformAdd is a small kernel: {}",
            ua.insn_count
        );
        assert!(
            pm.insn_count < 40,
            "ComputePhiMag is a small kernel: {}",
            pm.insn_count
        );
        assert!(
            gq.insn_count > 40,
            "ComputeQ is not small: {}",
            gq.insn_count
        );
    }
}
