//! MiniCL sources of the 25 Parboil OpenCL kernels.
//!
//! Each kernel is a faithful computational analogue of its Parboil
//! counterpart: the same algorithmic pattern (reduction, scan, splat,
//! stencil, SAD, tiled GEMM, …), the same qualitative resource behaviour
//! (memory- vs compute-bound, barriers, atomics, local tiles) and the same
//! source of work-group imbalance where the original has one. Absolute
//! flop counts differ — DESIGN.md explains why only the shapes matter.

/// `bfs`: one frontier expansion step of breadth-first search (irregular,
/// atomic frontier queue, strongly degree-dependent imbalance).
pub const BFS: &str = "
kernel void bfs_kernel(global const int* row_ptr, global const int* cols,
                       global int* dist, global const int* frontier,
                       global int* next_frontier, global int* next_count,
                       int frontier_size, int level) {
    size_t tid = get_global_id(0);
    if ((int)tid < frontier_size) {
        int node = frontier[tid];
        int beg = row_ptr[node];
        int end = row_ptr[node + 1];
        for (int e = beg; e < end; ++e) {
            int v = cols[e];
            if (dist[v] < 0) {
                dist[v] = level;
                int slot = atomic_add(next_count, 1);
                next_frontier[slot] = v;
            }
        }
    }
}
";

/// `cutcp`: cutoff Coulombic potential on a 2-D lattice slice
/// (compute-bound inner loop over atoms with a distance cutoff).
pub const CUTCP: &str = "
kernel void cutcp(global const float* atoms, global float* lattice,
                  int natoms, float cutoff2, int nx) {
    size_t i = get_global_id(0);
    size_t j = get_global_id(1);
    float px = (float)i * 0.5f;
    float py = (float)j * 0.5f;
    float energy = 0.0f;
    for (int a = 0; a < natoms; ++a) {
        float dx = atoms[4 * a] - px;
        float dy = atoms[4 * a + 1] - py;
        float dz = atoms[4 * a + 2];
        float r2 = dx * dx + dy * dy + dz * dz;
        if (r2 < cutoff2) {
            float s = 1.0f - r2 / cutoff2;
            energy += atoms[4 * a + 3] * s * rsqrt(r2 + 0.01f);
        }
    }
    lattice[j * (size_t)nx + i] = energy;
}
";

/// `histo` (1/4) `histo_prescan`: block min/max prescan of the input via a
/// local-memory tree reduction.
pub const HISTO_PRESCAN: &str = "
kernel void histo_prescan(global const int* input, global int* minmax, int n) {
    local int lo[128];
    local int hi[128];
    size_t lid = get_local_id(0);
    size_t gid = get_global_id(0);
    int v = 0;
    if ((int)gid < n) { v = input[gid]; }
    lo[lid] = v;
    hi[lid] = v;
    barrier(0);
    int stride = 64;
    while (stride > 0) {
        if ((int)lid < stride) {
            lo[lid] = min(lo[lid], lo[lid + stride]);
            hi[lid] = max(hi[lid], hi[lid + stride]);
        }
        barrier(0);
        stride = stride / 2;
    }
    if (lid == 0) {
        atomic_min(minmax, lo[0]);
        atomic_max(minmax + 1, hi[0]);
    }
}
";

/// `histo` (2/4) `histo_intermediates`: convert raw samples to bin
/// coordinates (regular, memory-bound pass).
pub const HISTO_INTERMEDIATES: &str = "
kernel void histo_intermediates(global const int* input, global int* bins,
                                int n, int nbins) {
    size_t gid = get_global_id(0);
    if ((int)gid < n) {
        int v = input[gid];
        int b = v % nbins;
        if (b < 0) { b = b + nbins; }
        bins[gid] = b;
    }
}
";

/// `histo` (3/4) `histo_main`: per-work-group local histogram with atomics,
/// merged into the global histogram (contention-heavy).
pub const HISTO_MAIN: &str = "
kernel void histo_main(global const int* bins, global int* histo,
                       int n, int nbins) {
    local int lhist[256];
    size_t lid = get_local_id(0);
    size_t ls = get_local_size(0);
    size_t i = lid;
    while ((int)i < nbins) {
        lhist[i] = 0;
        i = i + ls;
    }
    barrier(0);
    size_t gid = get_global_id(0);
    size_t stride = get_global_size(0);
    size_t j = gid;
    while ((int)j < n) {
        atomic_add(lhist + bins[j], 1);
        j = j + stride;
    }
    barrier(0);
    i = lid;
    while ((int)i < nbins) {
        atomic_add(histo + i, lhist[i]);
        i = i + ls;
    }
}
";

/// `histo` (4/4) `histo_final`: saturate 32-bit counts to 8-bit output
/// (tiny element-wise pass).
pub const HISTO_FINAL: &str = "
kernel void histo_final(global const int* histo, global int* out, int nbins) {
    size_t gid = get_global_id(0);
    if ((int)gid < nbins) {
        out[gid] = min(histo[gid], 255);
    }
}
";

/// `lbm`: one stream-and-collide step of a lattice-Boltzmann method on a
/// flattened grid (strongly memory-bound, perfectly regular).
pub const LBM: &str = "
kernel void lbm(global const float* src, global float* dst, int nx, int n) {
    size_t i = get_global_id(0);
    if ((int)i < n) {
        float c = src[i];
        float xm = 0.0f;
        float xp = 0.0f;
        float ym = 0.0f;
        float yp = 0.0f;
        if ((int)i >= 1) { xm = src[i - 1]; }
        if ((int)i < n - 1) { xp = src[i + 1]; }
        if ((int)i >= nx) { ym = src[i - (size_t)nx]; }
        if ((int)i < n - nx) { yp = src[i + (size_t)nx]; }
        float rho = c + xm + xp + ym + yp;
        float eq = rho * 0.2f;
        dst[i] = c + 1.85f * (eq - c);
    }
}
";

/// `mri-gridding` (1/9) `binning_kernel`: map each sample to a grid bin and
/// count bin occupancy with atomics.
pub const MRIG_BINNING: &str = "
kernel void binning_kernel(global const float* sx, global int* bin_of,
                           global int* bin_count, int n, int nbins) {
    size_t i = get_global_id(0);
    if ((int)i < n) {
        int b = (int)(sx[i] * (float)nbins);
        b = max(0, min(b, nbins - 1));
        bin_of[i] = b;
        atomic_add(bin_count + b, 1);
    }
}
";

/// `mri-gridding` (2/9) `reorder_kernel`: scatter samples to their binned
/// positions (irregular writes).
pub const MRIG_REORDER: &str = "
kernel void reorder_kernel(global const float* sx, global const int* bin_of,
                           global const int* bin_start, global int* cursor,
                           global float* out, int n) {
    size_t i = get_global_id(0);
    if ((int)i < n) {
        int b = bin_of[i];
        int at = bin_start[b] + atomic_add(cursor + b, 1);
        out[at] = sx[i];
    }
}
";

/// `mri-gridding` (3/9) `gridding_GPU`: splat each sample onto a window of
/// grid cells with a separable kernel (compute-heavy, occupancy-dependent
/// imbalance from variable window population).
pub const MRIG_GRIDDING: &str = "
kernel void gridding_GPU(global const float* samples, global int* grid,
                         int n, int gridsize, int window) {
    size_t i = get_global_id(0);
    if ((int)i < n) {
        float pos = samples[i] * (float)gridsize;
        int centre = (int)pos;
        int w = window;
        for (int d = -w; d <= w; ++d) {
            int cell = centre + d;
            if (cell >= 0) {
                if (cell < gridsize) {
                    float dist = pos - (float)cell;
                    float wgt = exp(-2.0f * dist * dist);
                    atomic_add(grid + cell, (int)(wgt * 256.0f));
                }
            }
        }
    }
}
";

/// `mri-gridding` (4/9) `scan_L1_kernel`: work-group-local inclusive scan
/// (Hillis-Steele in local memory).
pub const MRIG_SCAN_L1: &str = "
kernel void scan_L1_kernel(global const int* in, global int* out,
                           global int* block_sums, int n) {
    local int tmp[256];
    size_t lid = get_local_id(0);
    size_t gid = get_global_id(0);
    size_t ls = get_local_size(0);
    int v = 0;
    if ((int)gid < n) { v = in[gid]; }
    tmp[lid] = v;
    barrier(0);
    int offset = 1;
    while (offset < (int)ls) {
        int add = 0;
        if ((int)lid >= offset) { add = tmp[lid - (size_t)offset]; }
        barrier(0);
        tmp[lid] = tmp[lid] + add;
        barrier(0);
        offset = offset * 2;
    }
    if ((int)gid < n) { out[gid] = tmp[lid]; }
    if (lid == ls - 1) { block_sums[get_group_id(0)] = tmp[lid]; }
}
";

/// `mri-gridding` (5/9) `scan_inter1_kernel`: first inter-block scan pass
/// (serial scan by a single work group over block sums).
pub const MRIG_SCAN_INTER1: &str = "
kernel void scan_inter1_kernel(global int* sums, int nblocks) {
    size_t gid = get_global_id(0);
    if (gid == 0) {
        int acc = 0;
        for (int i = 0; i < nblocks; ++i) {
            int v = sums[i];
            sums[i] = acc;
            acc = acc + v;
        }
    }
}
";

/// `mri-gridding` (6/9) `scan_inter2_kernel`: second inter-block pass,
/// propagating partial offsets (element-wise).
pub const MRIG_SCAN_INTER2: &str = "
kernel void scan_inter2_kernel(global int* sums, global const int* carry,
                               int nblocks) {
    size_t i = get_global_id(0);
    if ((int)i < nblocks) {
        sums[i] = sums[i] + carry[i / 64];
    }
}
";

/// `mri-gridding` (7/9) `uniformAdd`: add each block's scanned offset to
/// its elements — one of the paper's \"small kernel\" cases (§6.4).
pub const MRIG_UNIFORM_ADD: &str = "
kernel void uniformAdd(global int* data, global const int* offsets, int n) {
    size_t gid = get_global_id(0);
    if ((int)gid < n) {
        data[gid] = data[gid] + offsets[get_group_id(0)];
    }
}
";

/// `mri-gridding` (8/9) `splitSort`: in-work-group bitonic-style sort by a
/// radix digit (barrier-dense).
pub const MRIG_SPLIT_SORT: &str = "
kernel void splitSort(global int* keys, int n, int bit) {
    local int tile[128];
    size_t lid = get_local_id(0);
    size_t gid = get_global_id(0);
    size_t ls = get_local_size(0);
    int v = 2147483647;
    if ((int)gid < n) { v = keys[gid]; }
    tile[lid] = v;
    barrier(0);
    int k = 2;
    while (k <= (int)ls) {
        int j = k / 2;
        while (j > 0) {
            int ixj = (int)lid ^ j;
            if (ixj > (int)lid) {
                int a = tile[lid];
                int b = tile[ixj];
                bool up = ((int)lid & k) == 0;
                if (up && a > b) { tile[lid] = b; tile[ixj] = a; }
                if (!up && a < b) { tile[lid] = b; tile[ixj] = a; }
            }
            barrier(0);
            j = j / 2;
        }
        k = k * 2;
    }
    if ((int)gid < n) { keys[gid] = tile[lid]; }
}
";

/// `mri-gridding` (9/9) `splitRearrange`: scatter sorted keys to their
/// final positions (memory-bound gather/scatter).
pub const MRIG_SPLIT_REARRANGE: &str = "
kernel void splitRearrange(global const int* keys, global const int* pos,
                           global int* out, int n) {
    size_t i = get_global_id(0);
    if ((int)i < n) {
        out[pos[i]] = keys[i];
    }
}
";

/// `mri-q` (1/2) `ComputePhiMag`: magnitude of the phase vector — a tiny
/// element-wise kernel (the other §6.4 \"small kernel\" case).
pub const MRIQ_PHIMAG: &str = "
kernel void ComputePhiMag(global const float* phiR, global const float* phiI,
                          global float* phiMag, int n) {
    size_t i = get_global_id(0);
    if ((int)i < n) {
        float r = phiR[i];
        float im = phiI[i];
        phiMag[i] = r * r + im * im;
    }
}
";

/// `mri-q` (2/2) `ComputeQ`: accumulate Q over all k-space points with
/// sin/cos (heavily compute-bound, perfectly regular).
pub const MRIQ_COMPUTEQ: &str = "
kernel void ComputeQ(global const float* kx, global const float* phiMag,
                     global float* qr, global float* qi, int nk) {
    size_t i = get_global_id(0);
    float x = (float)i * 0.001f;
    float accr = 0.0f;
    float acci = 0.0f;
    for (int k = 0; k < nk; ++k) {
        float ang = 6.2831853f * kx[k] * x;
        float m = phiMag[k];
        accr += m * cos(ang);
        acci += m * sin(ang);
    }
    qr[i] = accr;
    qi[i] = acci;
}
";

/// `sad` (1/3) `mb_sad_calc`: 4x4-block sum of absolute differences against
/// a search window (regular compute over small blocks).
pub const SAD_CALC: &str = "
kernel void mb_sad_calc(global const int* cur, global const int* ref,
                        global int* sad, int width, int positions) {
    size_t blk = get_global_id(0);
    size_t pos = get_global_id(1);
    size_t bx = (blk * 4) % (size_t)width;
    size_t by = (blk * 4) / (size_t)width * 4;
    int acc = 0;
    for (int dy = 0; dy < 4; ++dy) {
        for (int dx = 0; dx < 4; ++dx) {
            size_t ci = (by + (size_t)dy) * (size_t)width + bx + (size_t)dx;
            int d = cur[ci] - ref[ci + pos];
            acc += abs(d);
        }
    }
    sad[pos * get_global_size(0) + blk] = acc;
}
";

/// `sad` (2/3) `larger_sad_calc_8`: combine 4x4 SADs into 8x8 block SADs.
pub const SAD_CALC_8: &str = "
kernel void larger_sad_calc_8(global const int* sad4, global int* sad8,
                              int blocks8, int positions) {
    size_t b = get_global_id(0);
    size_t pos = get_global_id(1);
    if ((int)b < blocks8) {
        size_t base = pos * (size_t)(blocks8 * 4) + b * 4;
        sad8[pos * (size_t)blocks8 + b] =
            sad4[base] + sad4[base + 1] + sad4[base + 2] + sad4[base + 3];
    }
}
";

/// `sad` (3/3) `larger_sad_calc_16`: combine 8x8 SADs into 16x16 block SADs.
pub const SAD_CALC_16: &str = "
kernel void larger_sad_calc_16(global const int* sad8, global int* sad16,
                               int blocks16, int positions) {
    size_t b = get_global_id(0);
    size_t pos = get_global_id(1);
    if ((int)b < blocks16) {
        size_t base = pos * (size_t)(blocks16 * 4) + b * 4;
        sad16[pos * (size_t)blocks16 + b] =
            sad8[base] + sad8[base + 1] + sad8[base + 2] + sad8[base + 3];
    }
}
";

/// `sgemm`: tiled dense matrix multiply with a local-memory tile of B
/// (the classic barrier-synchronised compute kernel).
pub const SGEMM: &str = "
kernel void sgemm(global const float* a, global const float* b,
                  global float* c, int n, float alpha, float beta) {
    local float tile[64];
    size_t col = get_global_id(0);
    size_t row = get_global_id(1);
    size_t lid = get_local_id(0);
    size_t ls = get_local_size(0);
    float acc = 0.0f;
    int t = 0;
    while (t < n) {
        tile[lid] = b[(size_t)t * (size_t)n + col];
        barrier(0);
        for (int k = 0; k < (int)ls; ++k) {
            if (t + k < n) {
                acc += a[row * (size_t)n + (size_t)(t + k)] * tile[k];
            }
        }
        barrier(0);
        t = t + (int)ls;
    }
    c[row * (size_t)n + col] = alpha * acc + beta * c[row * (size_t)n + col];
}
";

/// `spmv`: sparse matrix-vector product in JDS-like row form (irregular
/// row lengths drive the imbalance).
pub const SPMV: &str = "
kernel void spmv(global const int* row_ptr, global const int* cols,
                 global const float* vals, global const float* x,
                 global float* y, int rows) {
    size_t r = get_global_id(0);
    if ((int)r < rows) {
        int beg = row_ptr[r];
        int end = row_ptr[r + 1];
        float acc = 0.0f;
        for (int e = beg; e < end; ++e) {
            acc += vals[e] * x[cols[e]];
        }
        y[r] = acc;
    }
}
";

/// `stencil`: 7-point 3-D Jacobi stencil on a flattened grid (memory-bound,
/// perfectly regular).
pub const STENCIL: &str = "
kernel void stencil(global const float* in, global float* out,
                    int nx, int ny, int n) {
    size_t i = get_global_id(0);
    int plane = nx * ny;
    if ((int)i >= plane && (int)i < n - plane) {
        float c = in[i];
        float s = in[i - 1] + in[i + 1]
                + in[i - (size_t)nx] + in[i + (size_t)nx]
                + in[i - (size_t)plane] + in[i + (size_t)plane];
        out[i] = 0.6f * c + s / 15.0f;
    }
}
";

/// `tpacf`: two-point angular correlation — per-item loop over a data
/// window feeding a shared histogram through atomics (compute-bound with
/// contention).
pub const TPACF: &str = "
kernel void tpacf(global const float* angles, global int* histogram,
                  int n, int nbins) {
    local int lhist[64];
    size_t lid = get_local_id(0);
    size_t ls = get_local_size(0);
    size_t i = lid;
    while ((int)i < nbins) {
        lhist[i] = 0;
        i = i + ls;
    }
    barrier(0);
    size_t gid = get_global_id(0);
    if ((int)gid < n) {
        float a = angles[gid];
        for (int j = 0; j < 64; ++j) {
            float b = angles[(gid + (size_t)j * 17) % (size_t)n];
            float d = fabs(a - b);
            int bin = (int)(d * (float)nbins);
            bin = min(bin, nbins - 1);
            atomic_add(lhist + bin, 1);
        }
    }
    barrier(0);
    i = lid;
    while ((int)i < nbins) {
        atomic_add(histogram + i, lhist[i]);
        i = i + ls;
    }
}
";
