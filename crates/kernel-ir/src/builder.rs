//! Ergonomic construction of IR functions.
//!
//! [`FunctionBuilder`] owns a function under construction, tracks the
//! "current" block, allocates typed value ids, and provides one method per
//! instruction. Types are computed at emission time so that the finished
//! function always has a complete value-type table.
//!
//! # Examples
//!
//! Build `kernel void double(global float* buf)` that doubles one element per
//! work item:
//!
//! ```
//! use kernel_ir::builder::FunctionBuilder;
//! use kernel_ir::ir::{BinOp, FunctionKind, WiBuiltin};
//! use kernel_ir::types::{AddressSpace, Type};
//!
//! let mut b = FunctionBuilder::new("double", FunctionKind::Kernel, Type::Void);
//! let buf = b.add_param("buf", Type::ptr(AddressSpace::Global, Type::F32));
//! let gid = b.work_item(WiBuiltin::GlobalId, 0);
//! let p = b.gep(buf, gid);
//! let v = b.load(p);
//! let two = b.const_f32(2.0);
//! let d = b.bin(BinOp::Mul, v, two);
//! b.store(p, d);
//! b.ret(None);
//! let func = b.finish();
//! assert_eq!(func.insn_count(), 6);
//! ```

use crate::ir::{
    AtomicOp, BinOp, Block, BlockId, CmpOp, ConstVal, Function, FunctionKind, Inst, Op, Param,
    Terminator, UnOp, ValueId, WiBuiltin,
};
use crate::types::{AddressSpace, Type};

/// Incremental builder for one [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    span: Option<(u32, u32)>,
}

impl FunctionBuilder {
    /// Start a function with an empty entry block selected.
    pub fn new(name: impl Into<String>, kind: FunctionKind, ret: Type) -> Self {
        FunctionBuilder {
            func: Function {
                name: name.into(),
                kind,
                params: Vec::new(),
                ret,
                value_types: Vec::new(),
                blocks: vec![Block::new()],
            },
            current: BlockId(0),
            span: None,
        }
    }

    /// Set the source span (`(line, col)`, 1-based) stamped on subsequently
    /// emitted instructions; `None` clears it. Front ends call this per
    /// statement/expression so diagnostics can point at source text.
    pub fn set_span(&mut self, span: Option<(u32, u32)>) {
        self.span = span;
    }

    /// Append a parameter; must be called before any instruction is emitted.
    ///
    /// # Panics
    ///
    /// Panics if instructions have already been emitted (parameters must be
    /// the first value ids).
    pub fn add_param(&mut self, name: impl Into<String>, ty: Type) -> ValueId {
        assert_eq!(
            self.func.value_types.len(),
            self.func.params.len(),
            "parameters must be added before instructions"
        );
        let id = ValueId(self.func.value_types.len() as u32);
        self.func.params.push(Param {
            name: name.into(),
            ty: ty.clone(),
        });
        self.func.value_types.push(ty);
        id
    }

    /// Create a new, empty block (does not change the insertion point).
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block::new());
        id
    }

    /// Move the insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            block.index() < self.func.blocks.len(),
            "unknown block {block}"
        );
        self.current = block;
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Type of an already-created value.
    pub fn type_of(&self, v: ValueId) -> &Type {
        self.func.value_type(v)
    }

    fn fresh(&mut self, ty: Type) -> ValueId {
        let id = ValueId(self.func.value_types.len() as u32);
        self.func.value_types.push(ty);
        id
    }

    fn push(&mut self, mut inst: Inst) {
        let blk = &mut self.func.blocks[self.current.index()];
        assert!(
            blk.term.is_none(),
            "appending to a terminated block {}",
            self.current
        );
        inst.span = self.span;
        blk.insts.push(inst);
    }

    fn emit(&mut self, ty: Type, op: Op) -> ValueId {
        let id = self.fresh(ty);
        self.push(Inst::new(Some(id), op));
        id
    }

    fn emit_void(&mut self, op: Op) {
        self.push(Inst::new(None, op));
    }

    /// Emit a constant.
    pub fn constant(&mut self, c: ConstVal) -> ValueId {
        let ty = c.ty();
        self.emit(ty, Op::Const(c))
    }

    /// Shorthand for an `i32` constant.
    pub fn const_i32(&mut self, v: i32) -> ValueId {
        self.constant(ConstVal::I32(v))
    }

    /// Shorthand for an `i64` constant.
    pub fn const_i64(&mut self, v: i64) -> ValueId {
        self.constant(ConstVal::I64(v))
    }

    /// Shorthand for an `f32` constant.
    pub fn const_f32(&mut self, v: f32) -> ValueId {
        self.constant(ConstVal::F32(v))
    }

    /// Shorthand for an `f64` constant.
    pub fn const_f64(&mut self, v: f64) -> ValueId {
        self.constant(ConstVal::F64(v))
    }

    /// Shorthand for a `bool` constant.
    pub fn const_bool(&mut self, v: bool) -> ValueId {
        self.constant(ConstVal::Bool(v))
    }

    /// Binary operation; result has the type of `lhs`.
    pub fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let ty = self.type_of(lhs).clone();
        self.emit(ty, Op::Bin(op, lhs, rhs))
    }

    /// Unary operation; result keeps the operand type.
    pub fn un(&mut self, op: UnOp, v: ValueId) -> ValueId {
        let ty = self.type_of(v).clone();
        self.emit(ty, Op::Un(op, v))
    }

    /// Comparison producing `bool`.
    pub fn cmp(&mut self, op: CmpOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.emit(Type::Bool, Op::Cmp(op, lhs, rhs))
    }

    /// `select(cond, a, b)`; result has the type of `a`.
    pub fn select(&mut self, cond: ValueId, a: ValueId, b: ValueId) -> ValueId {
        let ty = self.type_of(a).clone();
        self.emit(ty, Op::Select(cond, a, b))
    }

    /// Numeric or pointer-compatible conversion to `ty`.
    pub fn cast(&mut self, ty: Type, v: ValueId) -> ValueId {
        self.emit(ty.clone(), Op::Cast(ty, v))
    }

    /// Allocate `count` elements of `elem` in `space`; yields a pointer.
    pub fn alloca(&mut self, elem: Type, count: u32, space: AddressSpace) -> ValueId {
        let ty = Type::ptr(space, elem.clone());
        self.emit(ty, Op::Alloca { elem, count, space })
    }

    /// Load through `ptr`; result is the pointee type.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is not a pointer-typed value.
    pub fn load(&mut self, ptr: ValueId) -> ValueId {
        let ty = self
            .type_of(ptr)
            .pointee()
            .unwrap_or_else(|| panic!("load through non-pointer {ptr}"))
            .clone();
        self.emit(ty, Op::Load(ptr))
    }

    /// Store `value` through `ptr`.
    pub fn store(&mut self, ptr: ValueId, value: ValueId) {
        self.emit_void(Op::Store { ptr, value });
    }

    /// Pointer element arithmetic.
    pub fn gep(&mut self, ptr: ValueId, index: ValueId) -> ValueId {
        let ty = self.type_of(ptr).clone();
        self.emit(ty, Op::Gep { ptr, index })
    }

    /// Call `callee` with `args`; `ret` is the callee's return type (the
    /// builder cannot see other functions, so the caller supplies it).
    pub fn call(
        &mut self,
        callee: impl Into<String>,
        args: Vec<ValueId>,
        ret: Type,
    ) -> Option<ValueId> {
        if ret == Type::Void {
            self.emit_void(Op::Call {
                callee: callee.into(),
                args,
            });
            None
        } else {
            Some(self.emit(
                ret,
                Op::Call {
                    callee: callee.into(),
                    args,
                },
            ))
        }
    }

    /// Work-item builtin; all builtins return `i64` (`size_t`).
    pub fn work_item(&mut self, builtin: WiBuiltin, dim: u8) -> ValueId {
        self.emit(Type::I64, Op::WorkItem { builtin, dim })
    }

    /// Atomic read-modify-write; returns the previous value (pointee type).
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is not a pointer-typed value.
    pub fn atomic_rmw(&mut self, op: AtomicOp, ptr: ValueId, value: ValueId) -> ValueId {
        let ty = self
            .type_of(ptr)
            .pointee()
            .unwrap_or_else(|| panic!("atomic through non-pointer {ptr}"))
            .clone();
        self.emit(ty, Op::AtomicRmw { op, ptr, value })
    }

    /// Atomic compare-exchange; returns the previous value (pointee type).
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is not a pointer-typed value.
    pub fn atomic_cmpxchg(&mut self, ptr: ValueId, expected: ValueId, desired: ValueId) -> ValueId {
        let ty = self
            .type_of(ptr)
            .pointee()
            .unwrap_or_else(|| panic!("atomic through non-pointer {ptr}"))
            .clone();
        self.emit(
            ty,
            Op::AtomicCmpXchg {
                ptr,
                expected,
                desired,
            },
        )
    }

    /// Work-group barrier.
    pub fn barrier(&mut self) {
        self.emit_void(Op::Barrier);
    }

    fn terminate(&mut self, term: Terminator) {
        let blk = &mut self.func.blocks[self.current.index()];
        assert!(
            blk.term.is_none(),
            "block {} already terminated",
            self.current
        );
        blk.term = Some(term);
    }

    /// Unconditional branch; terminates the current block.
    pub fn br(&mut self, target: BlockId) {
        self.terminate(Terminator::Br(target));
    }

    /// Conditional branch; terminates the current block.
    pub fn cond_br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Return; terminates the current block.
    pub fn ret(&mut self, value: Option<ValueId>) {
        self.terminate(Terminator::Ret(value));
    }

    /// Whether the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        self.func.blocks[self.current.index()].term.is_some()
    }

    /// Finish and return the function.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator.
    pub fn finish(self) -> Function {
        for (i, b) in self.func.blocks.iter().enumerate() {
            assert!(
                b.term.is_some(),
                "block bb{i} of `{}` lacks a terminator",
                self.func.name
            );
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_branching_function() {
        // fn f(x: i32) -> i32 { if x < 0 { -x } else { x } } via an alloca cell.
        let mut b = FunctionBuilder::new("abs_like", FunctionKind::Helper, Type::I32);
        let x = b.add_param("x", Type::I32);
        let cell = b.alloca(Type::I32, 1, AddressSpace::Private);
        let zero = b.const_i32(0);
        let neg = b.cmp(CmpOp::Lt, x, zero);
        let t = b.new_block();
        let e = b.new_block();
        let join = b.new_block();
        b.cond_br(neg, t, e);
        b.switch_to(t);
        let nx = b.un(UnOp::Neg, x);
        b.store(cell, nx);
        b.br(join);
        b.switch_to(e);
        b.store(cell, x);
        b.br(join);
        b.switch_to(join);
        let v = b.load(cell);
        b.ret(Some(v));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.value_type(x), &Type::I32);
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn unterminated_block_rejected() {
        let b = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_rejected() {
        let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
        b.ret(None);
        b.ret(None);
    }

    #[test]
    #[should_panic(expected = "parameters must be added before instructions")]
    fn late_param_rejected() {
        let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
        let _ = b.const_i32(1);
        let _ = b.add_param("x", Type::I32);
    }

    #[test]
    fn call_returns_none_for_void() {
        let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
        assert!(b.call("g", vec![], Type::Void).is_none());
        assert!(b.call("h", vec![], Type::I32).is_some());
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.insn_count(), 2);
    }
}
