//! Core IR data structures: modules, functions, blocks, instructions.
//!
//! The IR is a conventional three-address, basic-block form (not SSA: virtual
//! registers are single-assignment by construction of the builder, but there
//! are no phi nodes — loops communicate through `alloca`/`load`/`store`,
//! which is also how clang emits OpenCL C at `-O0` and what the accelOS JIT
//! pass in the paper operates on before vendor optimization).

use crate::types::{AddressSpace, Type};
use std::fmt;

/// Identifier of a virtual register within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// Index into the function's value table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Identifier of a basic block within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into the function's block table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Integer/float binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (trapping on integer division by zero at interpretation time).
    Div,
    /// Remainder.
    Rem,
    /// Bitwise and (integers only).
    And,
    /// Bitwise or (integers only).
    Or,
    /// Bitwise xor (integers only).
    Xor,
    /// Shift left (integers only).
    Shl,
    /// Arithmetic shift right (integers only).
    Shr,
    /// Two-operand minimum.
    Min,
    /// Two-operand maximum.
    Max,
}

impl BinOp {
    /// Whether the operation is defined only on integer operands.
    pub fn int_only(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        )
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

/// Unary operations, including the transcendental math builtins of OpenCL C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (bool only).
    Not,
    /// Square root (floats).
    Sqrt,
    /// Absolute value.
    Abs,
    /// Natural exponential (floats).
    Exp,
    /// Natural logarithm (floats).
    Log,
    /// Sine (floats).
    Sin,
    /// Cosine (floats).
    Cos,
    /// Round towards negative infinity (floats).
    Floor,
    /// Round towards positive infinity (floats).
    Ceil,
}

impl UnOp {
    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Sqrt => "sqrt",
            UnOp::Abs => "abs",
            UnOp::Exp => "exp",
            UnOp::Log => "log",
            UnOp::Sin => "sin",
            UnOp::Cos => "cos",
            UnOp::Floor => "floor",
            UnOp::Ceil => "ceil",
        }
    }
}

/// Comparison predicates. Result type is always [`Type::Bool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

/// OpenCL work-item builtin functions (`get_global_id` and friends).
///
/// These are the functions the accelOS JIT replaces with runtime-library
/// equivalents (paper §6.2 step 3); keeping them as first-class ops makes the
/// replacement pass a simple instruction rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WiBuiltin {
    /// `get_global_id(dim)`.
    GlobalId,
    /// `get_local_id(dim)`.
    LocalId,
    /// `get_group_id(dim)`.
    GroupId,
    /// `get_global_size(dim)`.
    GlobalSize,
    /// `get_local_size(dim)`.
    LocalSize,
    /// `get_num_groups(dim)`.
    NumGroups,
    /// `get_work_dim()` (ignores its `dim` operand).
    WorkDim,
}

impl WiBuiltin {
    /// OpenCL C spelling, used by the printer and the front end.
    pub fn name(self) -> &'static str {
        match self {
            WiBuiltin::GlobalId => "get_global_id",
            WiBuiltin::LocalId => "get_local_id",
            WiBuiltin::GroupId => "get_group_id",
            WiBuiltin::GlobalSize => "get_global_size",
            WiBuiltin::LocalSize => "get_local_size",
            WiBuiltin::NumGroups => "get_num_groups",
            WiBuiltin::WorkDim => "get_work_dim",
        }
    }

    /// Whether the builtin's value depends on the work group the item runs
    /// in. Group-dependent builtins must be virtualised by the accelOS JIT;
    /// group-invariant ones (`get_local_id`, `get_local_size`, `get_work_dim`)
    /// keep their hardware meaning after the transformation.
    pub fn group_dependent(self) -> bool {
        matches!(
            self,
            WiBuiltin::GlobalId | WiBuiltin::GroupId | WiBuiltin::GlobalSize | WiBuiltin::NumGroups
        )
    }
}

/// Atomic read-modify-write operations on global or local memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    /// Fetch-and-add, returns the old value.
    Add,
    /// Fetch-and-sub, returns the old value.
    Sub,
    /// Fetch-and-min, returns the old value.
    Min,
    /// Fetch-and-max, returns the old value.
    Max,
    /// Exchange, returns the old value.
    Xchg,
}

impl AtomicOp {
    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AtomicOp::Add => "atomic_add",
            AtomicOp::Sub => "atomic_sub",
            AtomicOp::Min => "atomic_min",
            AtomicOp::Max => "atomic_max",
            AtomicOp::Xchg => "atomic_xchg",
        }
    }
}

/// Constant literal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstVal {
    /// `bool` literal.
    Bool(bool),
    /// `i32` literal.
    I32(i32),
    /// `i64` literal.
    I64(i64),
    /// `f32` literal.
    F32(f32),
    /// `f64` literal.
    F64(f64),
}

impl ConstVal {
    /// The IR type of the literal.
    pub fn ty(&self) -> Type {
        match self {
            ConstVal::Bool(_) => Type::Bool,
            ConstVal::I32(_) => Type::I32,
            ConstVal::I64(_) => Type::I64,
            ConstVal::F32(_) => Type::F32,
            ConstVal::F64(_) => Type::F64,
        }
    }
}

impl fmt::Display for ConstVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstVal::Bool(b) => write!(f, "{b}"),
            ConstVal::I32(v) => write!(f, "{v}i32"),
            ConstVal::I64(v) => write!(f, "{v}i64"),
            ConstVal::F32(v) => write!(f, "{v}f32"),
            ConstVal::F64(v) => write!(f, "{v}f64"),
        }
    }
}

/// A non-terminator instruction operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Materialise a constant.
    Const(ConstVal),
    /// Binary arithmetic/logic.
    Bin(BinOp, ValueId, ValueId),
    /// Unary arithmetic/math.
    Un(UnOp, ValueId),
    /// Comparison producing a `bool`.
    Cmp(CmpOp, ValueId, ValueId),
    /// `select(cond, if_true, if_false)`.
    Select(ValueId, ValueId, ValueId),
    /// Numeric conversion to the given type.
    Cast(Type, ValueId),
    /// Stack/local-memory allocation of `count` elements of `elem`.
    ///
    /// `space` must be [`AddressSpace::Private`] (per work item) or
    /// [`AddressSpace::Local`] (per work group; kernels only until the JIT
    /// hoists them).
    Alloca {
        /// Element type.
        elem: Type,
        /// Number of elements.
        count: u32,
        /// `Private` or `Local`.
        space: AddressSpace,
    },
    /// Load through a pointer.
    Load(ValueId),
    /// Store `value` through `ptr`.
    Store {
        /// Destination pointer.
        ptr: ValueId,
        /// Value stored.
        value: ValueId,
    },
    /// Pointer element arithmetic: `ptr + index` in units of the pointee.
    Gep {
        /// Base pointer.
        ptr: ValueId,
        /// Element index (any integer type).
        index: ValueId,
    },
    /// Direct call of another function in the module, by name.
    Call {
        /// Callee name.
        callee: String,
        /// Argument registers.
        args: Vec<ValueId>,
    },
    /// Work-item builtin with a compile-time dimension index.
    WorkItem {
        /// Which builtin.
        builtin: WiBuiltin,
        /// Dimension (0..=2); ignored by `WorkDim`.
        dim: u8,
    },
    /// Atomic read-modify-write; returns the previous value.
    AtomicRmw {
        /// Which read-modify-write operation.
        op: AtomicOp,
        /// Pointer to a `global`/`local` integer.
        ptr: ValueId,
        /// Operand value.
        value: ValueId,
    },
    /// Atomic compare-and-swap; returns the previous value.
    AtomicCmpXchg {
        /// Pointer to a `global`/`local` integer.
        ptr: ValueId,
        /// Expected value.
        expected: ValueId,
        /// Replacement value.
        desired: ValueId,
    },
    /// Work-group barrier (`barrier(CLK_*_MEM_FENCE)`).
    Barrier,
}

/// A single instruction: an operation plus its (optional) result register.
#[derive(Debug, Clone)]
pub struct Inst {
    /// Destination register, if the op produces a value.
    pub result: Option<ValueId>,
    /// The operation.
    pub op: Op,
    /// Optional source location (`(line, col)`, 1-based) carried from the
    /// front end for diagnostics. `None` for builder- or JIT-created
    /// instructions, which report IR locations instead.
    pub span: Option<(u32, u32)>,
}

impl Inst {
    /// An instruction without a source span.
    pub fn new(result: Option<ValueId>, op: Op) -> Self {
        Inst {
            result,
            op,
            span: None,
        }
    }
}

/// Equality ignores the diagnostic span: two instructions that compute the
/// same thing are equal regardless of where their source text sat. This keeps
/// module-level comparisons (differential tests, JIT round-trips) stable
/// across front ends.
impl PartialEq for Inst {
    fn eq(&self, other: &Self) -> bool {
        self.result == other.result && self.op == other.op
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way conditional branch on a `bool` register.
    CondBr {
        /// Condition register (`bool`).
        cond: ValueId,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Function return with optional value.
    Ret(Option<ValueId>),
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instructions in execution order.
    pub insts: Vec<Inst>,
    /// The terminator. `None` only transiently while building.
    pub term: Option<Terminator>,
}

impl Block {
    /// An empty, unterminated block.
    pub fn new() -> Self {
        Block {
            insts: Vec::new(),
            term: None,
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

/// Whether a function is an entry-point kernel or a helper device function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunctionKind {
    /// `kernel void` entry point launched over an NDRange.
    Kernel,
    /// Regular device function callable from kernels.
    Helper,
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Source-level name (for diagnostics and printing).
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A function: parameters, typed value table, and a CFG of basic blocks.
///
/// Block 0 is the entry block. Parameters occupy value ids `0..params.len()`.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Unique name within the module.
    pub name: String,
    /// Kernel or helper.
    pub kind: FunctionKind,
    /// Formal parameters (also the first value ids).
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Type,
    /// Types of every value id (parameters first).
    pub value_types: Vec<Type>,
    /// Basic blocks; index = `BlockId`.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Type of a value id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for this function.
    pub fn value_type(&self, v: ValueId) -> &Type {
        &self.value_types[v.index()]
    }

    /// The entry block id (always `bb0`).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Iterate over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total number of non-terminator instructions, the "kernel instructions
    /// in LLVM IR" measure used by the paper's adaptive scheduling (§6.4).
    pub fn insn_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A module: an ordered set of uniquely named functions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Functions in definition order.
    pub functions: Vec<Function>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Names of all kernel entry points, in definition order.
    pub fn kernel_names(&self) -> Vec<&str> {
        self.functions
            .iter()
            .filter(|f| f.kind == FunctionKind::Kernel)
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Add a function, replacing any existing function of the same name.
    pub fn insert_function(&mut self, func: Function) {
        if let Some(existing) = self.functions.iter_mut().find(|f| f.name == func.name) {
            *existing = func;
        } else {
            self.functions.push(func);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Br(BlockId(3)).successors(), vec![BlockId(3)]);
        let cb = Terminator::CondBr {
            cond: ValueId(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(cb.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn const_types() {
        assert_eq!(ConstVal::Bool(true).ty(), Type::Bool);
        assert_eq!(ConstVal::I32(1).ty(), Type::I32);
        assert_eq!(ConstVal::I64(1).ty(), Type::I64);
        assert_eq!(ConstVal::F32(1.0).ty(), Type::F32);
        assert_eq!(ConstVal::F64(1.0).ty(), Type::F64);
    }

    #[test]
    fn builtin_group_dependence() {
        assert!(WiBuiltin::GlobalId.group_dependent());
        assert!(WiBuiltin::GroupId.group_dependent());
        assert!(WiBuiltin::GlobalSize.group_dependent());
        assert!(WiBuiltin::NumGroups.group_dependent());
        assert!(!WiBuiltin::LocalId.group_dependent());
        assert!(!WiBuiltin::LocalSize.group_dependent());
        assert!(!WiBuiltin::WorkDim.group_dependent());
    }

    #[test]
    fn module_function_lookup() {
        let mut m = Module::new();
        m.insert_function(Function {
            name: "a".into(),
            kind: FunctionKind::Kernel,
            params: vec![],
            ret: Type::Void,
            value_types: vec![],
            blocks: vec![],
        });
        assert!(m.function("a").is_some());
        assert!(m.function("b").is_none());
        assert_eq!(m.kernel_names(), vec!["a"]);
        // Replacement keeps a single entry.
        m.insert_function(Function {
            name: "a".into(),
            kind: FunctionKind::Helper,
            params: vec![],
            ret: Type::Void,
            value_types: vec![],
            blocks: vec![],
        });
        assert_eq!(m.functions.len(), 1);
        assert!(m.kernel_names().is_empty());
    }

    #[test]
    fn int_only_ops() {
        assert!(BinOp::And.int_only());
        assert!(BinOp::Shl.int_only());
        assert!(!BinOp::Add.int_only());
        assert!(!BinOp::Min.int_only());
    }
}
