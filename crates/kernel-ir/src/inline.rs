//! Function inlining.
//!
//! GPU vendor compilers inline aggressively by default — the accelOS paper
//! leans on this in §6.5, where the transformation's +3 registers per work
//! item "after the function inlining … accounts to 0 or 1 registers". This
//! pass reproduces that step: calls to helper functions are replaced by the
//! callee's body, so the scheduling kernel + computation function produced
//! by the JIT collapse back into one flat kernel.
//!
//! The pass is iterative (callees of callees are inlined on subsequent
//! passes) and refuses recursive cycles.

use crate::error::IrError;
use crate::ir::{Block, BlockId, Function, FunctionKind, Inst, Module, Op, Terminator, ValueId};
use crate::verify::operands;
use std::collections::BTreeSet;

/// Inline every call to a [`FunctionKind::Helper`] in every kernel of the
/// module, repeatedly, until no calls remain. Helpers that are no longer
/// referenced are dropped from the module.
///
/// # Errors
///
/// Returns [`IrError`] if a call targets an unknown function or the call
/// graph is recursive.
///
/// # Examples
///
/// ```
/// use kernel_ir::builder::FunctionBuilder;
/// use kernel_ir::ir::{BinOp, FunctionKind, Module, Op, WiBuiltin};
/// use kernel_ir::types::{AddressSpace, Type};
///
/// // float sq(float x) { return x * x; }
/// let mut h = FunctionBuilder::new("sq", FunctionKind::Helper, Type::F32);
/// let x = h.add_param("x", Type::F32);
/// let xx = h.bin(BinOp::Mul, x, x);
/// h.ret(Some(xx));
///
/// // kernel void k(global float* o) { o[gid] = sq(2.0); }
/// let mut k = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
/// let o = k.add_param("o", Type::ptr(AddressSpace::Global, Type::F32));
/// let gid = k.work_item(WiBuiltin::GlobalId, 0);
/// let two = k.const_f32(2.0);
/// let v = k.call("sq", vec![two], Type::F32).unwrap();
/// let p = k.gep(o, gid);
/// k.store(p, v);
/// k.ret(None);
///
/// let mut module = Module::new();
/// module.insert_function(h.finish());
/// module.insert_function(k.finish());
/// kernel_ir::inline::inline_module(&mut module).unwrap();
///
/// let k = module.function("k").unwrap();
/// let has_calls = k.blocks.iter().flat_map(|b| &b.insts)
///     .any(|i| matches!(i.op, Op::Call { .. }));
/// assert!(!has_calls);
/// assert!(module.function("sq").is_none(), "dead helpers are dropped");
/// ```
pub fn inline_module(module: &mut Module) -> Result<(), IrError> {
    // Guard against recursion up front (the inliner would not terminate).
    check_acyclic(module)?;

    let kernel_names: Vec<String> = module
        .functions
        .iter()
        .filter(|f| f.kind == FunctionKind::Kernel)
        .map(|f| f.name.clone())
        .collect();
    for name in kernel_names.iter() {
        loop {
            let func = module.function(name).expect("kernel exists").clone();
            let Some(site) = find_call(&func) else { break };
            let callee = module
                .function(&site.callee)
                .ok_or_else(|| {
                    IrError::in_function(name, format!("unknown callee `{}`", site.callee))
                })?
                .clone();
            let inlined = inline_one(&func, &site, &callee)?;
            module.insert_function(inlined);
        }
    }

    // Drop helpers no longer reachable from any kernel.
    let mut live: BTreeSet<String> = BTreeSet::new();
    let mut queue: Vec<String> = kernel_names;
    while let Some(name) = queue.pop() {
        if let Some(f) = module.function(&name) {
            for callee in crate::analysis::callees(f) {
                if live.insert(callee.clone()) {
                    queue.push(callee);
                }
            }
        }
    }
    module
        .functions
        .retain(|f| f.kind == FunctionKind::Kernel || live.contains(&f.name));
    Ok(())
}

/// A call instruction's location.
struct CallSite {
    block: BlockId,
    ip: usize,
    callee: String,
    args: Vec<ValueId>,
    result: Option<ValueId>,
}

fn find_call(func: &Function) -> Option<CallSite> {
    for (bid, block) in func.iter_blocks() {
        for (ip, inst) in block.insts.iter().enumerate() {
            if let Op::Call { callee, args } = &inst.op {
                return Some(CallSite {
                    block: bid,
                    ip,
                    callee: callee.clone(),
                    args: args.clone(),
                    result: inst.result,
                });
            }
        }
    }
    None
}

fn check_acyclic(module: &Module) -> Result<(), IrError> {
    // DFS colouring over the call graph.
    fn visit(
        module: &Module,
        name: &str,
        visiting: &mut BTreeSet<String>,
        done: &mut BTreeSet<String>,
    ) -> Result<(), IrError> {
        if done.contains(name) {
            return Ok(());
        }
        if !visiting.insert(name.to_string()) {
            return Err(IrError::in_function(
                name,
                "recursive call cycle; cannot inline",
            ));
        }
        if let Some(f) = module.function(name) {
            for callee in crate::analysis::callees(f) {
                visit(module, &callee, visiting, done)?;
            }
        }
        visiting.remove(name);
        done.insert(name.to_string());
        Ok(())
    }
    let mut done = BTreeSet::new();
    for f in &module.functions {
        visit(module, &f.name, &mut BTreeSet::new(), &mut done)?;
    }
    Ok(())
}

/// Build a copy of `func` with one call site replaced by `callee`'s body.
fn inline_one(func: &Function, site: &CallSite, callee: &Function) -> Result<Function, IrError> {
    if callee.params.len() != site.args.len() {
        return Err(IrError::in_function(
            &func.name,
            format!(
                "call to `{}` with {} args; expected {}",
                callee.name,
                site.args.len(),
                callee.params.len()
            ),
        ));
    }
    let mut out = func.clone();

    // Allocate ids for the callee's non-parameter values at the end of the
    // caller's table; parameters map to the call arguments.
    let base = out.value_types.len() as u32;
    let np = callee.params.len();
    let map_val = |v: ValueId| -> ValueId {
        if v.index() < np {
            site.args[v.index()]
        } else {
            ValueId(base + (v.0 - np as u32))
        }
    };
    out.value_types
        .extend(callee.value_types.iter().skip(np).cloned());

    // Split the call block: instructions before the call stay; the ones
    // after it (plus the original terminator) move to a continuation block.
    let call_block = &func.blocks[site.block.index()];
    let before: Vec<Inst> = call_block.insts[..site.ip].to_vec();
    let after: Vec<Inst> = call_block.insts[site.ip + 1..].to_vec();
    let cont_term = call_block
        .term
        .clone()
        .expect("source blocks are terminated");

    // Callee blocks are appended after the caller's; block b of the callee
    // becomes caller block `block_base + b`. The continuation goes last.
    let block_base = out.blocks.len() as u32;
    let cont_id = BlockId(block_base + callee.blocks.len() as u32);
    let map_block = |b: BlockId| BlockId(block_base + b.0);

    // Non-void callees may return from several blocks; writing the call
    // result id at each `ret` would break single assignment. Route the
    // value through a fresh private cell instead: every `ret` stores into
    // it, the continuation loads it once into the call's result id.
    let ret_cell = site.result.map(|dst| {
        let cell_ty =
            crate::types::Type::ptr(crate::types::AddressSpace::Private, callee.ret.clone());
        let cell = ValueId(out.value_types.len() as u32);
        out.value_types.push(cell_ty);
        (cell, dst)
    });

    // The call block now jumps into the callee's entry, allocating the
    // return cell first when one is needed.
    let mut before = before;
    if let Some((cell, _)) = ret_cell {
        before.push(Inst::new(
            Some(cell),
            Op::Alloca {
                elem: callee.ret.clone(),
                count: 1,
                space: crate::types::AddressSpace::Private,
            },
        ));
    }
    out.blocks[site.block.index()] = Block {
        insts: before,
        term: Some(Terminator::Br(map_block(callee.entry()))),
    };

    // Copy callee blocks, remapping values and blocks; `ret` becomes a
    // store into the return cell plus a branch to the continuation.
    for cblock in &callee.blocks {
        let mut insts: Vec<Inst> = Vec::with_capacity(cblock.insts.len());
        for inst in &cblock.insts {
            let mut op = inst.op.clone();
            remap_op(&mut op, &map_val);
            let mut mapped = Inst::new(inst.result.map(map_val), op);
            mapped.span = inst.span;
            insts.push(mapped);
        }
        let term = match cblock.term.as_ref().expect("callee blocks are terminated") {
            Terminator::Br(b) => Terminator::Br(map_block(*b)),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => Terminator::CondBr {
                cond: map_val(*cond),
                then_bb: map_block(*then_bb),
                else_bb: map_block(*else_bb),
            },
            Terminator::Ret(v) => {
                if let (Some((cell, _)), Some(v)) = (ret_cell, v) {
                    let src = map_val(*v);
                    insts.push(Inst::new(
                        None,
                        Op::Store {
                            ptr: cell,
                            value: src,
                        },
                    ));
                }
                Terminator::Br(cont_id)
            }
        };
        out.blocks.push(Block {
            insts,
            term: Some(term),
        });
    }

    // Continuation block: load the returned value (if any), then
    // everything after the call.
    let mut cont_insts = Vec::with_capacity(after.len() + 1);
    if let Some((cell, dst)) = ret_cell {
        cont_insts.push(Inst::new(Some(dst), Op::Load(cell)));
    }
    cont_insts.extend(after);
    out.blocks.push(Block {
        insts: cont_insts,
        term: Some(cont_term),
    });

    debug_assert_eq!(out.blocks.len() as u32, cont_id.0 + 1);
    Ok(out)
}

/// Multi-return functions write the call result once per `ret`; value ids
/// would no longer be single-assignment, which the verifier tolerates only
/// because each execution path assigns once. To stay conservative we remap
/// operands with a plain function (no dominance restructuring needed).
fn remap_op(op: &mut Op, map: &impl Fn(ValueId) -> ValueId) {
    // Reuse the operand walker from verify via a mutable visitor.
    let mut ids = operands(op);
    for id in &mut ids {
        *id = map(*id);
    }
    // Write the remapped ids back in the same order.
    let mut it = ids.into_iter();
    match op {
        Op::Const(_) | Op::Alloca { .. } | Op::WorkItem { .. } | Op::Barrier => {}
        Op::Bin(_, a, b) | Op::Cmp(_, a, b) => {
            *a = it.next().expect("two operands");
            *b = it.next().expect("two operands");
        }
        Op::Un(_, a) | Op::Load(a) | Op::Cast(_, a) => *a = it.next().expect("one operand"),
        Op::Select(c, a, b) => {
            *c = it.next().expect("three operands");
            *a = it.next().expect("three operands");
            *b = it.next().expect("three operands");
        }
        Op::Store { ptr, value } => {
            *ptr = it.next().expect("two operands");
            *value = it.next().expect("two operands");
        }
        Op::Gep { ptr, index } => {
            *ptr = it.next().expect("two operands");
            *index = it.next().expect("two operands");
        }
        Op::Call { args, .. } => {
            for a in args {
                *a = it.next().expect("call operand");
            }
        }
        Op::AtomicRmw { ptr, value, .. } => {
            *ptr = it.next().expect("two operands");
            *value = it.next().expect("two operands");
        }
        Op::AtomicCmpXchg {
            ptr,
            expected,
            desired,
        } => {
            *ptr = it.next().expect("three operands");
            *expected = it.next().expect("three operands");
            *desired = it.next().expect("three operands");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ArgValue, DeviceMemory, Interpreter, NdRange};
    use crate::verify::verify_module;

    // The front end lives in a downstream crate; unit tests construct IR
    // directly through the builder (the doc example covers the front-end
    // path).
    use crate::builder::FunctionBuilder;
    use crate::ir::{BinOp, CmpOp, FunctionKind, WiBuiltin};
    use crate::types::{AddressSpace, Type};

    /// helper: `fn add3(x) -> x + 3`; kernel calls it per element.
    fn module_with_helper() -> Module {
        let mut h = FunctionBuilder::new("add3", FunctionKind::Helper, Type::I64);
        let x = h.add_param("x", Type::I64);
        let three = h.const_i64(3);
        let s = h.bin(BinOp::Add, x, three);
        h.ret(Some(s));

        let mut k = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = k.add_param("out", Type::ptr(AddressSpace::Global, Type::I64));
        let gid = k.work_item(WiBuiltin::GlobalId, 0);
        let v = k.call("add3", vec![gid], Type::I64).expect("non-void");
        let p = k.gep(out, gid);
        k.store(p, v);
        k.ret(None);

        let mut m = Module::new();
        m.insert_function(h.finish());
        m.insert_function(k.finish());
        m
    }

    fn run(m: &Module) -> Vec<i64> {
        let mut mem = DeviceMemory::new();
        let b = mem.alloc(8 * 8);
        Interpreter::new(m)
            .run_kernel(&mut mem, "k", NdRange::new_1d(8, 4), &[ArgValue::Buffer(b)])
            .expect("runs");
        mem.read_i64(b)
    }

    #[test]
    fn inlines_and_preserves_semantics() {
        let mut m = module_with_helper();
        let expected = run(&m);
        inline_module(&mut m).unwrap();
        verify_module(&m).unwrap();
        assert_eq!(run(&m), expected);
        assert!(
            m.function("add3").is_none(),
            "helper dropped after inlining"
        );
        let k = m.function("k").unwrap();
        assert!(
            !k.blocks
                .iter()
                .flat_map(|b| &b.insts)
                .any(|i| matches!(i.op, Op::Call { .. })),
            "no calls remain"
        );
    }

    #[test]
    fn inlines_branching_callees() {
        // helper: fn pick(x) -> if x < 4 { x } else { -x }
        let mut h = FunctionBuilder::new("pick", FunctionKind::Helper, Type::I64);
        let x = h.add_param("x", Type::I64);
        let four = h.const_i64(4);
        let c = h.cmp(CmpOp::Lt, x, four);
        let t = h.new_block();
        let e = h.new_block();
        h.cond_br(c, t, e);
        h.switch_to(t);
        h.ret(Some(x));
        h.switch_to(e);
        let n = h.un(crate::ir::UnOp::Neg, x);
        h.ret(Some(n));

        let mut k = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = k.add_param("out", Type::ptr(AddressSpace::Global, Type::I64));
        let gid = k.work_item(WiBuiltin::GlobalId, 0);
        let v = k.call("pick", vec![gid], Type::I64).expect("non-void");
        let p = k.gep(out, gid);
        k.store(p, v);
        k.ret(None);

        let mut m = Module::new();
        m.insert_function(h.finish());
        m.insert_function(k.finish());
        let expected = run(&m);
        inline_module(&mut m).unwrap();
        verify_module(&m).unwrap();
        assert_eq!(run(&m), expected);
        assert_eq!(expected, vec![0, 1, 2, 3, -4, -5, -6, -7]);
    }

    #[test]
    fn inlines_nested_calls() {
        // a -> b -> const; kernel calls a.
        let mut b = FunctionBuilder::new("b", FunctionKind::Helper, Type::I64);
        let seven = b.const_i64(7);
        b.ret(Some(seven));
        let mut a = FunctionBuilder::new("a", FunctionKind::Helper, Type::I64);
        let v = a.call("b", vec![], Type::I64).expect("non-void");
        let one = a.const_i64(1);
        let s = a.bin(BinOp::Add, v, one);
        a.ret(Some(s));
        let mut k = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = k.add_param("out", Type::ptr(AddressSpace::Global, Type::I64));
        let gid = k.work_item(WiBuiltin::GlobalId, 0);
        let r = k.call("a", vec![], Type::I64).expect("non-void");
        let p = k.gep(out, gid);
        k.store(p, r);
        k.ret(None);
        let mut m = Module::new();
        m.insert_function(b.finish());
        m.insert_function(a.finish());
        m.insert_function(k.finish());
        inline_module(&mut m).unwrap();
        verify_module(&m).unwrap();
        assert_eq!(run(&m), vec![8; 8]);
        assert_eq!(m.functions.len(), 1, "both helpers dropped");
    }

    #[test]
    fn rejects_recursion() {
        // f calls itself.
        let mut f = FunctionBuilder::new("f", FunctionKind::Helper, Type::I64);
        let v = f.call("f", vec![], Type::I64).expect("non-void");
        f.ret(Some(v));
        let mut k = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        k.call("f", vec![], Type::I64);
        k.ret(None);
        let mut m = Module::new();
        m.insert_function(f.finish());
        m.insert_function(k.finish());
        assert!(inline_module(&mut m).is_err());
    }

    #[test]
    fn unknown_callee_reported() {
        let mut k = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        k.call("ghost", vec![], Type::Void);
        k.ret(None);
        let mut m = Module::new();
        m.insert_function(k.finish());
        assert!(inline_module(&mut m).is_err());
    }

    #[test]
    fn void_calls_inline_too() {
        // helper with a side effect through a pointer.
        let mut h = FunctionBuilder::new("bump", FunctionKind::Helper, Type::Void);
        let p = h.add_param("p", Type::ptr(AddressSpace::Global, Type::I64));
        let v = h.load(p);
        let one = h.const_i64(1);
        let s = h.bin(BinOp::Add, v, one);
        h.store(p, s);
        h.ret(None);
        let mut k = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = k.add_param("out", Type::ptr(AddressSpace::Global, Type::I64));
        let gid = k.work_item(WiBuiltin::GlobalId, 0);
        let p = k.gep(out, gid);
        k.call("bump", vec![p], Type::Void);
        k.call("bump", vec![p], Type::Void);
        k.ret(None);
        let mut m = Module::new();
        m.insert_function(h.finish());
        m.insert_function(k.finish());
        inline_module(&mut m).unwrap();
        verify_module(&m).unwrap();
        assert_eq!(run(&m), vec![2; 8]);
    }
}
