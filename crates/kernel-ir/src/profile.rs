//! Kernel resource profiles: the static facts the accelOS resource-sharing
//! algorithm (paper §3) needs about each kernel.
//!
//! A [`KernelProfile`] bundles the three per-work-group resource demands —
//! threads (`w_i`), local memory (`m_i`), registers (`r_i`) — plus the static
//! instruction count used by adaptive scheduling (§6.4).

use crate::analysis::{local_mem_usage, register_pressure, static_insn_count};
use crate::error::IrError;
use crate::ir::{FunctionKind, Module};

/// Static resource profile of one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Estimated registers per work item (`r_i` per thread).
    pub regs_per_item: usize,
    /// Statically declared local memory bytes per work group (before dynamic
    /// `clSetKernelArg` local arguments, which the launch layer adds).
    pub static_local_bytes: usize,
    /// Static instruction count including reachable helpers (§6.4 input).
    pub insn_count: usize,
    /// Whether the kernel (or a callee) uses barriers.
    pub uses_barrier: bool,
    /// Whether the kernel (or a callee) uses atomics.
    pub uses_atomics: bool,
}

impl KernelProfile {
    /// Profile the kernel `name` in `module`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError`] if `name` is missing or is not a kernel.
    pub fn of(module: &Module, name: &str) -> Result<Self, IrError> {
        let func = module
            .function(name)
            .ok_or_else(|| IrError::new(format!("no function `{name}`")))?;
        if func.kind != FunctionKind::Kernel {
            return Err(IrError::in_function(name, "not a kernel"));
        }
        Ok(KernelProfile {
            name: name.to_string(),
            regs_per_item: register_pressure(func),
            static_local_bytes: local_mem_usage(func),
            insn_count: static_insn_count(func, module),
            uses_barrier: crate::analysis::uses_barrier(func, module),
            uses_atomics: crate::analysis::uses_atomics(func, module),
        })
    }

    /// Profiles of every kernel in the module, in definition order.
    ///
    /// # Errors
    ///
    /// Propagates [`IrError`] from [`KernelProfile::of`] (cannot fail for
    /// names reported by [`Module::kernel_names`]).
    pub fn all(module: &Module) -> Result<Vec<Self>, IrError> {
        module
            .kernel_names()
            .into_iter()
            .map(|n| Self::of(module, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ir::{BinOp, FunctionKind, WiBuiltin};
    use crate::types::{AddressSpace, Type};

    #[test]
    fn profiles_kernel() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::F32));
        let _tile = b.alloca(Type::F32, 32, AddressSpace::Local);
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let p = b.gep(out, gid);
        let v = b.load(p);
        let s = b.bin(BinOp::Add, v, v);
        b.store(p, s);
        b.barrier();
        b.ret(None);
        let mut m = Module::new();
        m.insert_function(b.finish());
        let prof = KernelProfile::of(&m, "k").unwrap();
        assert_eq!(prof.name, "k");
        assert_eq!(prof.static_local_bytes, 128);
        assert!(prof.regs_per_item >= 1);
        assert_eq!(prof.insn_count, 7);
        assert!(prof.uses_barrier);
        assert!(!prof.uses_atomics);
        assert_eq!(KernelProfile::all(&m).unwrap().len(), 1);
    }

    #[test]
    fn rejects_helpers_and_unknowns() {
        let mut h = FunctionBuilder::new("h", FunctionKind::Helper, Type::Void);
        h.ret(None);
        let mut m = Module::new();
        m.insert_function(h.finish());
        assert!(KernelProfile::of(&m, "h").is_err());
        assert!(KernelProfile::of(&m, "nope").is_err());
    }
}
