//! Module linking: merge a library module into an application module.
//!
//! The accelOS JIT "statically links kernels against the GPU scheduling
//! library" (paper §6). In this reproduction the scheduling library is itself
//! IR, and linking is a module merge with collision handling: identical
//! definitions are deduplicated, differing definitions are an error unless a
//! rename is requested.

use crate::error::IrError;
use crate::ir::{Function, Module, Op};

/// How to resolve a name collision during [`link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collision {
    /// Keep the destination's function; drop the incoming one if identical,
    /// error otherwise.
    KeepIfIdentical,
    /// Rename the incoming function by suffixing `__lib<N>` and rewrite its
    /// (intra-library) callers.
    Rename,
}

/// Link `lib` into `dst`.
///
/// # Errors
///
/// Returns [`IrError`] when a name collides with a *different* definition and
/// the policy is [`Collision::KeepIfIdentical`].
///
/// # Examples
///
/// ```
/// use kernel_ir::builder::FunctionBuilder;
/// use kernel_ir::ir::{FunctionKind, Module};
/// use kernel_ir::link::{link, Collision};
/// use kernel_ir::types::Type;
///
/// # fn main() -> Result<(), kernel_ir::error::IrError> {
/// let mut app = Module::new();
/// let mut lib = Module::new();
/// let mut f = FunctionBuilder::new("rt_helper", FunctionKind::Helper, Type::Void);
/// f.ret(None);
/// lib.insert_function(f.finish());
/// link(&mut app, lib, Collision::KeepIfIdentical)?;
/// assert!(app.function("rt_helper").is_some());
/// # Ok(())
/// # }
/// ```
pub fn link(dst: &mut Module, lib: Module, policy: Collision) -> Result<(), IrError> {
    // Pass 1: decide renames.
    let mut renames: Vec<(String, String)> = Vec::new();
    let mut incoming: Vec<Function> = Vec::new();
    for f in lib.functions {
        match dst.function(&f.name) {
            None => incoming.push(f),
            Some(existing) if *existing == f => {} // identical: dedup
            Some(_) => match policy {
                Collision::KeepIfIdentical => {
                    return Err(IrError::new(format!(
                        "link collision: `{}` defined differently in both modules",
                        f.name
                    )));
                }
                Collision::Rename => {
                    let mut n = 0usize;
                    let new_name = loop {
                        let cand = format!("{}__lib{n}", f.name);
                        if dst.function(&cand).is_none() {
                            break cand;
                        }
                        n += 1;
                    };
                    renames.push((f.name.clone(), new_name.clone()));
                    let mut f = f;
                    f.name = new_name;
                    incoming.push(f);
                }
            },
        }
    }
    // Pass 2: rewrite calls inside the incoming set to renamed targets.
    for f in &mut incoming {
        for block in &mut f.blocks {
            for inst in &mut block.insts {
                if let Op::Call { callee, .. } = &mut inst.op {
                    if let Some((_, to)) = renames.iter().find(|(from, _)| from == callee) {
                        *callee = to.clone();
                    }
                }
            }
        }
    }
    for f in incoming {
        dst.functions.push(f);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ir::FunctionKind;
    use crate::types::Type;
    use crate::verify::verify_module;

    fn helper(name: &str, insts: usize) -> Function {
        let mut b = FunctionBuilder::new(name, FunctionKind::Helper, Type::Void);
        for _ in 0..insts {
            let _ = b.const_i32(0);
        }
        b.ret(None);
        b.finish()
    }

    #[test]
    fn merges_disjoint_modules() {
        let mut dst = Module::new();
        dst.insert_function(helper("a", 1));
        let mut lib = Module::new();
        lib.insert_function(helper("b", 1));
        link(&mut dst, lib, Collision::KeepIfIdentical).unwrap();
        assert!(dst.function("a").is_some());
        assert!(dst.function("b").is_some());
        verify_module(&dst).unwrap();
    }

    #[test]
    fn dedups_identical_definitions() {
        let mut dst = Module::new();
        dst.insert_function(helper("a", 2));
        let mut lib = Module::new();
        lib.insert_function(helper("a", 2));
        link(&mut dst, lib, Collision::KeepIfIdentical).unwrap();
        assert_eq!(dst.functions.len(), 1);
    }

    #[test]
    fn errors_on_conflicting_definitions() {
        let mut dst = Module::new();
        dst.insert_function(helper("a", 1));
        let mut lib = Module::new();
        lib.insert_function(helper("a", 3));
        let e = link(&mut dst, lib, Collision::KeepIfIdentical).unwrap_err();
        assert!(e.to_string().contains("collision"));
    }

    #[test]
    fn renames_and_rewrites_internal_calls() {
        let mut dst = Module::new();
        dst.insert_function(helper("util", 1));

        let mut lib = Module::new();
        lib.insert_function(helper("util", 3)); // conflicts
        let mut caller = FunctionBuilder::new("entry", FunctionKind::Helper, Type::Void);
        caller.call("util", vec![], Type::Void);
        caller.ret(None);
        lib.insert_function(caller.finish());

        link(&mut dst, lib, Collision::Rename).unwrap();
        assert!(dst.function("util__lib0").is_some());
        let entry = dst.function("entry").unwrap();
        let called = match &entry.blocks[0].insts[0].op {
            Op::Call { callee, .. } => callee.clone(),
            other => panic!("expected call, got {other:?}"),
        };
        assert_eq!(called, "util__lib0");
        verify_module(&dst).unwrap();
    }
}
