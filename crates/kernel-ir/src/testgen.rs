//! # Shared differential-fuzz kernel generator
//!
//! The random-kernel corpus the repo's differential test planes draw from:
//! a family of `kernel void k(global int* a, global int* b, int n)` kernels
//! realising access patterns that deliberately straddle the accelcheck
//! verdict lattice — provably safe, safe only via atomics, launch-dependent
//! and outright racy shapes all appear.
//!
//! Originally private to the accelcheck differential suite; extracted here
//! so every execution path (tree-walking interpreter, both parallel
//! schedules, the bytecode tier and its optimizer) can be pinned against
//! the same corpus.

use crate::builder::FunctionBuilder;
use crate::ir::{AtomicOp, BinOp, CmpOp, FunctionKind, Module, WiBuiltin};
use crate::types::{AddressSpace, Type};

/// Index/access patterns the generator draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// `a[gid] = gid` — disjoint per item.
    Gid,
    /// `a[gid + c] = gid` — shifted but still disjoint.
    GidPlusC,
    /// `a[c*gid] = gid` — strided, disjoint for c >= 1.
    GidTimesC,
    /// `a[lid] = gid` — groups collide on the same prefix.
    Lid,
    /// `a[grp] = gid` — one cell per group (intra-group overwrites are
    /// sequential either way).
    Grp,
    /// `a[c] = gid` — every item of every group hits one cell.
    Const,
    /// `atomic_add(&a[c], 1)` with the result discarded — synchronized
    /// and order-independent.
    AtomicUnused,
    /// `b[gid] = atomic_add(&a[c], 1)` — synchronized but order-dependent.
    AtomicUsed,
    /// `if (gid < n) a[gid] = gid` — guarded single writer.
    Guarded,
    /// `a[b[gid]] = gid` — data-dependent index (statically unknowable;
    /// at runtime all zeros, so multi-group launches genuinely race).
    Indirect,
    /// `a[gid + 1] = b[gid]` — a read/write chain; races only when `a`
    /// and `b` alias.
    Chain,
}

/// Every pattern, in a stable order (proptest strategies index into this).
pub const PATTERNS: [Pattern; 11] = [
    Pattern::Gid,
    Pattern::GidPlusC,
    Pattern::GidTimesC,
    Pattern::Lid,
    Pattern::Grp,
    Pattern::Const,
    Pattern::AtomicUnused,
    Pattern::AtomicUsed,
    Pattern::Guarded,
    Pattern::Indirect,
    Pattern::Chain,
];

/// Build `kernel void k(global int* a, global int* b, int n)` realizing
/// one access pattern. The module is verifier-clean.
///
/// # Panics
///
/// Panics if the generated module fails verification (a generator bug).
pub fn build_kernel(pattern: Pattern, c: i64) -> Module {
    let int_ptr = Type::ptr(AddressSpace::Global, Type::I32);
    let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
    let pa = b.add_param("a", int_ptr.clone());
    let pb = b.add_param("b", int_ptr);
    let pn = b.add_param("n", Type::I32);
    let gid = b.work_item(WiBuiltin::GlobalId, 0);
    let gid32 = b.cast(Type::I32, gid);
    match pattern {
        Pattern::Gid => {
            let p = b.gep(pa, gid);
            b.store(p, gid32);
        }
        Pattern::GidPlusC => {
            let cc = b.const_i64(c);
            let i = b.bin(BinOp::Add, gid, cc);
            let p = b.gep(pa, i);
            b.store(p, gid32);
        }
        Pattern::GidTimesC => {
            let cc = b.const_i64(c.max(1));
            let i = b.bin(BinOp::Mul, gid, cc);
            let p = b.gep(pa, i);
            b.store(p, gid32);
        }
        Pattern::Lid => {
            let lid = b.work_item(WiBuiltin::LocalId, 0);
            let p = b.gep(pa, lid);
            b.store(p, gid32);
        }
        Pattern::Grp => {
            let grp = b.work_item(WiBuiltin::GroupId, 0);
            let p = b.gep(pa, grp);
            b.store(p, gid32);
        }
        Pattern::Const => {
            let cc = b.const_i64(c);
            let p = b.gep(pa, cc);
            b.store(p, gid32);
        }
        Pattern::AtomicUnused => {
            let cc = b.const_i64(c);
            let p = b.gep(pa, cc);
            let one = b.const_i32(1);
            b.atomic_rmw(AtomicOp::Add, p, one);
        }
        Pattern::AtomicUsed => {
            let cc = b.const_i64(c);
            let p = b.gep(pa, cc);
            let one = b.const_i32(1);
            let old = b.atomic_rmw(AtomicOp::Add, p, one);
            let q = b.gep(pb, gid);
            b.store(q, old);
        }
        Pattern::Guarded => {
            let n64 = b.cast(Type::I64, pn);
            let in_range = b.cmp(CmpOp::Lt, gid, n64);
            let then_bb = b.new_block();
            let join = b.new_block();
            b.cond_br(in_range, then_bb, join);
            b.switch_to(then_bb);
            let p = b.gep(pa, gid);
            b.store(p, gid32);
            b.br(join);
            b.switch_to(join);
        }
        Pattern::Indirect => {
            let q = b.gep(pb, gid);
            let idx = b.load(q);
            let idx64 = b.cast(Type::I64, idx);
            let p = b.gep(pa, idx64);
            b.store(p, gid32);
        }
        Pattern::Chain => {
            let q = b.gep(pb, gid);
            let v = b.load(q);
            let one = b.const_i64(1);
            let i = b.bin(BinOp::Add, gid, one);
            let p = b.gep(pa, i);
            b.store(p, v);
        }
    }
    b.ret(None);
    let mut m = Module::new();
    m.insert_function(b.finish());
    crate::verify::verify_module(&m).expect("generated kernel verifies");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pattern_builds_and_verifies() {
        for pattern in PATTERNS {
            for c in 0..4 {
                build_kernel(pattern, c);
            }
        }
    }
}
