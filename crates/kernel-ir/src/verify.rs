//! IR verifier: structural, type and dominance checks.
//!
//! The verifier is the contract between the front end ([`minicl`]), the
//! accelOS JIT transformation, and the interpreter: every module that flows
//! between those stages must verify. Checks performed:
//!
//! * every block is terminated and branch targets exist;
//! * every value use is dominated by its definition (classic iterative
//!   dominator analysis over the CFG);
//! * operand and result types match each operation's typing rule;
//! * calls resolve, argument/return types line up, kernels are not callees;
//! * kernels return `void`; `local` allocas appear only in kernels (the
//!   OpenCL rule that the accelOS local-data-hoisting step relies on);
//! * atomics operate on integer pointees in `global`/`local` space.
//!
//! [`minicl`]: https://docs.rs/minicl

use crate::error::IrError;
use crate::ir::{
    BinOp, BlockId, Function, FunctionKind, Inst, Module, Op, Terminator, UnOp, ValueId,
};
use crate::types::{AddressSpace, Type};
use std::collections::HashMap;

/// Verify a whole module.
///
/// # Errors
///
/// Returns the first [`IrError`] found; the module is unusable until fixed.
///
/// # Examples
///
/// ```
/// use kernel_ir::builder::FunctionBuilder;
/// use kernel_ir::ir::{FunctionKind, Module};
/// use kernel_ir::types::Type;
/// use kernel_ir::verify::verify_module;
///
/// let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
/// b.ret(None);
/// let mut m = Module::new();
/// m.insert_function(b.finish());
/// assert!(verify_module(&m).is_ok());
/// ```
pub fn verify_module(module: &Module) -> Result<(), IrError> {
    let mut names = HashMap::new();
    for f in &module.functions {
        if names.insert(f.name.as_str(), ()).is_some() {
            return Err(IrError::new(format!(
                "duplicate function name `{}`",
                f.name
            )));
        }
    }
    for f in &module.functions {
        verify_function(f, module)?;
    }
    Ok(())
}

/// Verify one function against its containing module.
///
/// # Errors
///
/// Returns the first [`IrError`] found.
pub fn verify_function(func: &Function, module: &Module) -> Result<(), IrError> {
    let err = |msg: String| IrError::in_function(&func.name, msg);

    if func.blocks.is_empty() {
        return Err(err("function has no blocks".into()));
    }
    if func.kind == FunctionKind::Kernel && func.ret != Type::Void {
        return Err(err("kernel must return void".into()));
    }
    for (i, p) in func.params.iter().enumerate() {
        if func.value_types.get(i) != Some(&p.ty) {
            return Err(err(format!(
                "parameter {i} (`{}`) type table mismatch",
                p.name
            )));
        }
    }

    // Structure: terminators present, targets in range.
    for (bid, block) in func.iter_blocks() {
        let term = block
            .term
            .as_ref()
            .ok_or_else(|| err(format!("block {bid} lacks a terminator")))?;
        for s in term.successors() {
            if s.index() >= func.blocks.len() {
                return Err(err(format!("block {bid} branches to unknown block {s}")));
            }
        }
        if let Terminator::Ret(v) = term {
            match (v, &func.ret) {
                (None, Type::Void) => {}
                (None, other) => {
                    return Err(err(format!(
                        "return without value in function returning {other}"
                    )))
                }
                (Some(_), Type::Void) => {
                    return Err(err("return with value in void function".into()))
                }
                (Some(v), want) => {
                    check_value(func, *v)?;
                    let got = func.value_type(*v);
                    if got != want {
                        return Err(err(format!("return type mismatch: got {got}, want {want}")));
                    }
                }
            }
        }
        if let Terminator::CondBr { cond, .. } = term {
            check_value(func, *cond)?;
            if func.value_type(*cond) != &Type::Bool {
                return Err(err(format!("condbr condition {cond} is not bool")));
            }
        }
    }

    // Definitions: each value defined at most once; results in range.
    let mut def_site: Vec<Option<(BlockId, usize)>> = vec![None; func.value_types.len()];
    for (bid, block) in func.iter_blocks() {
        for (pos, inst) in block.insts.iter().enumerate() {
            if let Some(r) = inst.result {
                if r.index() >= func.value_types.len() {
                    return Err(err(format!("result {r} out of range")));
                }
                if r.index() < func.params.len() {
                    return Err(err(format!("instruction redefines parameter {r}")));
                }
                if def_site[r.index()].replace((bid, pos)).is_some() {
                    return Err(err(format!("value {r} defined more than once")));
                }
            }
        }
    }

    let dom = dominators(func);

    // Per-instruction checks: types + dominance of operands.
    for (bid, block) in func.iter_blocks() {
        for (pos, inst) in block.insts.iter().enumerate() {
            check_inst(func, module, inst, bid).map_err(|m| err(format!("{bid}[{pos}]: {m}")))?;
            for v in operands(&inst.op) {
                check_dominates(func, &dom, &def_site, v, bid, pos)
                    .map_err(|m| err(format!("{bid}[{pos}]: {m}")))?;
            }
        }
        if let Some(term) = &block.term {
            let uses: Vec<ValueId> = match term {
                Terminator::CondBr { cond, .. } => vec![*cond],
                Terminator::Ret(Some(v)) => vec![*v],
                _ => vec![],
            };
            let end = block.insts.len();
            for v in uses {
                check_dominates(func, &dom, &def_site, v, bid, end)
                    .map_err(|m| err(format!("{bid}[term]: {m}")))?;
            }
        }
    }
    Ok(())
}

fn check_value(func: &Function, v: ValueId) -> Result<(), IrError> {
    if v.index() >= func.value_types.len() {
        return Err(IrError::in_function(
            &func.name,
            format!("value {v} out of range"),
        ));
    }
    Ok(())
}

/// All value operands of an op.
pub(crate) fn operands(op: &Op) -> Vec<ValueId> {
    match op {
        Op::Const(_) | Op::Alloca { .. } | Op::WorkItem { .. } | Op::Barrier => vec![],
        Op::Bin(_, a, b) | Op::Cmp(_, a, b) => vec![*a, *b],
        Op::Un(_, a) | Op::Load(a) | Op::Cast(_, a) => vec![*a],
        Op::Select(c, a, b) => vec![*c, *a, *b],
        Op::Store { ptr, value } => vec![*ptr, *value],
        Op::Gep { ptr, index } => vec![*ptr, *index],
        Op::Call { args, .. } => args.clone(),
        Op::AtomicRmw { ptr, value, .. } => vec![*ptr, *value],
        Op::AtomicCmpXchg {
            ptr,
            expected,
            desired,
        } => vec![*ptr, *expected, *desired],
    }
}

fn check_inst(func: &Function, module: &Module, inst: &Inst, _bid: BlockId) -> Result<(), String> {
    for v in operands(&inst.op) {
        if v.index() >= func.value_types.len() {
            return Err(format!("operand {v} out of range"));
        }
    }
    let rty = |r: Option<ValueId>| r.map(|v| func.value_type(v).clone());
    match &inst.op {
        Op::Const(c) => {
            if rty(inst.result) != Some(c.ty()) {
                return Err(format!("const result type mismatch for {c}"));
            }
        }
        Op::Bin(op, a, b) => {
            let ta = func.value_type(*a);
            let tb = func.value_type(*b);
            if ta != tb {
                return Err(format!(
                    "binop `{}` operand types differ: {ta} vs {tb}",
                    op.mnemonic()
                ));
            }
            if !ta.is_numeric() {
                return Err(format!(
                    "binop `{}` on non-numeric type {ta}",
                    op.mnemonic()
                ));
            }
            if op.int_only() && !ta.is_int() {
                return Err(format!("integer-only op `{}` on {ta}", op.mnemonic()));
            }
            if matches!(op, BinOp::Rem) && ta.is_float() {
                return Err("rem on float operands".into());
            }
            if rty(inst.result).as_ref() != Some(ta) {
                return Err("binop result type mismatch".into());
            }
        }
        Op::Un(op, a) => {
            let ta = func.value_type(*a);
            match op {
                UnOp::Not => {
                    if ta != &Type::Bool {
                        return Err("not on non-bool".into());
                    }
                }
                UnOp::Neg | UnOp::Abs => {
                    if !ta.is_numeric() {
                        return Err(format!("{} on non-numeric {ta}", op.mnemonic()));
                    }
                }
                _ => {
                    if !ta.is_float() {
                        return Err(format!("float-only op `{}` on {ta}", op.mnemonic()));
                    }
                }
            }
            if rty(inst.result).as_ref() != Some(ta) {
                return Err("unop result type mismatch".into());
            }
        }
        Op::Cmp(_, a, b) => {
            let ta = func.value_type(*a);
            let tb = func.value_type(*b);
            if ta != tb {
                return Err(format!("cmp operand types differ: {ta} vs {tb}"));
            }
            if !(ta.is_numeric() || ta.is_ptr() || ta == &Type::Bool) {
                return Err(format!("cmp on {ta}"));
            }
            if rty(inst.result) != Some(Type::Bool) {
                return Err("cmp result must be bool".into());
            }
        }
        Op::Select(c, a, b) => {
            if func.value_type(*c) != &Type::Bool {
                return Err("select condition must be bool".into());
            }
            let ta = func.value_type(*a);
            if ta != func.value_type(*b) {
                return Err("select arm types differ".into());
            }
            if rty(inst.result).as_ref() != Some(ta) {
                return Err("select result type mismatch".into());
            }
        }
        Op::Cast(ty, v) => {
            let tv = func.value_type(*v);
            let ok = (tv.is_numeric() || tv == &Type::Bool) && (ty.is_numeric())
                || (tv.is_ptr() && ty.is_ptr());
            if !ok {
                return Err(format!("invalid cast {tv} -> {ty}"));
            }
            if rty(inst.result).as_ref() != Some(ty) {
                return Err("cast result type mismatch".into());
            }
        }
        Op::Alloca { elem, count, space } => {
            if *count == 0 {
                return Err("alloca of zero elements".into());
            }
            match space {
                AddressSpace::Private => {}
                AddressSpace::Local => {
                    if func.kind != FunctionKind::Kernel {
                        return Err(
                            "local alloca outside a kernel (OpenCL: local data must be declared \
                             in kernel scope)"
                                .into(),
                        );
                    }
                }
                other => return Err(format!("alloca in address space {other}")),
            }
            if rty(inst.result) != Some(Type::ptr(*space, elem.clone())) {
                return Err("alloca result type mismatch".into());
            }
        }
        Op::Load(p) => {
            let tp = func.value_type(*p);
            let elem = tp
                .pointee()
                .ok_or_else(|| format!("load through non-pointer {tp}"))?;
            if rty(inst.result).as_ref() != Some(elem) {
                return Err("load result type mismatch".into());
            }
        }
        Op::Store { ptr, value } => {
            let tp = func.value_type(*ptr);
            let elem = tp
                .pointee()
                .ok_or_else(|| format!("store through non-pointer {tp}"))?;
            if tp.space() == Some(AddressSpace::Constant) {
                return Err("store to constant memory".into());
            }
            if func.value_type(*value) != elem {
                return Err(format!(
                    "store type mismatch: {} into {tp}",
                    func.value_type(*value)
                ));
            }
        }
        Op::Gep { ptr, index } => {
            let tp = func.value_type(*ptr);
            if !tp.is_ptr() {
                return Err(format!("gep base is not a pointer: {tp}"));
            }
            if !func.value_type(*index).is_int() {
                return Err("gep index must be an integer".into());
            }
            if rty(inst.result).as_ref() != Some(tp) {
                return Err("gep result type mismatch".into());
            }
        }
        Op::Call { callee, args } => {
            let target = module
                .function(callee)
                .ok_or_else(|| format!("call of unknown function `{callee}`"))?;
            if target.kind == FunctionKind::Kernel {
                return Err(format!(
                    "call of kernel `{callee}` (kernels are entry points)"
                ));
            }
            if target.params.len() != args.len() {
                return Err(format!(
                    "call of `{callee}` with {} args, expected {}",
                    args.len(),
                    target.params.len()
                ));
            }
            for (i, (a, p)) in args.iter().zip(&target.params).enumerate() {
                if func.value_type(*a) != &p.ty {
                    return Err(format!(
                        "call of `{callee}`: argument {i} is {}, expected {}",
                        func.value_type(*a),
                        p.ty
                    ));
                }
            }
            match (&target.ret, inst.result) {
                (Type::Void, None) => {}
                (Type::Void, Some(_)) => return Err(format!("void call of `{callee}` has result")),
                (t, Some(r)) => {
                    if func.value_type(r) != t {
                        return Err(format!("call result type mismatch for `{callee}`"));
                    }
                }
                (_, None) => {} // discarding a result is allowed
            }
        }
        Op::WorkItem { dim, .. } => {
            if *dim > 2 {
                return Err(format!("work-item builtin dimension {dim} out of range"));
            }
            if rty(inst.result) != Some(Type::I64) {
                return Err("work-item builtin must produce i64".into());
            }
        }
        Op::AtomicRmw { ptr, value, .. }
        | Op::AtomicCmpXchg {
            ptr,
            desired: value,
            ..
        } => {
            let tp = func.value_type(*ptr);
            let elem = tp
                .pointee()
                .ok_or_else(|| format!("atomic through non-pointer {tp}"))?;
            if !elem.is_int() {
                return Err(format!("atomic on non-integer pointee {elem}"));
            }
            match tp.space() {
                Some(AddressSpace::Global) | Some(AddressSpace::Local) => {}
                other => return Err(format!("atomic in address space {other:?}")),
            }
            if func.value_type(*value) != elem {
                return Err("atomic operand type mismatch".into());
            }
            if rty(inst.result).as_ref() != Some(elem) {
                return Err("atomic result type mismatch".into());
            }
        }
        Op::Barrier => {
            if inst.result.is_some() {
                return Err("barrier produces no value".into());
            }
        }
    }
    Ok(())
}

/// Compute the dominator sets of each block (iterative bitset algorithm).
///
/// Returned as, for each block, the sorted list of blocks that dominate it
/// (always including itself). Unreachable blocks are dominated by everything
/// (the conventional initialisation), which keeps uses in dead code legal.
pub fn dominators(func: &Function) -> Vec<Vec<BlockId>> {
    let n = func.blocks.len();
    let full: u128 = if n >= 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    assert!(n <= 128, "function with more than 128 blocks");
    let mut dom = vec![full; n];
    dom[0] = 1; // entry dominated only by itself
    let preds = predecessors(func);
    let mut changed = true;
    while changed {
        changed = false;
        for b in 1..n {
            let mut new = full;
            for p in &preds[b] {
                new &= dom[p.index()];
            }
            new |= 1u128 << b;
            if new != dom[b] {
                dom[b] = new;
                changed = true;
            }
        }
    }
    dom.iter()
        .map(|bits| {
            (0..n)
                .filter(|i| bits & (1u128 << i) != 0)
                .map(|i| BlockId(i as u32))
                .collect()
        })
        .collect()
}

/// Predecessor lists of every block.
pub fn predecessors(func: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); func.blocks.len()];
    for (bid, block) in func.iter_blocks() {
        if let Some(t) = &block.term {
            for s in t.successors() {
                preds[s.index()].push(bid);
            }
        }
    }
    preds
}

fn check_dominates(
    func: &Function,
    dom: &[Vec<BlockId>],
    def_site: &[Option<(BlockId, usize)>],
    v: ValueId,
    use_bb: BlockId,
    use_pos: usize,
) -> Result<(), String> {
    if v.index() >= func.value_types.len() {
        return Err(format!("operand {v} out of range"));
    }
    if v.index() < func.params.len() {
        return Ok(()); // parameters dominate everything
    }
    let (def_bb, def_pos) =
        def_site[v.index()].ok_or_else(|| format!("use of never-defined value {v}"))?;
    if def_bb == use_bb {
        if def_pos >= use_pos {
            return Err(format!("use of {v} before its definition in {use_bb}"));
        }
        return Ok(());
    }
    if dom[use_bb.index()].contains(&def_bb) {
        Ok(())
    } else {
        Err(format!(
            "definition of {v} in {def_bb} does not dominate use in {use_bb}"
        ))
    }
}

/// Successor lists of every block (dual of [`predecessors`]).
pub fn successors(func: &Function) -> Vec<Vec<BlockId>> {
    func.blocks
        .iter()
        .map(|b| b.term.as_ref().map(|t| t.successors()).unwrap_or_default())
        .collect()
}

#[allow(unused_imports)]
pub(crate) use self::operands as op_operands;

/// Convenience: verify then pretty-print an error on failure (test helper).
#[doc(hidden)]
pub fn assert_verifies(module: &Module) {
    if let Err(e) = verify_module(module) {
        panic!(
            "module failed verification: {e}\n{}",
            crate::display::print_module(module)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ir::{BinOp, CmpOp, ConstVal, FunctionKind, WiBuiltin};
    use crate::types::{AddressSpace, Type};

    fn module_of(funcs: Vec<Function>) -> Module {
        let mut m = Module::new();
        for f in funcs {
            m.insert_function(f);
        }
        m
    }

    #[test]
    fn accepts_wellformed_kernel() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::I32));
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let gid32 = b.cast(Type::I32, gid);
        let p = b.gep(out, gid);
        b.store(p, gid32);
        b.ret(None);
        assert_verifies(&module_of(vec![b.finish()]));
    }

    #[test]
    fn rejects_kernel_returning_value() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::I32);
        let c = b.const_i32(0);
        b.ret(Some(c));
        let m = module_of(vec![b.finish()]);
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("kernel must return void"), "{e}");
    }

    #[test]
    fn rejects_type_mismatch_in_binop() {
        let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
        let a = b.const_i32(1);
        let c = b.const_f32(1.0);
        // builder trusts us; verifier must catch it
        let _ = b.bin(BinOp::Add, a, c);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("operand types differ"), "{e}");
    }

    #[test]
    fn rejects_local_alloca_in_helper() {
        let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
        let _ = b.alloca(Type::F32, 8, AddressSpace::Local);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let e = verify_module(&m).unwrap_err();
        assert!(
            e.to_string().contains("local alloca outside a kernel"),
            "{e}"
        );
    }

    #[test]
    fn accepts_local_alloca_in_kernel() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let _ = b.alloca(Type::F32, 8, AddressSpace::Local);
        b.ret(None);
        assert_verifies(&module_of(vec![b.finish()]));
    }

    #[test]
    fn rejects_call_of_kernel() {
        let mut callee = FunctionBuilder::new("k2", FunctionKind::Kernel, Type::Void);
        callee.ret(None);
        let mut b = FunctionBuilder::new("k1", FunctionKind::Kernel, Type::Void);
        b.call("k2", vec![], Type::Void);
        b.ret(None);
        let m = module_of(vec![callee.finish(), b.finish()]);
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("call of kernel"), "{e}");
    }

    #[test]
    fn rejects_unknown_callee_and_bad_arity() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        b.call("nope", vec![], Type::Void);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        assert!(verify_module(&m)
            .unwrap_err()
            .to_string()
            .contains("unknown function"));

        let mut h = FunctionBuilder::new("h", FunctionKind::Helper, Type::Void);
        let _ = h.add_param("x", Type::I32);
        h.ret(None);
        let mut b2 = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        b2.call("h", vec![], Type::Void);
        b2.ret(None);
        let m2 = module_of(vec![h.finish(), b2.finish()]);
        assert!(verify_module(&m2)
            .unwrap_err()
            .to_string()
            .contains("0 args, expected 1"));
    }

    #[test]
    fn rejects_use_not_dominating() {
        // bb0: condbr -> bb1 / bb2 ; value defined in bb1, used in bb2.
        let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
        let c = b.const_bool(true);
        let bb1 = b.new_block();
        let bb2 = b.new_block();
        b.cond_br(c, bb1, bb2);
        b.switch_to(bb1);
        let v = b.const_i32(7);
        b.ret(None);
        b.switch_to(bb2);
        let w = b.bin(BinOp::Add, v, v); // illegal use
        let _ = w;
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("does not dominate"), "{e}");
    }

    #[test]
    fn rejects_duplicate_function_names() {
        let mut a = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
        a.ret(None);
        let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
        b.ret(None);
        let m = Module {
            functions: vec![a.finish(), b.finish()],
        };
        assert!(verify_module(&m)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn rejects_atomic_on_float() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let p = b.add_param("p", Type::ptr(AddressSpace::Global, Type::F32));
        let c = b.const_f32(1.0);
        // hand-roll the bad atomic: builder would compute the f32 result type
        let _ = b.atomic_rmw(crate::ir::AtomicOp::Add, p, c);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let e = verify_module(&m).unwrap_err();
        assert!(e.to_string().contains("non-integer pointee"), "{e}");
    }

    #[test]
    fn rejects_condbr_on_non_bool() {
        let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
        let c = b.const_i32(1);
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        assert!(verify_module(&m)
            .unwrap_err()
            .to_string()
            .contains("not bool"));
    }

    #[test]
    fn dominators_of_diamond() {
        let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
        let c = b.const_bool(true);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        let dom = dominators(&f);
        assert_eq!(dom[0], vec![BlockId(0)]);
        assert!(dom[3].contains(&BlockId(0)));
        assert!(!dom[3].contains(&BlockId(1)));
        assert!(!dom[3].contains(&BlockId(2)));
        let preds = predecessors(&f);
        assert_eq!(preds[3].len(), 2);
        let succs = successors(&f);
        assert_eq!(succs[0].len(), 2);
        assert!(succs[3].is_empty());
    }

    #[test]
    fn rejects_cmp_result_non_bool() {
        // Build manually to bypass builder typing.
        let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
        let x = b.const_i32(1);
        let y = b.const_i32(2);
        let _good = b.cmp(CmpOp::Lt, x, y);
        b.ret(None);
        let mut f = b.finish();
        // Corrupt: flip the result type of the cmp.
        let cmp_result = f.blocks[0].insts[2].result.unwrap();
        f.value_types[cmp_result.index()] = Type::I32;
        let m = module_of(vec![f]);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_store_to_constant_space() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let p = b.add_param("p", Type::ptr(AddressSpace::Constant, Type::I32));
        let v = b.const_i32(1);
        b.store(p, v);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        assert!(verify_module(&m)
            .unwrap_err()
            .to_string()
            .contains("constant"));
    }

    #[test]
    fn const_val_check() {
        let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
        let _ = b.constant(ConstVal::I64(1));
        b.ret(None);
        assert_verifies(&module_of(vec![b.finish()]));
    }
}
