//! Static analyses used by the accelOS resource-sharing algorithm (paper §3)
//! and adaptive scheduling (paper §6.4).
//!
//! * [`register_pressure`] — per-work-item register demand, estimated as the
//!   maximum number of simultaneously live virtual registers (backward
//!   liveness dataflow), plus the function parameters. This is the `r_i` in
//!   the paper's `Σ z_i·r_i ≤ R` constraint.
//! * [`local_mem_usage`] — bytes of `local` memory allocated statically by a
//!   kernel; the `m_i` in `Σ y_i·m_i ≤ L`.
//! * [`static_insn_count`] — the "kernel instructions in LLVM IR" measure
//!   driving adaptive chunk selection.
//! * [`callgraph`] / [`reachable_helpers`] — call-graph utilities used by the
//!   JIT when cloning kernels and their callees.

use crate::ir::{Function, Module, Op, Terminator, ValueId};
use crate::types::AddressSpace;
use crate::verify::{operands, successors};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Per-block liveness sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    /// Values live at entry of each block.
    pub live_in: Vec<BTreeSet<ValueId>>,
    /// Values live at exit of each block.
    pub live_out: Vec<BTreeSet<ValueId>>,
}

/// Compute classic backward liveness over the CFG.
///
/// Parameters are treated like any other value: live from entry to their last
/// use.
pub fn liveness(func: &Function) -> Liveness {
    let n = func.blocks.len();
    let succs = successors(func);

    // use/def per block
    let mut use_set = vec![BTreeSet::new(); n];
    let mut def_set = vec![BTreeSet::new(); n];
    for (b, block) in func.blocks.iter().enumerate() {
        for inst in &block.insts {
            for v in operands(&inst.op) {
                if !def_set[b].contains(&v) {
                    use_set[b].insert(v);
                }
            }
            if let Some(r) = inst.result {
                def_set[b].insert(r);
            }
        }
        if let Some(t) = &block.term {
            let uses: Vec<ValueId> = match t {
                Terminator::CondBr { cond, .. } => vec![*cond],
                Terminator::Ret(Some(v)) => vec![*v],
                _ => vec![],
            };
            for v in uses {
                if !def_set[b].contains(&v) {
                    use_set[b].insert(v);
                }
            }
        }
    }

    let mut live_in = vec![BTreeSet::new(); n];
    let mut live_out = vec![BTreeSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut out = BTreeSet::new();
            for s in &succs[b] {
                out.extend(live_in[s.index()].iter().copied());
            }
            let mut inn: BTreeSet<ValueId> = use_set[b].clone();
            inn.extend(out.difference(&def_set[b]).copied());
            if inn != live_in[b] || out != live_out[b] {
                live_in[b] = inn;
                live_out[b] = out;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// Maximum number of simultaneously live values anywhere in the function.
///
/// This approximates the per-work-item register demand the way a vendor
/// compiler's linear-scan allocator would see it (before spilling). The
/// result is at least 1 for any non-empty function.
pub fn register_pressure(func: &Function) -> usize {
    let lv = liveness(func);
    let mut max = 0usize;
    for (b, block) in func.blocks.iter().enumerate() {
        // Walk backward through the block maintaining the live set.
        let mut live = lv.live_out[b].clone();
        max = max.max(live.len());
        if let Some(t) = &block.term {
            let uses: Vec<ValueId> = match t {
                Terminator::CondBr { cond, .. } => vec![*cond],
                Terminator::Ret(Some(v)) => vec![*v],
                _ => vec![],
            };
            for v in uses {
                live.insert(v);
            }
            max = max.max(live.len());
        }
        for inst in block.insts.iter().rev() {
            if let Some(r) = inst.result {
                live.remove(&r);
            }
            for v in operands(&inst.op) {
                live.insert(v);
            }
            max = max.max(live.len());
        }
    }
    max.max(1)
}

/// Bytes of statically declared `local` memory (local allocas).
///
/// Dynamic local memory passed as kernel arguments is accounted separately by
/// the launch layer, mirroring how OpenCL splits static vs `clSetKernelArg`
/// local allocations.
pub fn local_mem_usage(func: &Function) -> usize {
    let mut bytes = 0usize;
    for block in &func.blocks {
        for inst in &block.insts {
            if let Op::Alloca {
                elem,
                count,
                space: AddressSpace::Local,
            } = &inst.op
            {
                bytes += elem.byte_size() * (*count as usize);
            }
        }
    }
    bytes
}

/// Static (non-terminator) instruction count — the §6.4 adaptive-scheduling
/// input. Includes instructions of helper functions reachable from `func`
/// through calls, matching the paper's post-inlining view of kernel size.
pub fn static_insn_count(func: &Function, module: &Module) -> usize {
    let mut total = func.insn_count();
    for callee in reachable_helpers(func, module) {
        if let Some(f) = module.function(&callee) {
            total += f.insn_count();
        }
    }
    total
}

/// Direct callees of a function, in first-use order without duplicates.
pub fn callees(func: &Function) -> Vec<String> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for block in &func.blocks {
        for inst in &block.insts {
            if let Op::Call { callee, .. } = &inst.op {
                if seen.insert(callee.clone()) {
                    out.push(callee.clone());
                }
            }
        }
    }
    out
}

/// The call graph of a module: function name → direct callees.
pub fn callgraph(module: &Module) -> BTreeMap<String, Vec<String>> {
    module
        .functions
        .iter()
        .map(|f| (f.name.clone(), callees(f)))
        .collect()
}

/// All helper functions transitively reachable from `func` via calls,
/// in BFS order (excluding `func` itself).
pub fn reachable_helpers(func: &Function, module: &Module) -> Vec<String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut order = Vec::new();
    let mut queue: Vec<String> = callees(func);
    while let Some(name) = queue.pop() {
        if !seen.insert(name.clone()) {
            continue;
        }
        order.push(name.clone());
        if let Some(f) = module.function(&name) {
            queue.extend(callees(f));
        }
    }
    order
}

/// Whether the function (or any reachable callee) contains a barrier.
pub fn uses_barrier(func: &Function, module: &Module) -> bool {
    let has = |f: &Function| {
        f.blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| matches!(i.op, Op::Barrier)))
    };
    if has(func) {
        return true;
    }
    reachable_helpers(func, module)
        .iter()
        .filter_map(|n| module.function(n))
        .any(has)
}

/// Whether the function (or any reachable callee) performs atomics on
/// *global* (or constant) memory.
///
/// This is the gate for cross-work-group parallel interpretation
/// ([`crate::interp::Interpreter::run_kernel_parallel`]): work groups never
/// share `local` or `private` arenas, so local-space atomics are safe under
/// group-level parallelism, while global-memory atomics introduce
/// cross-group ordering the sequential interpreter resolves by running
/// groups in flat order.
pub fn uses_global_atomics(func: &Function, module: &Module) -> bool {
    let has = |f: &Function| {
        f.blocks.iter().any(|b| {
            b.insts.iter().any(|i| {
                let ptr = match &i.op {
                    Op::AtomicRmw { ptr, .. } | Op::AtomicCmpXchg { ptr, .. } => *ptr,
                    _ => return false,
                };
                matches!(
                    f.value_type(ptr),
                    crate::types::Type::Ptr {
                        space: AddressSpace::Global | AddressSpace::Constant,
                        ..
                    }
                )
            })
        })
    };
    if has(func) {
        return true;
    }
    reachable_helpers(func, module)
        .iter()
        .filter_map(|n| module.function(n))
        .any(has)
}

/// Whether the function (or any reachable callee) performs atomics.
pub fn uses_atomics(func: &Function, module: &Module) -> bool {
    let has = |f: &Function| {
        f.blocks.iter().any(|b| {
            b.insts
                .iter()
                .any(|i| matches!(i.op, Op::AtomicRmw { .. } | Op::AtomicCmpXchg { .. }))
        })
    };
    if has(func) {
        return true;
    }
    reachable_helpers(func, module)
        .iter()
        .filter_map(|n| module.function(n))
        .any(has)
}

/// Cached per-function structural facts (see [`ModuleFacts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionFacts {
    /// [`uses_barrier`] for this function.
    pub uses_barrier: bool,
    /// [`uses_global_atomics`] for this function.
    pub uses_global_atomics: bool,
    /// [`uses_atomics`] for this function.
    pub uses_atomics: bool,
}

/// One-shot analysis cache for a whole module.
///
/// The interpreter gate, the `clrt` queue, `ProxyCl`, and the `accelcheck`
/// lint driver all consult the same facts; computing them once per compiled
/// module (instead of per launch) keeps repeated launches off the analysis
/// hot path. The cache is immutable and `Send + Sync`, so it can be shared
/// across the scoped worker threads of the parallel interpreter.
#[derive(Debug, Clone, Default)]
pub struct ModuleFacts {
    functions: BTreeMap<String, FunctionFacts>,
    races: BTreeMap<String, crate::races::KernelRaceReport>,
}

impl ModuleFacts {
    /// Analyze every function (structural facts) and every kernel (race &
    /// divergence report) of `module`.
    pub fn compute(module: &Module) -> Self {
        let mut functions = BTreeMap::new();
        for func in &module.functions {
            functions.insert(
                func.name.clone(),
                FunctionFacts {
                    uses_barrier: uses_barrier(func, module),
                    uses_global_atomics: uses_global_atomics(func, module),
                    uses_atomics: uses_atomics(func, module),
                },
            );
        }
        let mut races = BTreeMap::new();
        for report in crate::races::analyze_module(module) {
            races.insert(report.kernel.clone(), report);
        }
        ModuleFacts { functions, races }
    }

    /// Structural facts for `name`, if the function exists.
    pub fn function(&self, name: &str) -> Option<&FunctionFacts> {
        self.functions.get(name)
    }

    /// Cached [`uses_barrier`]; `false` for unknown functions.
    pub fn uses_barrier(&self, name: &str) -> bool {
        self.functions.get(name).is_some_and(|f| f.uses_barrier)
    }

    /// Cached [`uses_global_atomics`]; `false` for unknown functions.
    pub fn uses_global_atomics(&self, name: &str) -> bool {
        self.functions
            .get(name)
            .is_some_and(|f| f.uses_global_atomics)
    }

    /// Cached [`uses_atomics`]; `false` for unknown functions.
    pub fn uses_atomics(&self, name: &str) -> bool {
        self.functions.get(name).is_some_and(|f| f.uses_atomics)
    }

    /// Cached race report for kernel `name`.
    pub fn race_report(&self, name: &str) -> Option<&crate::races::KernelRaceReport> {
        self.races.get(name)
    }

    /// All cached race reports, keyed by kernel name.
    pub fn race_reports(&self) -> &BTreeMap<String, crate::races::KernelRaceReport> {
        &self.races
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ir::{BinOp, FunctionKind, WiBuiltin};
    use crate::types::{AddressSpace, Type};

    fn simple_kernel() -> (Function, Module) {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::F32));
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let p = b.gep(out, gid);
        let v = b.load(p);
        let s = b.bin(BinOp::Add, v, v);
        b.store(p, s);
        b.ret(None);
        let f = b.finish();
        let mut m = Module::new();
        m.insert_function(f.clone());
        (f, m)
    }

    #[test]
    fn liveness_straightline() {
        let (f, _) = simple_kernel();
        let lv = liveness(&f);
        // Single block: nothing live in (param is used, hence live-in).
        assert!(lv.live_in[0].contains(&ValueId(0)));
        assert!(lv.live_out[0].is_empty());
    }

    #[test]
    fn pressure_is_reasonable() {
        let (f, _) = simple_kernel();
        let p = register_pressure(&f);
        assert!((2..=6).contains(&p), "pressure {p}");
    }

    #[test]
    fn pressure_grows_with_live_values() {
        // Chain of adds where every intermediate is kept alive until the end.
        let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::I32);
        let x = b.add_param("x", Type::I32);
        let vals: Vec<_> = (0..8)
            .map(|i| {
                let c = b.const_i32(i);
                b.bin(BinOp::Mul, x, c)
            })
            .collect();
        let mut acc = vals[0];
        for v in &vals[1..] {
            acc = b.bin(BinOp::Add, acc, *v);
        }
        b.ret(Some(acc));
        let f = b.finish();
        assert!(register_pressure(&f) >= 8, "got {}", register_pressure(&f));
    }

    #[test]
    fn local_mem_counts_only_local() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let _l = b.alloca(Type::F32, 64, AddressSpace::Local); // 256 bytes
        let _p = b.alloca(Type::I64, 4, AddressSpace::Private); // not counted
        let _l2 = b.alloca(Type::I32, 16, AddressSpace::Local); // 64 bytes
        b.ret(None);
        assert_eq!(local_mem_usage(&b.finish()), 256 + 64);
    }

    #[test]
    fn insn_count_includes_callees() {
        let mut h = FunctionBuilder::new("h", FunctionKind::Helper, Type::I32);
        let x = h.add_param("x", Type::I32);
        let y = h.bin(BinOp::Add, x, x);
        h.ret(Some(y));
        let h = h.finish(); // 1 inst

        let mut k = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let c = k.const_i32(1);
        let _ = k.call("h", vec![c], Type::I32);
        k.ret(None);
        let k = k.finish(); // 2 insts

        let mut m = Module::new();
        m.insert_function(h);
        m.insert_function(k.clone());
        assert_eq!(static_insn_count(&k, &m), 3);
    }

    #[test]
    fn callgraph_and_reachability() {
        let mut a = FunctionBuilder::new("a", FunctionKind::Helper, Type::Void);
        a.call("b", vec![], Type::Void);
        a.ret(None);
        let mut b = FunctionBuilder::new("b", FunctionKind::Helper, Type::Void);
        b.call("c", vec![], Type::Void);
        b.ret(None);
        let mut c = FunctionBuilder::new("c", FunctionKind::Helper, Type::Void);
        c.ret(None);
        let mut k = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        k.call("a", vec![], Type::Void);
        k.ret(None);
        let mut m = Module::new();
        for f in [a.finish(), b.finish(), c.finish(), k.finish()] {
            m.insert_function(f);
        }
        let cg = callgraph(&m);
        assert_eq!(cg["k"], vec!["a"]);
        let reach = reachable_helpers(m.function("k").unwrap(), &m);
        assert_eq!(reach.len(), 3);
        assert!(reach.contains(&"c".to_string()));
    }

    #[test]
    fn barrier_and_atomic_detection() {
        let mut h = FunctionBuilder::new("h", FunctionKind::Helper, Type::Void);
        h.barrier();
        h.ret(None);
        let mut k = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        k.call("h", vec![], Type::Void);
        k.ret(None);
        let mut m = Module::new();
        m.insert_function(h.finish());
        m.insert_function(k.finish());
        let kf = m.function("k").unwrap();
        assert!(uses_barrier(kf, &m));
        assert!(!uses_atomics(kf, &m));
    }

    #[test]
    fn module_facts_match_uncached_analyses() {
        let (_, m) = simple_kernel();
        let facts = ModuleFacts::compute(&m);
        for func in &m.functions {
            let ff = facts.function(&func.name).expect("facts for every fn");
            assert_eq!(ff.uses_barrier, uses_barrier(func, &m));
            assert_eq!(ff.uses_global_atomics, uses_global_atomics(func, &m));
            assert_eq!(ff.uses_atomics, uses_atomics(func, &m));
            assert_eq!(facts.uses_barrier(&func.name), ff.uses_barrier);
        }
        for name in m.kernel_names() {
            let cached = facts.race_report(name).expect("report for every kernel");
            let fresh = crate::races::analyze_kernel(&m, name).unwrap();
            assert_eq!(cached.verdict, fresh.verdict);
            assert_eq!(cached.sites.len(), fresh.sites.len());
        }
        assert!(facts.function("missing").is_none());
        assert!(!facts.uses_global_atomics("missing"));
        // The cache must be shareable across scoped worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModuleFacts>();
    }
}
