//! Functional interpreter for kernels over an NDRange.
//!
//! This is the reproduction's stand-in for actually running kernels on a GPU:
//! it executes IR work-item by work-item with correct work-group semantics —
//! shared `local` memory, barrier synchronisation (round-robin execution of
//! work items between barriers), and sequentially-consistent atomics. It is
//! used to check that the accelOS JIT transformation preserves kernel
//! semantics (differential testing of original vs transformed modules) and to
//! collect dynamic instruction counts that calibrate the timing simulator.
//!
//! Work groups execute one after another; work items of a group are
//! interleaved only at barriers. That is a legal OpenCL schedule, so any
//! kernel that is correct under OpenCL's execution model produces its
//! intended result here (and kernels relying on cross-group scheduling order
//! are detectably wrong).

use crate::error::InterpError;
use crate::ir::{
    AtomicOp, BinOp, BlockId, CmpOp, ConstVal, Function, FunctionKind, Module, Op, Terminator,
    UnOp, ValueId, WiBuiltin,
};
use crate::types::{AddressSpace, Type};

/// Identifier of a device global-memory buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u32);

/// One simulated device buffer, backed by `u64` words so that any naturally
/// aligned 4- or 8-byte element can be accessed through `AtomicU32` /
/// `AtomicU64` views during parallel execution (the base address of a
/// `Vec<u64>` is 8-aligned). The logical length is in bytes; the word
/// backing is an implementation detail invisible through [`Self::bytes`].
#[derive(Debug, Clone, Default)]
struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn zeroed(len: usize) -> Self {
        AlignedBuf {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: `words` owns at least `len` initialised bytes.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    fn bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: `words` owns at least `len` initialised bytes; `&mut self`
        // guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut u8, self.len) }
    }
}

impl PartialEq for AlignedBuf {
    fn eq(&self, other: &Self) -> bool {
        self.bytes() == other.bytes()
    }
}

impl Eq for AlignedBuf {}

/// Simulated device global memory: a set of byte buffers.
///
/// `PartialEq` compares full buffer contents — what the differential tests
/// between the sequential and parallel interpreters assert on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceMemory {
    buffers: Vec<AlignedBuf>,
}

impl DeviceMemory {
    /// Empty memory.
    pub fn new() -> Self {
        DeviceMemory::default()
    }

    /// Allocate a zero-initialised buffer of `bytes` bytes.
    pub fn alloc(&mut self, bytes: usize) -> BufferId {
        self.buffers.push(AlignedBuf::zeroed(bytes));
        BufferId(self.buffers.len() as u32 - 1)
    }

    /// Total bytes currently allocated.
    pub fn total_bytes(&self) -> usize {
        self.buffers.iter().map(AlignedBuf::len).sum()
    }

    /// Raw bytes of a buffer.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this memory's [`alloc`](Self::alloc).
    pub fn bytes(&self, id: BufferId) -> &[u8] {
        self.buffers[id.0 as usize].bytes()
    }

    /// Mutable raw bytes of a buffer.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this memory's [`alloc`](Self::alloc).
    pub fn bytes_mut(&mut self, id: BufferId) -> &mut [u8] {
        self.buffers[id.0 as usize].bytes_mut()
    }

    /// Write a slice of `f32` starting at element 0 (host → device copy).
    pub fn write_f32(&mut self, id: BufferId, data: &[f32]) {
        let dst = self.bytes_mut(id);
        for (i, v) in data.iter().enumerate() {
            dst[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read the buffer as `f32` elements (device → host copy).
    pub fn read_f32(&self, id: BufferId) -> Vec<f32> {
        self.bytes(id)
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Write a slice of `i32` starting at element 0.
    pub fn write_i32(&mut self, id: BufferId, data: &[i32]) {
        let dst = self.bytes_mut(id);
        for (i, v) in data.iter().enumerate() {
            dst[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read the buffer as `i32` elements.
    pub fn read_i32(&self, id: BufferId) -> Vec<i32> {
        self.bytes(id)
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Write a slice of `i64` starting at element 0.
    pub fn write_i64(&mut self, id: BufferId, data: &[i64]) {
        let dst = self.bytes_mut(id);
        for (i, v) in data.iter().enumerate() {
            dst[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Read the buffer as `i64` elements.
    pub fn read_i64(&self, id: BufferId) -> Vec<i64> {
        self.bytes(id)
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }
}

/// Which arena a pointer refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arena {
    /// A global-memory buffer.
    Global(BufferId),
    /// The current work group's local memory.
    Local,
    /// The current work item's private memory.
    Private,
}

/// A runtime pointer value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtrVal {
    /// Target arena.
    pub arena: Arena,
    /// Byte offset within the arena (may go negative mid-arithmetic; bounds
    /// are enforced at access time).
    pub byte_off: i64,
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
    /// Pointer.
    Ptr(PtrVal),
}

impl Value {
    pub(crate) fn as_bool(self) -> Result<bool, InterpError> {
        match self {
            Value::Bool(b) => Ok(b),
            other => Err(InterpError::Invalid(format!(
                "expected bool, got {other:?}"
            ))),
        }
    }

    pub(crate) fn as_i64(self) -> Result<i64, InterpError> {
        match self {
            Value::I32(v) => Ok(v as i64),
            Value::I64(v) => Ok(v),
            other => Err(InterpError::Invalid(format!(
                "expected integer, got {other:?}"
            ))),
        }
    }

    pub(crate) fn as_ptr(self) -> Result<PtrVal, InterpError> {
        match self {
            Value::Ptr(p) => Ok(p),
            other => Err(InterpError::Invalid(format!(
                "expected pointer, got {other:?}"
            ))),
        }
    }
}

/// Kernel launch geometry (OpenCL NDRange).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdRange {
    /// Number of dimensions in use (1..=3).
    pub work_dim: u8,
    /// Global size per dimension (unused dims = 1).
    pub global: [usize; 3],
    /// Work-group size per dimension (unused dims = 1).
    pub local: [usize; 3],
}

impl NdRange {
    /// One-dimensional range.
    ///
    /// # Panics
    ///
    /// Panics if `local` is zero or does not divide `global`.
    pub fn new_1d(global: usize, local: usize) -> Self {
        let r = NdRange {
            work_dim: 1,
            global: [global, 1, 1],
            local: [local, 1, 1],
        };
        r.validate();
        r
    }

    /// Two-dimensional range.
    ///
    /// # Panics
    ///
    /// Panics if any local size is zero or does not divide its global size.
    pub fn new_2d(global: [usize; 2], local: [usize; 2]) -> Self {
        let r = NdRange {
            work_dim: 2,
            global: [global[0], global[1], 1],
            local: [local[0], local[1], 1],
        };
        r.validate();
        r
    }

    /// Three-dimensional range.
    ///
    /// # Panics
    ///
    /// Panics if any local size is zero or does not divide its global size.
    pub fn new_3d(global: [usize; 3], local: [usize; 3]) -> Self {
        let r = NdRange {
            work_dim: 3,
            global,
            local,
        };
        r.validate();
        r
    }

    fn validate(&self) {
        for d in 0..3 {
            assert!(self.local[d] > 0, "local size must be positive");
            assert!(
                self.global[d].is_multiple_of(self.local[d]),
                "global size {} not divisible by local size {} in dim {d}",
                self.global[d],
                self.local[d]
            );
        }
    }

    /// Number of work groups per dimension.
    pub fn num_groups(&self) -> [usize; 3] {
        [
            self.global[0] / self.local[0],
            self.global[1] / self.local[1],
            self.global[2] / self.local[2],
        ]
    }

    /// Total number of work groups.
    pub fn total_groups(&self) -> usize {
        let g = self.num_groups();
        g[0] * g[1] * g[2]
    }

    /// Work items per group.
    pub fn wg_size(&self) -> usize {
        self.local[0] * self.local[1] * self.local[2]
    }

    /// Total number of work items.
    pub fn total_items(&self) -> usize {
        self.global[0] * self.global[1] * self.global[2]
    }
}

/// A kernel argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Global/constant buffer argument.
    Buffer(BufferId),
    /// Scalar argument.
    Scalar(Value),
    /// Dynamically sized `local` pointer argument: number of *elements*
    /// (element type comes from the kernel signature), mirroring
    /// `clSetKernelArg(k, i, n * sizeof(T), NULL)`.
    Local {
        /// Element count.
        elems: u32,
    },
}

/// Dynamic execution statistics of one kernel launch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DynStats {
    /// Executed (non-terminator) instructions per work group, indexed by flat
    /// group id.
    pub insns_per_wg: Vec<u64>,
    /// Total executed instructions.
    pub total_insns: u64,
    /// Executed loads + stores.
    pub mem_ops: u64,
    /// Executed atomic operations.
    pub atomic_ops: u64,
    /// Executed barriers (per work item).
    pub barriers: u64,
}

impl DynStats {
    /// Coefficient of variation of per-work-group instruction counts — the
    /// "work-group imbalance" that makes dynamic scheduling win (paper §8.5).
    pub fn wg_imbalance(&self) -> f64 {
        let n = self.insns_per_wg.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.insns_per_wg.iter().sum::<u64>() as f64 / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .insns_per_wg
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }
}

/// Kind of cross-group conflict observed by the dynamic race oracle
/// ([`Interpreter::run_kernel_oracle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleConflictKind {
    /// Two different work groups plainly wrote the same byte.
    WriteWrite,
    /// A byte was written both atomically and non-atomically by different
    /// work groups.
    MixedAtomicity,
    /// A work group read a byte another group had written.
    ReadAfterForeignWrite,
    /// A work group wrote a byte another group had read.
    WriteAfterForeignRead,
}

impl std::fmt::Display for OracleConflictKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OracleConflictKind::WriteWrite => "write-write",
            OracleConflictKind::MixedAtomicity => "mixed-atomicity",
            OracleConflictKind::ReadAfterForeignWrite => "read-after-foreign-write",
            OracleConflictKind::WriteAfterForeignRead => "write-after-foreign-read",
        };
        f.write_str(s)
    }
}

/// One observed cross-group conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleConflict {
    /// Buffer the conflicting byte lives in.
    pub buffer: BufferId,
    /// Byte offset within the buffer.
    pub byte: usize,
    /// What kind of conflict.
    pub kind: OracleConflictKind,
    /// Flat id of the group that touched the byte earlier.
    pub first_group: usize,
    /// Flat id of the group that conflicted with it.
    pub second_group: usize,
}

/// Result of a shadow-mode oracle run: the dynamic ground truth the static
/// race analysis is validated against. `conflicts` holds the first few
/// distinct conflicting bytes; `total` counts every conflicting byte.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// First distinct conflicting bytes (capped; see `total`).
    pub conflicts: Vec<OracleConflict>,
    /// Total number of distinct conflicting bytes observed.
    pub total: usize,
}

impl OracleReport {
    /// Whether the launch executed without any cross-group conflict.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }
}

/// Sentinel: no group has touched the byte yet.
const ORACLE_NONE: u32 = u32::MAX;
/// Sentinel: more than one group touched the byte.
const ORACLE_MULTI: u32 = u32::MAX - 1;
/// How many distinct conflicting bytes an [`OracleReport`] retains.
const ORACLE_CONFLICT_CAP: usize = 16;

/// Per-byte shadow cell of the dynamic race oracle.
#[derive(Clone, Copy)]
struct OracleCell {
    writer: u32,
    reader: u32,
    atomic_only: bool,
    flagged: bool,
}

impl OracleCell {
    const FRESH: OracleCell = OracleCell {
        writer: ORACLE_NONE,
        reader: ORACLE_NONE,
        atomic_only: true,
        flagged: false,
    };
}

/// Shadow state of one oracle run: a last-writer/last-reader cell per byte
/// of global memory, populated while the launch executes sequentially.
struct OracleState {
    cells: Vec<Vec<OracleCell>>,
    report: OracleReport,
}

impl OracleState {
    fn new(mem: &DeviceMemory) -> Self {
        OracleState {
            cells: mem
                .buffers
                .iter()
                .map(|b| vec![OracleCell::FRESH; b.len()])
                .collect(),
            report: OracleReport::default(),
        }
    }

    fn conflict(
        report: &mut OracleReport,
        cell: &mut OracleCell,
        buffer: BufferId,
        byte: usize,
        kind: OracleConflictKind,
        first_group: u32,
        second_group: u32,
    ) {
        if cell.flagged {
            return; // one report per byte
        }
        cell.flagged = true;
        report.total += 1;
        if report.conflicts.len() < ORACLE_CONFLICT_CAP {
            report.conflicts.push(OracleConflict {
                buffer,
                byte,
                kind,
                first_group: if first_group == ORACLE_MULTI {
                    usize::MAX
                } else {
                    first_group as usize
                },
                second_group: second_group as usize,
            });
        }
    }

    /// Record a `size`-byte access by flat group `group`.
    fn record(
        &mut self,
        buffer: BufferId,
        off: i64,
        size: usize,
        group: u32,
        is_write: bool,
        is_atomic: bool,
    ) {
        let Some(cells) = self.cells.get_mut(buffer.0 as usize) else {
            return;
        };
        let start = off.max(0) as usize;
        for byte in start..(start + size).min(cells.len()) {
            let cell = &mut cells[byte];
            if is_write {
                if cell.reader != ORACLE_NONE && cell.reader != group {
                    Self::conflict(
                        &mut self.report,
                        cell,
                        buffer,
                        byte,
                        OracleConflictKind::WriteAfterForeignRead,
                        cell.reader,
                        group,
                    );
                }
                if cell.writer != ORACLE_NONE && cell.writer != group {
                    let kind = if is_atomic && cell.atomic_only {
                        None // contended atomics are synchronized, not racy
                    } else if is_atomic != cell.atomic_only {
                        Some(OracleConflictKind::MixedAtomicity)
                    } else {
                        Some(OracleConflictKind::WriteWrite)
                    };
                    if let Some(kind) = kind {
                        Self::conflict(
                            &mut self.report,
                            cell,
                            buffer,
                            byte,
                            kind,
                            cell.writer,
                            group,
                        );
                    }
                }
                if cell.writer == ORACLE_NONE {
                    cell.writer = group;
                    cell.atomic_only = is_atomic;
                } else {
                    if cell.writer != group {
                        cell.writer = ORACLE_MULTI;
                    }
                    cell.atomic_only &= is_atomic;
                }
            } else {
                if cell.writer != ORACLE_NONE && cell.writer != group {
                    Self::conflict(
                        &mut self.report,
                        cell,
                        buffer,
                        byte,
                        OracleConflictKind::ReadAfterForeignWrite,
                        cell.writer,
                        group,
                    );
                }
                if cell.reader == ORACLE_NONE {
                    cell.reader = group;
                } else if cell.reader != group {
                    cell.reader = ORACLE_MULTI;
                }
            }
        }
    }
}

/// Work-distribution schedule of the parallel interpreter
/// ([`Interpreter::run_kernel_parallel_sched`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParSchedule {
    /// Contiguous static partitions, one per thread. Threads finishing a
    /// cheap partition idle while a thread stuck on an expensive one
    /// (bfs's frontier groups, spmv's long rows) runs alone — kept as the
    /// reference schedule for differential tests and benchmarks.
    Static,
    /// Atomic-cursor dynamic schedule: threads repeatedly claim the next
    /// [`steal_claim`]-sized run of flat work groups until the range
    /// space is drained, so imbalanced kernels stop stranding threads.
    /// Each claimed range writes into its own pre-sized slice of the flat
    /// per-group stats buffer, which preserves the flat-order merge — and
    /// thus bit-identity with the sequential interpreter.
    #[default]
    Stealing,
}

/// Ceiling on the flat work groups claimed per atomic-cursor fetch by
/// [`ParSchedule::Stealing`]: small enough that one expensive range
/// cannot strand a thread for long, large enough that the cursor is not
/// contended on every group. Actual claims taper below this near the end
/// of the range space — see [`steal_claim`].
pub const STEAL_RANGE: usize = 8;

/// Flat work groups one stealing thread claims when its cursor fetch
/// lands at `lo` of `total` groups, shared by `threads` workers: half the
/// remaining groups divided evenly (guided self-scheduling, §6.4-style),
/// capped at [`STEAL_RANGE`] and floored at one group.
///
/// A fixed claim of [`STEAL_RANGE`] degenerates on small launches — an
/// 8-group claim hands a 9-group launch almost entirely to one thread —
/// and strands up to `STEAL_RANGE − 1` groups' worth of imbalance on the
/// final claim of any launch. The taper keeps deep range spaces on
/// full-size claims (the cursor stays uncontended) while the tail shrinks
/// toward single-group claims every idle thread can grab.
///
/// # Examples
///
/// ```
/// use kernel_ir::interp::{steal_claim, STEAL_RANGE};
/// // Deep range space: full-size claims, exactly the fixed behaviour.
/// assert_eq!(steal_claim(10_000, 4, 0), STEAL_RANGE);
/// // A 9-group launch on 4 threads: single-group claims, all threads fed.
/// assert_eq!(steal_claim(9, 4, 0), 1);
/// // The tail tapers: the last stretch is claimed one group at a time.
/// assert_eq!(steal_claim(10_000, 4, 9_996), 1);
/// ```
pub fn steal_claim(total: usize, threads: usize, lo: usize) -> usize {
    let remaining = total.saturating_sub(lo);
    (remaining / (2 * threads.max(1))).clamp(1, STEAL_RANGE)
}

/// Interpreter tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpConfig {
    /// Maximum instructions one work item may execute (runaway-loop guard).
    pub step_limit: u64,
    /// Local memory capacity in bytes per work group (checked at launch).
    pub local_mem_capacity: usize,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            step_limit: 50_000_000,
            local_mem_capacity: 1 << 20,
        }
    }
}

/// Interpreter size of one element (pointers are serialised as 16 bytes:
/// tag + buffer id + offset; scalar types use their natural size).
pub(crate) fn interp_size(ty: &Type) -> usize {
    match ty {
        Type::Ptr { .. } => 16,
        other => other.byte_size(),
    }
}

pub(crate) fn encode_value(v: Value, out: &mut [u8]) {
    match v {
        Value::Bool(b) => out[0] = b as u8,
        Value::I32(x) => out[..4].copy_from_slice(&x.to_le_bytes()),
        Value::F32(x) => out[..4].copy_from_slice(&x.to_le_bytes()),
        Value::I64(x) => out[..8].copy_from_slice(&x.to_le_bytes()),
        Value::F64(x) => out[..8].copy_from_slice(&x.to_le_bytes()),
        Value::Ptr(p) => {
            let (tag, id): (u8, u32) = match p.arena {
                Arena::Global(b) => (0, b.0),
                Arena::Local => (1, 0),
                Arena::Private => (2, 0),
            };
            out[0] = tag;
            out[1..4].fill(0);
            out[4..8].copy_from_slice(&id.to_le_bytes());
            out[8..16].copy_from_slice(&p.byte_off.to_le_bytes());
        }
    }
}

pub(crate) fn decode_value(ty: &Type, bytes: &[u8]) -> Value {
    match ty {
        Type::Bool => Value::Bool(bytes[0] != 0),
        Type::I32 => Value::I32(i32::from_le_bytes(bytes[..4].try_into().unwrap())),
        Type::F32 => Value::F32(f32::from_le_bytes(bytes[..4].try_into().unwrap())),
        Type::I64 => Value::I64(i64::from_le_bytes(bytes[..8].try_into().unwrap())),
        Type::F64 => Value::F64(f64::from_le_bytes(bytes[..8].try_into().unwrap())),
        Type::Ptr { .. } => {
            let tag = bytes[0];
            let id = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
            let off = i64::from_le_bytes(bytes[8..16].try_into().unwrap());
            let arena = match tag {
                0 => Arena::Global(BufferId(id)),
                1 => Arena::Local,
                _ => Arena::Private,
            };
            Value::Ptr(PtrVal {
                arena,
                byte_off: off,
            })
        }
        Type::Void => unreachable!("void cannot be decoded"),
    }
}

/// Per-work-item coordinates.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WiCtx {
    pub(crate) global_id: [usize; 3],
    pub(crate) local_id: [usize; 3],
    pub(crate) group_id: [usize; 3],
}

#[derive(Debug)]
struct Frame {
    func_idx: usize,
    block: BlockId,
    ip: usize,
    regs: Vec<Option<Value>>,
    /// Register in the *caller* frame to receive our return value.
    ret_dst: Option<ValueId>,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub(crate) enum WiStatus {
    Running,
    AtBarrier,
    Done,
}

struct WorkItem {
    ctx: WiCtx,
    frames: Vec<Frame>,
    private: Vec<u8>,
    status: WiStatus,
    steps: u64,
}

/// Free list of register files, recycled across frames and work groups so
/// the hot loop stops allocating one `Vec<Option<Value>>` per call frame.
#[derive(Debug, Default)]
pub(crate) struct RegsPool(Vec<Vec<Option<Value>>>);

impl RegsPool {
    pub(crate) fn take(&mut self, len: usize) -> Vec<Option<Value>> {
        let mut regs = self.0.pop().unwrap_or_default();
        regs.clear();
        regs.resize(len, None);
        regs
    }

    pub(crate) fn put(&mut self, regs: Vec<Option<Value>>) {
        self.0.push(regs);
    }
}

/// Reusable per-work-group execution state: the `local` arena, the work
/// items (with their frame stacks and private arenas) and the register-file
/// pool. One `WgScratch` serves every group of a launch in turn — after the
/// first group the `gz/gy/gx` loop performs no heap allocation beyond
/// whatever the kernel's own call depth demands once.
#[derive(Default)]
struct WgScratch {
    local: Vec<u8>,
    items: Vec<WorkItem>,
    pool: RegsPool,
}

/// Everything `run_kernel` resolves before the group loop: entry function,
/// argument plan, static local-memory layout.
pub(crate) struct LaunchSetup<'m> {
    pub(crate) func_idx: usize,
    pub(crate) func: &'m Function,
    pub(crate) arg_plan: Vec<ArgPlan>,
    pub(crate) static_local: Vec<(BlockId, usize, usize)>,
    pub(crate) local_bytes: usize,
}

/// The kernel interpreter.
///
/// # Examples
///
/// ```
/// use kernel_ir::builder::FunctionBuilder;
/// use kernel_ir::interp::{ArgValue, DeviceMemory, Interpreter, NdRange};
/// use kernel_ir::ir::{FunctionKind, Module, WiBuiltin};
/// use kernel_ir::types::{AddressSpace, Type};
///
/// # fn main() -> Result<(), kernel_ir::error::InterpError> {
/// // kernel void iota(global i64* out) { out[gid] = gid; }
/// let mut b = FunctionBuilder::new("iota", FunctionKind::Kernel, Type::Void);
/// let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::I64));
/// let gid = b.work_item(WiBuiltin::GlobalId, 0);
/// let p = b.gep(out, gid);
/// b.store(p, gid);
/// b.ret(None);
/// let mut m = Module::new();
/// m.insert_function(b.finish());
///
/// let mut mem = DeviceMemory::new();
/// let buf = mem.alloc(8 * 8);
/// Interpreter::new(&m).run_kernel(
///     &mut mem, "iota", NdRange::new_1d(8, 4), &[ArgValue::Buffer(buf)],
/// )?;
/// assert_eq!(mem.read_i64(buf), vec![0, 1, 2, 3, 4, 5, 6, 7]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Interpreter<'m> {
    pub(crate) module: &'m Module,
    pub(crate) config: InterpConfig,
    pub(crate) facts: Option<&'m crate::analysis::ModuleFacts>,
    pub(crate) tier: crate::bytecode::ExecTier,
}

impl<'m> Interpreter<'m> {
    /// Interpreter over `module` with default configuration.
    pub fn new(module: &'m Module) -> Self {
        Interpreter {
            module,
            config: InterpConfig::default(),
            facts: None,
            tier: crate::bytecode::ExecTier::TreeWalk,
        }
    }

    /// Interpreter with an explicit configuration.
    pub fn with_config(module: &'m Module, config: InterpConfig) -> Self {
        Interpreter {
            module,
            config,
            facts: None,
            tier: crate::bytecode::ExecTier::TreeWalk,
        }
    }

    /// Interpreter that reuses a precomputed analysis cache instead of
    /// re-running the race analysis on every launch. `facts` must have been
    /// computed from `module` (a stale cache would gate launches on the
    /// wrong verdicts).
    pub fn with_facts(module: &'m Module, facts: &'m crate::analysis::ModuleFacts) -> Self {
        Interpreter {
            module,
            config: InterpConfig::default(),
            facts: Some(facts),
            tier: crate::bytecode::ExecTier::TreeWalk,
        }
    }

    /// Replace the interpreter's configuration, keeping any analysis cache.
    pub fn set_config(&mut self, config: InterpConfig) {
        self.config = config;
    }

    /// Execute `kernel` over `ndrange` with `args`, mutating `mem`.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] on argument mismatches, out-of-bounds
    /// accesses, division by zero, barrier divergence, or exceeding the step
    /// limit.
    pub fn run_kernel(
        &self,
        mem: &mut DeviceMemory,
        kernel: &str,
        ndrange: NdRange,
        args: &[ArgValue],
    ) -> Result<DynStats, InterpError> {
        let setup = self.plan(mem, kernel, ndrange, args)?;
        self.run_groups_seq(mem, &setup, ndrange, None)
    }

    /// Execute `kernel` sequentially while logging every global-memory
    /// access into a per-byte shadow map, and report all cross-group
    /// conflicts observed: plain write-write, mixed atomic/non-atomic
    /// writes, and reads of (or writes to) bytes another group touched.
    /// Contended all-atomic bytes are synchronized, not conflicting.
    ///
    /// This is the dynamic ground truth the static race analysis is
    /// differentially tested against: a launch the analysis admits for
    /// parallel execution must produce a clean oracle report.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_kernel`](Self::run_kernel).
    pub fn run_kernel_oracle(
        &self,
        mem: &mut DeviceMemory,
        kernel: &str,
        ndrange: NdRange,
        args: &[ArgValue],
    ) -> Result<(DynStats, OracleReport), InterpError> {
        let setup = self.plan(mem, kernel, ndrange, args)?;
        let mut oracle = OracleState::new(mem);
        let stats = self.run_groups_seq(mem, &setup, ndrange, Some(&mut oracle))?;
        Ok((stats, oracle.report))
    }

    /// Execute `kernel` like [`run_kernel`](Self::run_kernel), sharding
    /// independent work groups across up to `threads` OS threads when the
    /// `accelcheck` race analysis proves the launch free of cross-group
    /// races — provably disjoint global writes, deterministic atomic
    /// contention, or a disjointness proof re-validated against the
    /// concrete launch parameters (see
    /// [`parallel_eligible`](Self::parallel_eligible)); falls back to the
    /// sequential interpreter otherwise (and for single-group or
    /// single-thread runs). Contended global atomics execute as true host
    /// atomics, so histogram-style kernels parallelize too.
    /// Uses the default [`ParSchedule::Stealing`] work distribution; see
    /// [`run_kernel_parallel_sched`](Self::run_kernel_parallel_sched) to
    /// pick a schedule explicitly.
    ///
    /// Successful runs are bit-identical to the sequential interpreter:
    /// `DeviceMemory` contents, `insns_per_wg` and every `DynStats` counter
    /// match exactly (work groups of a race-free kernel touch disjoint
    /// global bytes, and per-group statistics are merged in flat group
    /// order). A kernel whose work groups race on plain global stores —
    /// already undefined under OpenCL's execution model — gets undefined
    /// results here too, where the sequential interpreter at least yields
    /// a deterministic (last-group-wins) answer; use `run_kernel` as the
    /// arbiter for such kernels. On error, the lowest-numbered failing
    /// group's error is
    /// returned, but — unlike the sequential path, which stops at the first
    /// failing group — groups after the failing one may already have
    /// executed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_kernel`](Self::run_kernel).
    pub fn run_kernel_parallel_with(
        &self,
        mem: &mut DeviceMemory,
        kernel: &str,
        ndrange: NdRange,
        args: &[ArgValue],
        threads: usize,
    ) -> Result<DynStats, InterpError> {
        self.run_kernel_parallel_sched(mem, kernel, ndrange, args, threads, ParSchedule::default())
    }

    /// [`run_kernel_parallel_with`](Self::run_kernel_parallel_with) with an
    /// explicit work-distribution schedule. [`ParSchedule::Stealing`] (the
    /// default) keeps threads busy on imbalanced kernels (bfs, spmv);
    /// [`ParSchedule::Static`] is the historical contiguous partitioning,
    /// kept as the differential-test reference and for benchmarking the
    /// schedules against each other. Both are bit-identical to the
    /// sequential interpreter (and therefore to each other).
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_kernel`](Self::run_kernel).
    pub fn run_kernel_parallel_sched(
        &self,
        mem: &mut DeviceMemory,
        kernel: &str,
        ndrange: NdRange,
        args: &[ArgValue],
        threads: usize,
        schedule: ParSchedule,
    ) -> Result<DynStats, InterpError> {
        let setup = self.plan(mem, kernel, ndrange, args)?;
        let total = ndrange.total_groups();
        let threads = threads.min(total).max(1);
        if threads <= 1 || !self.parallel_eligible(kernel, ndrange, args) {
            return self.run_groups_seq(mem, &setup, ndrange, None);
        }
        match schedule {
            ParSchedule::Static => self.run_groups_par(mem, &setup, ndrange, threads),
            ParSchedule::Stealing => self.run_groups_stealing(mem, &setup, ndrange, threads),
        }
    }

    /// [`run_kernel_parallel_with`](Self::run_kernel_parallel_with) using
    /// the host's available parallelism (overridable via the
    /// `ACCELOS_INTERP_THREADS` environment variable, or the process-wide
    /// `ACCELOS_THREADS` shared with the harness's sweep pool).
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_kernel`](Self::run_kernel).
    pub fn run_kernel_parallel(
        &self,
        mem: &mut DeviceMemory,
        kernel: &str,
        ndrange: NdRange,
        args: &[ArgValue],
    ) -> Result<DynStats, InterpError> {
        self.run_kernel_parallel_with(mem, kernel, ndrange, args, default_interp_threads())
    }

    /// Whether `kernel` is statically eligible for cross-group parallel
    /// execution, independent of launch parameters: the race analysis
    /// proved every global write disjoint across work groups (`Safe`) or
    /// every contended access order-independently atomic
    /// (`SafeViaAtomics { deterministic: true }`). Kernels that fail this
    /// may still run in parallel for specific launches — see
    /// [`parallel_eligible`](Self::parallel_eligible).
    pub fn can_parallelize(&self, kernel: &str) -> bool {
        match self.facts {
            Some(f) => f
                .race_report(kernel)
                .map(crate::races::KernelRaceReport::eligible_static)
                .unwrap_or(false),
            None => crate::races::analyze_kernel(self.module, kernel)
                .map(|r| r.eligible_static())
                .unwrap_or(false),
        }
    }

    /// Launch-aware parallel-eligibility: the gate actually used by
    /// [`run_kernel_parallel_sched`](Self::run_kernel_parallel_sched).
    /// Validates the static verdict's residual assumptions (unit
    /// dimensions, scalar-dependent strides, buffer distinctness) against
    /// the concrete `ndrange` and `args`, rescuing kernels whose
    /// disjointness could only be decided per launch.
    pub fn parallel_eligible(&self, kernel: &str, ndrange: NdRange, args: &[ArgValue]) -> bool {
        let fresh;
        let report = match self.facts.and_then(|f| f.race_report(kernel)) {
            Some(r) => r,
            None => match crate::races::analyze_kernel(self.module, kernel) {
                Some(r) => {
                    fresh = r;
                    &fresh
                }
                None => return false,
            },
        };
        let scalars: Vec<Option<i64>> = args
            .iter()
            .map(|a| match a {
                ArgValue::Scalar(Value::I32(x)) => Some(*x as i64),
                ArgValue::Scalar(Value::I64(x)) => Some(*x),
                _ => None,
            })
            .collect();
        let mut buffers: Vec<BufferId> = args
            .iter()
            .filter_map(|a| match a {
                ArgValue::Buffer(b) => Some(*b),
                _ => None,
            })
            .collect();
        buffers.sort_unstable();
        let distinct_buffers = buffers.windows(2).all(|w| w[0] != w[1]);
        let env = crate::races::LaunchEnv {
            local: ndrange.local,
            groups: ndrange.num_groups(),
            work_dim: ndrange.work_dim as u32,
            args: &scalars,
            distinct_buffers,
        };
        report.eligible_for_launch(&env)
    }

    /// Resolve the entry point, argument plan and local-memory layout.
    pub(crate) fn plan(
        &self,
        mem: &DeviceMemory,
        kernel: &str,
        _ndrange: NdRange,
        args: &[ArgValue],
    ) -> Result<LaunchSetup<'m>, InterpError> {
        let (func_idx, func) = self
            .module
            .functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == kernel)
            .ok_or_else(|| InterpError::UnknownFunction(kernel.into()))?;
        if func.kind != FunctionKind::Kernel {
            return Err(InterpError::Invalid(format!("`{kernel}` is not a kernel")));
        }
        if func.params.len() != args.len() {
            return Err(InterpError::ArgMismatch(format!(
                "kernel `{kernel}` takes {} args, got {}",
                func.params.len(),
                args.len()
            )));
        }

        // Resolve arguments to runtime values; local args get arena offsets
        // assigned per work group (same layout every group).
        let mut arg_plan: Vec<ArgPlan> = Vec::with_capacity(args.len());
        let mut local_bytes = 0usize;
        for (i, (arg, param)) in args.iter().zip(&func.params).enumerate() {
            match (arg, &param.ty) {
                (
                    ArgValue::Buffer(b),
                    Type::Ptr {
                        space: AddressSpace::Global | AddressSpace::Constant,
                        ..
                    },
                ) => {
                    if b.0 as usize >= mem.buffers.len() {
                        return Err(InterpError::ArgMismatch(format!(
                            "argument {i}: unknown buffer {b:?}"
                        )));
                    }
                    arg_plan.push(ArgPlan::Value(Value::Ptr(PtrVal {
                        arena: Arena::Global(*b),
                        byte_off: 0,
                    })));
                }
                (
                    ArgValue::Local { elems },
                    Type::Ptr {
                        space: AddressSpace::Local,
                        elem,
                    },
                ) => {
                    let off = local_bytes;
                    local_bytes += interp_size(elem) * (*elems as usize);
                    arg_plan.push(ArgPlan::Value(Value::Ptr(PtrVal {
                        arena: Arena::Local,
                        byte_off: off as i64,
                    })));
                }
                (ArgValue::Scalar(v), ty) => {
                    let ok = matches!(
                        (v, ty),
                        (Value::Bool(_), Type::Bool)
                            | (Value::I32(_), Type::I32)
                            | (Value::I64(_), Type::I64)
                            | (Value::F32(_), Type::F32)
                            | (Value::F64(_), Type::F64)
                    );
                    if !ok {
                        return Err(InterpError::ArgMismatch(format!(
                            "argument {i} (`{}`): scalar {v:?} does not match {ty}",
                            param.name
                        )));
                    }
                    arg_plan.push(ArgPlan::Value(*v));
                }
                (a, ty) => {
                    return Err(InterpError::ArgMismatch(format!(
                        "argument {i} (`{}`): {a:?} does not match {ty}",
                        param.name
                    )));
                }
            }
        }

        // Pre-plan static local allocas of the kernel: one slot per alloca
        // instruction, shared by all work items of a group.
        let mut static_local: Vec<(BlockId, usize, usize)> = Vec::new(); // (block, ip, offset)
        for (bid, block) in func.iter_blocks() {
            for (ip, inst) in block.insts.iter().enumerate() {
                if let Op::Alloca {
                    elem,
                    count,
                    space: AddressSpace::Local,
                } = &inst.op
                {
                    static_local.push((bid, ip, local_bytes));
                    local_bytes += interp_size(elem) * (*count as usize);
                }
            }
        }
        if local_bytes > self.config.local_mem_capacity {
            return Err(InterpError::Invalid(format!(
                "work group needs {local_bytes} bytes of local memory, capacity is {}",
                self.config.local_mem_capacity
            )));
        }

        Ok(LaunchSetup {
            func_idx,
            func,
            arg_plan,
            static_local,
            local_bytes,
        })
    }

    /// Run every work group in flat order on the calling thread.
    fn run_groups_seq(
        &self,
        mem: &mut DeviceMemory,
        setup: &LaunchSetup<'_>,
        ndrange: NdRange,
        mut oracle: Option<&mut OracleState>,
    ) -> Result<DynStats, InterpError> {
        let gmem = GlobalMem::new(mem);
        run_groups_seq_sched(ndrange, |gid, scratch: &mut WgScratch, stats| {
            self.run_work_group(
                &gmem,
                setup,
                ndrange,
                gid,
                scratch,
                stats,
                oracle.as_deref_mut(),
            )
        })
    }

    /// Shard work groups across `threads` OS threads (contiguous flat
    /// ranges, merged in order); see [`run_groups_static_sched`].
    fn run_groups_par(
        &self,
        mem: &mut DeviceMemory,
        setup: &LaunchSetup<'_>,
        ndrange: NdRange,
        threads: usize,
    ) -> Result<DynStats, InterpError> {
        let gmem = GlobalMem::new(mem);
        run_groups_static_sched(ndrange, threads, |gid, scratch: &mut WgScratch, part| {
            self.run_work_group(&gmem, setup, ndrange, gid, scratch, part, None)
        })
    }

    /// Shard work groups across `threads` OS threads with the atomic-cursor
    /// dynamic schedule; see [`run_groups_stealing_sched`].
    fn run_groups_stealing(
        &self,
        mem: &mut DeviceMemory,
        setup: &LaunchSetup<'_>,
        ndrange: NdRange,
        threads: usize,
    ) -> Result<DynStats, InterpError> {
        let gmem = GlobalMem::new(mem);
        run_groups_stealing_sched(ndrange, threads, |gid, scratch: &mut WgScratch, part| {
            self.run_work_group(&gmem, setup, ndrange, gid, scratch, part, None)
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_work_group(
        &self,
        gmem: &GlobalMem<'_>,
        setup: &LaunchSetup<'_>,
        ndrange: NdRange,
        group_id: [usize; 3],
        scratch: &mut WgScratch,
        stats: &mut DynStats,
        mut oracle: Option<&mut OracleState>,
    ) -> Result<u64, InterpError> {
        let LaunchSetup {
            func_idx,
            func,
            arg_plan,
            static_local,
            local_bytes,
        } = setup;
        let WgScratch { local, items, pool } = scratch;
        // Zero the shared arena (resize-from-empty reuses the allocation).
        local.clear();
        local.resize(*local_bytes, 0);
        let wg_size = ndrange.wg_size();
        items.truncate(wg_size);

        let mut idx = 0;
        for lz in 0..ndrange.local[2] {
            for ly in 0..ndrange.local[1] {
                for lx in 0..ndrange.local[0] {
                    let ctx = WiCtx {
                        local_id: [lx, ly, lz],
                        group_id,
                        global_id: [
                            group_id[0] * ndrange.local[0] + lx,
                            group_id[1] * ndrange.local[1] + ly,
                            group_id[2] * ndrange.local[2] + lz,
                        ],
                    };
                    let mut regs = pool.take(func.value_types.len());
                    for (i, plan) in arg_plan.iter().enumerate() {
                        let ArgPlan::Value(v) = plan;
                        regs[i] = Some(*v);
                    }
                    let root = Frame {
                        func_idx: *func_idx,
                        block: BlockId(0),
                        ip: 0,
                        regs,
                        ret_dst: None,
                    };
                    match items.get_mut(idx) {
                        Some(item) => {
                            // Recycle the previous group's state in place.
                            item.ctx = ctx;
                            item.status = WiStatus::Running;
                            item.steps = 0;
                            item.private.clear();
                            while let Some(f) = item.frames.pop() {
                                pool.put(f.regs);
                            }
                            item.frames.push(root);
                        }
                        None => items.push(WorkItem {
                            ctx,
                            frames: vec![root],
                            private: Vec::new(),
                            status: WiStatus::Running,
                            steps: 0,
                        }),
                    }
                    idx += 1;
                }
            }
        }

        let mut wg_insns: u64 = 0;
        loop {
            for item in items.iter_mut() {
                if item.status == WiStatus::Done {
                    continue;
                }
                item.status = WiStatus::Running;
                self.run_until_pause(
                    gmem,
                    local,
                    pool,
                    static_local,
                    ndrange,
                    item,
                    stats,
                    &mut wg_insns,
                    oracle.as_deref_mut(),
                )?;
            }
            // After run_until_pause every item is Done or AtBarrier.
            let done = items.iter().filter(|i| i.status == WiStatus::Done).count();
            if done == items.len() {
                break;
            }
            if done > 0 {
                let at_barrier = items.len() - done;
                return Err(InterpError::BarrierDivergence(format!(
                    "{done} work items finished while {at_barrier} wait at a barrier"
                )));
            }
            // All at barrier: release and continue.
        }
        Ok(wg_insns)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_until_pause(
        &self,
        gmem: &GlobalMem<'_>,
        local: &mut [u8],
        pool: &mut RegsPool,
        static_local: &[(BlockId, usize, usize)],
        ndrange: NdRange,
        item: &mut WorkItem,
        stats: &mut DynStats,
        wg_insns: &mut u64,
        mut oracle: Option<&mut OracleState>,
    ) -> Result<(), InterpError> {
        // Flat group id for oracle attribution (same flat order as the
        // sequential group loop).
        let flat_group = {
            let g = ndrange.num_groups();
            let c = item.ctx.group_id;
            (c[0] + g[0] * (c[1] + g[1] * c[2])) as u32
        };
        loop {
            if item.frames.is_empty() {
                item.status = WiStatus::Done;
                return Ok(());
            }
            item.steps += 1;
            if item.steps > self.config.step_limit {
                return Err(InterpError::StepLimitExceeded(self.config.step_limit));
            }
            let frame = item.frames.last_mut().unwrap();
            let func = &self.module.functions[frame.func_idx];
            let block = &func.blocks[frame.block.index()];

            if frame.ip >= block.insts.len() {
                // Terminator.
                match block.term.as_ref().expect("verified function") {
                    Terminator::Br(b) => {
                        frame.block = *b;
                        frame.ip = 0;
                    }
                    Terminator::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let c = get_reg(frame, *cond)?.as_bool()?;
                        frame.block = if c { *then_bb } else { *else_bb };
                        frame.ip = 0;
                    }
                    Terminator::Ret(v) => {
                        let rv = match v {
                            Some(v) => Some(get_reg(frame, *v)?),
                            None => None,
                        };
                        let ret_dst = frame.ret_dst;
                        if let Some(f) = item.frames.pop() {
                            pool.put(f.regs);
                        }
                        if let (Some(dst), Some(val)) = (ret_dst, rv) {
                            if let Some(caller) = item.frames.last_mut() {
                                caller.regs[dst.index()] = Some(val);
                            }
                        }
                    }
                }
                continue;
            }

            let inst = &block.insts[frame.ip];
            *wg_insns += 1;
            let cur_ip = frame.ip;
            let cur_block = frame.block;
            frame.ip += 1;

            match &inst.op {
                Op::Const(c) => {
                    let v = match c {
                        ConstVal::Bool(b) => Value::Bool(*b),
                        ConstVal::I32(x) => Value::I32(*x),
                        ConstVal::I64(x) => Value::I64(*x),
                        ConstVal::F32(x) => Value::F32(*x),
                        ConstVal::F64(x) => Value::F64(*x),
                    };
                    set_result(item, inst.result, v);
                }
                Op::Bin(op, a, b) => {
                    let frame = item.frames.last().unwrap();
                    let va = get_reg(frame, *a)?;
                    let vb = get_reg(frame, *b)?;
                    let v = eval_bin(*op, va, vb)?;
                    set_result(item, inst.result, v);
                }
                Op::Un(op, a) => {
                    let frame = item.frames.last().unwrap();
                    let va = get_reg(frame, *a)?;
                    let v = eval_un(*op, va)?;
                    set_result(item, inst.result, v);
                }
                Op::Cmp(op, a, b) => {
                    let frame = item.frames.last().unwrap();
                    let va = get_reg(frame, *a)?;
                    let vb = get_reg(frame, *b)?;
                    let v = Value::Bool(eval_cmp(*op, va, vb)?);
                    set_result(item, inst.result, v);
                }
                Op::Select(c, a, b) => {
                    let frame = item.frames.last().unwrap();
                    let cond = get_reg(frame, *c)?.as_bool()?;
                    let v = if cond {
                        get_reg(frame, *a)?
                    } else {
                        get_reg(frame, *b)?
                    };
                    set_result(item, inst.result, v);
                }
                Op::Cast(ty, a) => {
                    let frame = item.frames.last().unwrap();
                    let va = get_reg(frame, *a)?;
                    let v = eval_cast(ty, va)?;
                    set_result(item, inst.result, v);
                }
                Op::Alloca { elem, count, space } => {
                    let bytes = interp_size(elem) * (*count as usize);
                    let ptr = match space {
                        AddressSpace::Private => {
                            let off = item.private.len();
                            item.private.resize(off + bytes, 0);
                            PtrVal {
                                arena: Arena::Private,
                                byte_off: off as i64,
                            }
                        }
                        AddressSpace::Local => {
                            // Pre-planned shared slot.
                            let off = static_local
                                .iter()
                                .find(|(b, ip, _)| *b == cur_block && *ip == cur_ip)
                                .map(|(_, _, off)| *off)
                                .ok_or_else(|| {
                                    InterpError::Invalid(
                                        "local alloca outside the kernel entry function".into(),
                                    )
                                })?;
                            PtrVal {
                                arena: Arena::Local,
                                byte_off: off as i64,
                            }
                        }
                        other => {
                            return Err(InterpError::Invalid(format!("alloca in {other}")));
                        }
                    };
                    set_result(item, inst.result, Value::Ptr(ptr));
                }
                Op::Load(p) => {
                    stats.mem_ops += 1;
                    let frame = item.frames.last().unwrap();
                    let ptr = get_reg(frame, *p)?.as_ptr()?;
                    let ty = func
                        .value_type(inst.result.expect("load has a result"))
                        .clone();
                    let size = interp_size(&ty);
                    let v = {
                        let bytes = self.arena_bytes(gmem, local, item, ptr, size)?;
                        decode_value(&ty, bytes)
                    };
                    if let (Some(o), Arena::Global(b)) = (oracle.as_deref_mut(), ptr.arena) {
                        o.record(b, ptr.byte_off, size, flat_group, false, false);
                    }
                    set_result(item, inst.result, v);
                }
                Op::Store { ptr, value } => {
                    stats.mem_ops += 1;
                    let frame = item.frames.last().unwrap();
                    let p = get_reg(frame, *ptr)?.as_ptr()?;
                    let v = get_reg(frame, *value)?;
                    let size = match v {
                        Value::Bool(_) => 1,
                        Value::I32(_) | Value::F32(_) => 4,
                        Value::I64(_) | Value::F64(_) => 8,
                        Value::Ptr(_) => 16,
                    };
                    let bytes = self.arena_bytes_mut(gmem, local, item, p, size)?;
                    encode_value(v, bytes);
                    if let (Some(o), Arena::Global(b)) = (oracle.as_deref_mut(), p.arena) {
                        o.record(b, p.byte_off, size, flat_group, true, false);
                    }
                }
                Op::Gep { ptr, index } => {
                    let frame = item.frames.last().unwrap();
                    let p = get_reg(frame, *ptr)?.as_ptr()?;
                    let idx = get_reg(frame, *index)?.as_i64()?;
                    let stride = interp_size(
                        func.value_type(*ptr)
                            .pointee()
                            .ok_or_else(|| InterpError::Invalid("gep on non-pointer".into()))?,
                    );
                    let v = Value::Ptr(PtrVal {
                        arena: p.arena,
                        byte_off: p.byte_off + idx * stride as i64,
                    });
                    set_result(item, inst.result, v);
                }
                Op::Call { callee, args } => {
                    let (callee_idx, callee_fn) = self
                        .module
                        .functions
                        .iter()
                        .enumerate()
                        .find(|(_, f)| f.name == *callee)
                        .ok_or_else(|| InterpError::UnknownFunction(callee.clone()))?;
                    let frame = item.frames.last().unwrap();
                    let mut regs = pool.take(callee_fn.value_types.len());
                    for (i, a) in args.iter().enumerate() {
                        regs[i] = Some(get_reg(frame, *a)?);
                    }
                    item.frames.push(Frame {
                        func_idx: callee_idx,
                        block: BlockId(0),
                        ip: 0,
                        regs,
                        ret_dst: inst.result,
                    });
                }
                Op::WorkItem { builtin, dim } => {
                    let d = *dim as usize;
                    let c = &item.ctx;
                    let v = match builtin {
                        WiBuiltin::GlobalId => c.global_id[d],
                        WiBuiltin::LocalId => c.local_id[d],
                        WiBuiltin::GroupId => c.group_id[d],
                        WiBuiltin::GlobalSize => ndrange.global[d],
                        WiBuiltin::LocalSize => ndrange.local[d],
                        WiBuiltin::NumGroups => ndrange.num_groups()[d],
                        WiBuiltin::WorkDim => ndrange.work_dim as usize,
                    };
                    set_result(item, inst.result, Value::I64(v as i64));
                }
                Op::AtomicRmw { op, ptr, value } => {
                    stats.atomic_ops += 1;
                    let frame = item.frames.last().unwrap();
                    let p = get_reg(frame, *ptr)?.as_ptr()?;
                    let v = get_reg(frame, *value)?;
                    let is64 = matches!(v, Value::I64(_));
                    let old = if let Arena::Global(b) = p.arena {
                        // Global memory may be contended by other work
                        // groups on other threads: use a true host atomic.
                        use std::sync::atomic::Ordering::SeqCst;
                        if is64 {
                            let operand = v.as_i64()?;
                            let cell = gmem.atomic_u64(b, p.byte_off)?;
                            let prev = cell
                                .fetch_update(SeqCst, SeqCst, |cur| {
                                    Some(apply_atomic(*op, cur as i64, operand) as u64)
                                })
                                .unwrap_or_else(|e| e);
                            Value::I64(prev as i64)
                        } else {
                            let operand = match v {
                                Value::I32(x) => x,
                                _ => {
                                    return Err(InterpError::Invalid("atomic operand type".into()))
                                }
                            };
                            let cell = gmem.atomic_u32(b, p.byte_off)?;
                            let prev = cell
                                .fetch_update(SeqCst, SeqCst, |cur| {
                                    Some(
                                        apply_atomic(*op, cur as i32 as i64, operand as i64) as i32
                                            as u32,
                                    )
                                })
                                .unwrap_or_else(|e| e);
                            Value::I32(prev as i32)
                        }
                    } else {
                        // Local/private arenas are group- or item-exclusive:
                        // a plain read-modify-write is already atomic.
                        let size = if is64 { 8 } else { 4 };
                        let bytes = self.arena_bytes_mut(gmem, local, item, p, size)?;
                        if is64 {
                            let old = i64::from_le_bytes(bytes[..8].try_into().unwrap());
                            let operand = v.as_i64()?;
                            let new = apply_atomic(*op, old, operand);
                            bytes[..8].copy_from_slice(&new.to_le_bytes());
                            Value::I64(old)
                        } else {
                            let old = i32::from_le_bytes(bytes[..4].try_into().unwrap());
                            let operand = match v {
                                Value::I32(x) => x,
                                _ => {
                                    return Err(InterpError::Invalid("atomic operand type".into()))
                                }
                            };
                            let new = apply_atomic(*op, old as i64, operand as i64) as i32;
                            bytes[..4].copy_from_slice(&new.to_le_bytes());
                            Value::I32(old)
                        }
                    };
                    if let (Some(o), Arena::Global(b)) = (oracle.as_deref_mut(), p.arena) {
                        o.record(
                            b,
                            p.byte_off,
                            if is64 { 8 } else { 4 },
                            flat_group,
                            true,
                            true,
                        );
                    }
                    set_result(item, inst.result, old);
                }
                Op::AtomicCmpXchg {
                    ptr,
                    expected,
                    desired,
                } => {
                    stats.atomic_ops += 1;
                    let frame = item.frames.last().unwrap();
                    let p = get_reg(frame, *ptr)?.as_ptr()?;
                    let exp = get_reg(frame, *expected)?;
                    let des = get_reg(frame, *desired)?;
                    let is64 = matches!(des, Value::I64(_));
                    let old = if let Arena::Global(b) = p.arena {
                        use std::sync::atomic::Ordering::SeqCst;
                        if is64 {
                            let cell = gmem.atomic_u64(b, p.byte_off)?;
                            let exp = exp.as_i64()? as u64;
                            let des = des.as_i64()? as u64;
                            let prev = match cell.compare_exchange(exp, des, SeqCst, SeqCst) {
                                Ok(prev) | Err(prev) => prev,
                            };
                            Value::I64(prev as i64)
                        } else {
                            let cell = gmem.atomic_u32(b, p.byte_off)?;
                            let exp = exp.as_i64()? as i32 as u32;
                            let des = des.as_i64()? as i32 as u32;
                            let prev = match cell.compare_exchange(exp, des, SeqCst, SeqCst) {
                                Ok(prev) | Err(prev) => prev,
                            };
                            Value::I32(prev as i32)
                        }
                    } else {
                        let size = if is64 { 8 } else { 4 };
                        let bytes = self.arena_bytes_mut(gmem, local, item, p, size)?;
                        if is64 {
                            let old = i64::from_le_bytes(bytes[..8].try_into().unwrap());
                            if old == exp.as_i64()? {
                                bytes[..8].copy_from_slice(&des.as_i64()?.to_le_bytes());
                            }
                            Value::I64(old)
                        } else {
                            let old = i32::from_le_bytes(bytes[..4].try_into().unwrap());
                            if old as i64 == exp.as_i64()? {
                                bytes[..4].copy_from_slice(&(des.as_i64()? as i32).to_le_bytes());
                            }
                            Value::I32(old)
                        }
                    };
                    if let (Some(o), Arena::Global(b)) = (oracle.as_deref_mut(), p.arena) {
                        o.record(
                            b,
                            p.byte_off,
                            if is64 { 8 } else { 4 },
                            flat_group,
                            true,
                            true,
                        );
                    }
                    set_result(item, inst.result, old);
                }
                Op::Barrier => {
                    stats.barriers += 1;
                    item.status = WiStatus::AtBarrier;
                    return Ok(());
                }
            }
        }
    }

    fn arena_bytes<'a>(
        &self,
        gmem: &'a GlobalMem<'_>,
        local: &'a [u8],
        item: &'a WorkItem,
        p: PtrVal,
        size: usize,
    ) -> Result<&'a [u8], InterpError> {
        let (storage, what): (&[u8], &str) = match p.arena {
            Arena::Global(b) => return gmem.bytes(b, p.byte_off, size),
            Arena::Local => (local, "local memory"),
            Arena::Private => (&item.private, "private memory"),
        };
        bounds(storage.len(), p.byte_off, size, what)?;
        let off = p.byte_off as usize;
        Ok(&storage[off..off + size])
    }

    fn arena_bytes_mut<'a>(
        &self,
        gmem: &'a GlobalMem<'_>,
        local: &'a mut [u8],
        item: &'a mut WorkItem,
        p: PtrVal,
        size: usize,
    ) -> Result<&'a mut [u8], InterpError> {
        let (storage, what): (&mut [u8], &str) = match p.arena {
            Arena::Global(b) => return gmem.bytes_mut(b, p.byte_off, size),
            Arena::Local => (local, "local memory"),
            Arena::Private => (&mut item.private, "private memory"),
        };
        bounds(storage.len(), p.byte_off, size, what)?;
        let off = p.byte_off as usize;
        Ok(&mut storage[off..off + size])
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum ArgPlan {
    Value(Value),
}

/// Raw view of the device's global buffers used while a launch executes.
///
/// Built from one `&mut DeviceMemory` (so the view is exclusive for its
/// lifetime), it hands out byte ranges as raw-pointer slices instead of
/// reborrowing the `DeviceMemory` — which is what lets work-group shards
/// on different threads access *disjoint* ranges of the same buffer
/// without ever materializing aliased `&mut DeviceMemory`. Remaining
/// unsoundness is confined to kernels that actually race: concurrent
/// overlapping accesses are undefined behaviour under OpenCL's execution
/// model *and* here (the sequential interpreter remains the arbiter for
/// such kernels; the parallel entry point is gated on the global-atomics
/// analysis and documented accordingly).
pub(crate) struct GlobalMem<'a> {
    spans: Vec<(*mut u8, usize)>,
    _mem: std::marker::PhantomData<&'a mut DeviceMemory>,
}

unsafe impl Sync for GlobalMem<'_> {}

impl<'a> GlobalMem<'a> {
    pub(crate) fn new(mem: &'a mut DeviceMemory) -> Self {
        let spans = mem
            .buffers
            .iter_mut()
            .map(|b| {
                let len = b.len();
                (b.bytes_mut().as_mut_ptr(), len)
            })
            .collect();
        GlobalMem {
            spans,
            _mem: std::marker::PhantomData,
        }
    }

    fn span(&self, b: BufferId) -> Result<(*mut u8, usize), InterpError> {
        self.spans
            .get(b.0 as usize)
            .copied()
            .ok_or_else(|| InterpError::Invalid(format!("dangling buffer {b:?}")))
    }

    pub(crate) fn bytes(&self, b: BufferId, off: i64, size: usize) -> Result<&[u8], InterpError> {
        let (ptr, len) = self.span(b)?;
        bounds(len, off, size, "global buffer")?;
        // SAFETY: in bounds (checked above); the only concurrent writers
        // are other work groups of a race-free kernel, which touch
        // disjoint bytes (see the type-level comment).
        Ok(unsafe { std::slice::from_raw_parts(ptr.add(off as usize), size) })
    }

    #[allow(clippy::mut_from_ref)] // interior-mutability view; see type docs
    pub(crate) fn bytes_mut(
        &self,
        b: BufferId,
        off: i64,
        size: usize,
    ) -> Result<&mut [u8], InterpError> {
        let (ptr, len) = self.span(b)?;
        bounds(len, off, size, "global buffer")?;
        // SAFETY: in bounds (checked above); the returned slice is used
        // transiently for one encode/read-modify-write, and disjointness
        // across threads is the race-free-kernel contract.
        Ok(unsafe { std::slice::from_raw_parts_mut(ptr.add(off as usize), size) })
    }

    /// Atomic view of a naturally aligned 4-byte word. Misaligned offsets
    /// are a deterministic error (raised identically by the sequential and
    /// parallel paths).
    pub(crate) fn atomic_u32(
        &self,
        b: BufferId,
        off: i64,
    ) -> Result<&std::sync::atomic::AtomicU32, InterpError> {
        let (ptr, len) = self.span(b)?;
        bounds(len, off, 4, "global buffer")?;
        if off % 4 != 0 {
            return Err(InterpError::Invalid(format!(
                "misaligned 4-byte atomic at global offset {off}"
            )));
        }
        // SAFETY: in bounds and 4-aligned (buffer bases are 8-aligned, see
        // `AlignedBuf`); all concurrent access to contended words goes
        // through these atomic views.
        Ok(unsafe { &*(ptr.add(off as usize) as *const std::sync::atomic::AtomicU32) })
    }

    /// Atomic view of a naturally aligned 8-byte word; see
    /// [`Self::atomic_u32`].
    pub(crate) fn atomic_u64(
        &self,
        b: BufferId,
        off: i64,
    ) -> Result<&std::sync::atomic::AtomicU64, InterpError> {
        let (ptr, len) = self.span(b)?;
        bounds(len, off, 8, "global buffer")?;
        if off % 8 != 0 {
            return Err(InterpError::Invalid(format!(
                "misaligned 8-byte atomic at global offset {off}"
            )));
        }
        // SAFETY: in bounds and 8-aligned; see `atomic_u32`.
        Ok(unsafe { &*(ptr.add(off as usize) as *const std::sync::atomic::AtomicU64) })
    }
}

/// Shared mutable base pointer of the stealing schedule's pre-sized
/// per-group stats buffer. Writes are disjoint by construction (each flat
/// index belongs to exactly one claimed range), which is what makes the
/// `Sync` claim sound.
struct SyncPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SyncPtr<T> {}

/// Decode a flat group id into 3-D group coordinates. Shared by every
/// schedule (and both execution tiers) so the flat ordering cannot drift:
/// it is what bit-identity with the sequential `gz/gy/gx` loop rests on.
pub(crate) fn flat_gid(groups: [usize; 3], flat: usize) -> [usize; 3] {
    [
        flat % groups[0],
        (flat / groups[0]) % groups[1],
        flat / (groups[0] * groups[1]),
    ]
}

/// Keep the error of the lowest-numbered failing group — the one the
/// sequential interpreter would have stopped at. Shared by both parallel
/// schedules.
fn keep_lowest_err(first: &mut Option<(usize, InterpError)>, flat: usize, e: InterpError) {
    if first.as_ref().map(|(f, _)| flat < *f).unwrap_or(true) {
        *first = Some((flat, e));
    }
}

/// Run every work group in flat order on the calling thread, reusing one
/// scratch `S`. Generic over the per-group executor so the tree-walking
/// interpreter and the bytecode VM share one group loop (and therefore one
/// flat order and one stats-merge discipline).
pub(crate) fn run_groups_seq_sched<S, F>(
    ndrange: NdRange,
    mut run: F,
) -> Result<DynStats, InterpError>
where
    S: Default,
    F: FnMut([usize; 3], &mut S, &mut DynStats) -> Result<u64, InterpError>,
{
    let groups = ndrange.num_groups();
    let mut stats = DynStats {
        insns_per_wg: Vec::with_capacity(ndrange.total_groups()),
        ..DynStats::default()
    };
    let mut scratch = S::default();
    for gz in 0..groups[2] {
        for gy in 0..groups[1] {
            for gx in 0..groups[0] {
                let wg_insns = run([gx, gy, gz], &mut scratch, &mut stats)?;
                stats.insns_per_wg.push(wg_insns);
            }
        }
    }
    stats.total_insns = stats.insns_per_wg.iter().sum();
    Ok(stats)
}

/// [`ParSchedule::Static`] work distribution, generic over the per-group
/// executor: contiguous flat ranges, one per thread, merged in thread
/// order. Each worker owns one scratch `S` for its whole partition. Only
/// called once the analysis has admitted the launch for cross-group
/// parallelism.
pub(crate) fn run_groups_static_sched<S, F>(
    ndrange: NdRange,
    threads: usize,
    run: F,
) -> Result<DynStats, InterpError>
where
    S: Default,
    F: Fn([usize; 3], &mut S, &mut DynStats) -> Result<u64, InterpError> + Sync,
{
    let groups = ndrange.num_groups();
    let total = ndrange.total_groups();
    let mut merged = DynStats {
        insns_per_wg: Vec::with_capacity(total),
        ..DynStats::default()
    };
    let mut first_err: Option<(usize, InterpError)> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = total * t / threads;
                let hi = total * (t + 1) / threads;
                let run = &run;
                scope.spawn(move || {
                    let mut scratch = S::default();
                    let mut part = DynStats::default();
                    let mut insns = Vec::with_capacity(hi - lo);
                    for flat in lo..hi {
                        let gid = flat_gid(groups, flat);
                        match run(gid, &mut scratch, &mut part) {
                            Ok(n) => insns.push(n),
                            Err(e) => return Err((flat, e)),
                        }
                    }
                    Ok((insns, part))
                })
            })
            .collect();
        for handle in handles {
            match handle.join().expect("interpreter worker panicked") {
                Ok((insns, part)) => {
                    merged.insns_per_wg.extend(insns);
                    merged.mem_ops += part.mem_ops;
                    merged.atomic_ops += part.atomic_ops;
                    merged.barriers += part.barriers;
                }
                Err((flat, e)) => keep_lowest_err(&mut first_err, flat, e),
            }
        }
    });
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    merged.total_insns = merged.insns_per_wg.iter().sum();
    Ok(merged)
}

/// [`ParSchedule::Stealing`] work distribution, generic over the per-group
/// executor: each thread repeatedly claims the next [`steal_claim`]-sized
/// run of flat groups from an atomic cursor (tapering from
/// [`STEAL_RANGE`] toward single groups as the range space drains), so a
/// thread that drew cheap groups keeps working while another grinds
/// through expensive ones. Only called once the analysis has admitted the
/// launch for cross-group parallelism.
///
/// Bit-identity with [`run_groups_seq_sched`]: every claimed range
/// `[lo, hi)` is owned by exactly one thread, which writes
/// `insns_per_wg[lo..hi]` directly into the pre-sized flat buffer (the
/// merge is the identity), and the scalar counters are order-independent
/// integer sums. `total_insns` is recomputed from the flat buffer exactly
/// like the sequential loop does.
pub(crate) fn run_groups_stealing_sched<S, F>(
    ndrange: NdRange,
    threads: usize,
    run: F,
) -> Result<DynStats, InterpError>
where
    S: Default,
    F: Fn([usize; 3], &mut S, &mut DynStats) -> Result<u64, InterpError> + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    let groups = ndrange.num_groups();
    let total = ndrange.total_groups();
    let mut insns_per_wg = vec![0u64; total];
    // One writer per flat index (ranges are claimed exactly once), so
    // disjoint raw-pointer writes into the pre-sized buffer are safe.
    let insns = SyncPtr(insns_per_wg.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    let mut merged = DynStats::default();
    let mut first_err: Option<(usize, InterpError)> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let insns = &insns;
                let run = &run;
                scope.spawn(move || {
                    let mut scratch = S::default();
                    let mut part = DynStats::default();
                    loop {
                        // Tapered claims need the size to depend on where
                        // the cursor stands, so the claim is a CAS update
                        // rather than a fixed-stride fetch_add; the size
                        // is a pure function of `lo`, so recomputing it
                        // after the update returns yields the same claim.
                        let claimed =
                            cursor.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |lo| {
                                (lo < total).then(|| lo + steal_claim(total, threads, lo))
                            });
                        let Ok(lo) = claimed else {
                            return Ok(part);
                        };
                        for flat in lo..(lo + steal_claim(total, threads, lo)).min(total) {
                            let gid = flat_gid(groups, flat);
                            match run(gid, &mut scratch, &mut part) {
                                // SAFETY: `flat` lies in a range this
                                // thread claimed exclusively; the buffer
                                // outlives the scope.
                                Ok(n) => unsafe { *insns.0.add(flat) = n },
                                Err(e) => return Err((flat, e)),
                            }
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            match handle.join().expect("interpreter worker panicked") {
                Ok(part) => {
                    merged.mem_ops += part.mem_ops;
                    merged.atomic_ops += part.atomic_ops;
                    merged.barriers += part.barriers;
                }
                Err((flat, e)) => keep_lowest_err(&mut first_err, flat, e),
            }
        }
    });
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    merged.total_insns = insns_per_wg.iter().sum();
    merged.insns_per_wg = insns_per_wg;
    Ok(merged)
}

/// Worker threads for [`Interpreter::run_kernel_parallel`]:
/// `ACCELOS_INTERP_THREADS` if set, else the host-wide `ACCELOS_THREADS`
/// override (shared with the harness's sweep pool), else the host's
/// available parallelism.
pub fn default_interp_threads() -> usize {
    ["ACCELOS_INTERP_THREADS", "ACCELOS_THREADS"]
        .iter()
        .find_map(|var| {
            std::env::var(var)
                .ok()
                .map(|v| v.parse::<usize>().ok().filter(|&n| n > 0).unwrap_or(1))
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

pub(crate) fn bounds(
    storage_len: usize,
    off: i64,
    size: usize,
    what: &str,
) -> Result<(), InterpError> {
    if off < 0 || (off as usize) + size > storage_len {
        return Err(InterpError::OutOfBounds {
            what: what.into(),
            offset: off.max(0) as usize,
            size: storage_len,
        });
    }
    Ok(())
}

fn get_reg(frame: &Frame, v: ValueId) -> Result<Value, InterpError> {
    frame.regs[v.index()]
        .ok_or_else(|| InterpError::Invalid(format!("read of undefined value {v}")))
}

fn set_result(item: &mut WorkItem, result: Option<ValueId>, v: Value) {
    if let Some(r) = result {
        let frame = item.frames.last_mut().unwrap();
        frame.regs[r.index()] = Some(v);
    }
}

pub(crate) fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, InterpError> {
    use BinOp::*;
    Ok(match (a, b) {
        (Value::I32(x), Value::I32(y)) => Value::I32(match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(InterpError::DivideByZero);
                }
                x.wrapping_div(y)
            }
            Rem => {
                if y == 0 {
                    return Err(InterpError::DivideByZero);
                }
                x.wrapping_rem(y)
            }
            And => x & y,
            Or => x | y,
            Xor => x ^ y,
            Shl => x.wrapping_shl(y as u32),
            Shr => x.wrapping_shr(y as u32),
            Min => x.min(y),
            Max => x.max(y),
        }),
        (Value::I64(x), Value::I64(y)) => Value::I64(match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(InterpError::DivideByZero);
                }
                x.wrapping_div(y)
            }
            Rem => {
                if y == 0 {
                    return Err(InterpError::DivideByZero);
                }
                x.wrapping_rem(y)
            }
            And => x & y,
            Or => x | y,
            Xor => x ^ y,
            Shl => x.wrapping_shl(y as u32),
            Shr => x.wrapping_shr(y as u32),
            Min => x.min(y),
            Max => x.max(y),
        }),
        (Value::F32(x), Value::F32(y)) => Value::F32(match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            Min => x.min(y),
            Max => x.max(y),
            other => {
                return Err(InterpError::Invalid(format!(
                    "float op `{}` unsupported",
                    other.mnemonic()
                )))
            }
        }),
        (Value::F64(x), Value::F64(y)) => Value::F64(match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            Min => x.min(y),
            Max => x.max(y),
            other => {
                return Err(InterpError::Invalid(format!(
                    "float op `{}` unsupported",
                    other.mnemonic()
                )))
            }
        }),
        (a, b) => {
            return Err(InterpError::Invalid(format!(
                "binop on mismatched values {a:?} and {b:?}"
            )))
        }
    })
}

pub(crate) fn eval_un(op: UnOp, a: Value) -> Result<Value, InterpError> {
    Ok(match (op, a) {
        (UnOp::Neg, Value::I32(x)) => Value::I32(x.wrapping_neg()),
        (UnOp::Neg, Value::I64(x)) => Value::I64(x.wrapping_neg()),
        (UnOp::Neg, Value::F32(x)) => Value::F32(-x),
        (UnOp::Neg, Value::F64(x)) => Value::F64(-x),
        (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
        (UnOp::Abs, Value::I32(x)) => Value::I32(x.wrapping_abs()),
        (UnOp::Abs, Value::I64(x)) => Value::I64(x.wrapping_abs()),
        (UnOp::Abs, Value::F32(x)) => Value::F32(x.abs()),
        (UnOp::Abs, Value::F64(x)) => Value::F64(x.abs()),
        (UnOp::Sqrt, Value::F32(x)) => Value::F32(x.sqrt()),
        (UnOp::Sqrt, Value::F64(x)) => Value::F64(x.sqrt()),
        (UnOp::Exp, Value::F32(x)) => Value::F32(x.exp()),
        (UnOp::Exp, Value::F64(x)) => Value::F64(x.exp()),
        (UnOp::Log, Value::F32(x)) => Value::F32(x.ln()),
        (UnOp::Log, Value::F64(x)) => Value::F64(x.ln()),
        (UnOp::Sin, Value::F32(x)) => Value::F32(x.sin()),
        (UnOp::Sin, Value::F64(x)) => Value::F64(x.sin()),
        (UnOp::Cos, Value::F32(x)) => Value::F32(x.cos()),
        (UnOp::Cos, Value::F64(x)) => Value::F64(x.cos()),
        (UnOp::Floor, Value::F32(x)) => Value::F32(x.floor()),
        (UnOp::Floor, Value::F64(x)) => Value::F64(x.floor()),
        (UnOp::Ceil, Value::F32(x)) => Value::F32(x.ceil()),
        (UnOp::Ceil, Value::F64(x)) => Value::F64(x.ceil()),
        (op, a) => {
            return Err(InterpError::Invalid(format!(
                "unop {} on {a:?}",
                op.mnemonic()
            )))
        }
    })
}

pub(crate) fn eval_cmp(op: CmpOp, a: Value, b: Value) -> Result<bool, InterpError> {
    use std::cmp::Ordering;
    let ord = match (a, b) {
        (Value::I32(x), Value::I32(y)) => x.cmp(&y),
        (Value::I64(x), Value::I64(y)) => x.cmp(&y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(&y),
        (Value::F32(x), Value::F32(y)) => {
            return Ok(float_cmp(op, x.partial_cmp(&y)));
        }
        (Value::F64(x), Value::F64(y)) => {
            return Ok(float_cmp(op, x.partial_cmp(&y)));
        }
        (Value::Ptr(x), Value::Ptr(y)) => x.byte_off.cmp(&y.byte_off),
        (a, b) => {
            return Err(InterpError::Invalid(format!("cmp on {a:?} and {b:?}")));
        }
    };
    Ok(match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    })
}

fn float_cmp(op: CmpOp, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering;
    match (op, ord) {
        (_, None) => matches!(op, CmpOp::Ne), // NaN: only != is true
        (CmpOp::Eq, Some(o)) => o == Ordering::Equal,
        (CmpOp::Ne, Some(o)) => o != Ordering::Equal,
        (CmpOp::Lt, Some(o)) => o == Ordering::Less,
        (CmpOp::Le, Some(o)) => o != Ordering::Greater,
        (CmpOp::Gt, Some(o)) => o == Ordering::Greater,
        (CmpOp::Ge, Some(o)) => o != Ordering::Less,
    }
}

pub(crate) fn eval_cast(ty: &Type, v: Value) -> Result<Value, InterpError> {
    Ok(match (ty, v) {
        (Type::I32, Value::I32(x)) => Value::I32(x),
        (Type::I32, Value::I64(x)) => Value::I32(x as i32),
        (Type::I32, Value::F32(x)) => Value::I32(x as i32),
        (Type::I32, Value::F64(x)) => Value::I32(x as i32),
        (Type::I32, Value::Bool(b)) => Value::I32(b as i32),
        (Type::I64, Value::I32(x)) => Value::I64(x as i64),
        (Type::I64, Value::I64(x)) => Value::I64(x),
        (Type::I64, Value::F32(x)) => Value::I64(x as i64),
        (Type::I64, Value::F64(x)) => Value::I64(x as i64),
        (Type::I64, Value::Bool(b)) => Value::I64(b as i64),
        (Type::F32, Value::I32(x)) => Value::F32(x as f32),
        (Type::F32, Value::I64(x)) => Value::F32(x as f32),
        (Type::F32, Value::F32(x)) => Value::F32(x),
        (Type::F32, Value::F64(x)) => Value::F32(x as f32),
        (Type::F32, Value::Bool(b)) => Value::F32(b as i32 as f32),
        (Type::F64, Value::I32(x)) => Value::F64(x as f64),
        (Type::F64, Value::I64(x)) => Value::F64(x as f64),
        (Type::F64, Value::F32(x)) => Value::F64(x as f64),
        (Type::F64, Value::F64(x)) => Value::F64(x),
        (Type::F64, Value::Bool(b)) => Value::F64(b as i32 as f64),
        (Type::Ptr { .. }, Value::Ptr(p)) => Value::Ptr(p),
        (ty, v) => return Err(InterpError::Invalid(format!("cast {v:?} -> {ty}"))),
    })
}

pub(crate) fn apply_atomic(op: AtomicOp, old: i64, operand: i64) -> i64 {
    match op {
        AtomicOp::Add => old.wrapping_add(operand),
        AtomicOp::Sub => old.wrapping_sub(operand),
        AtomicOp::Min => old.min(operand),
        AtomicOp::Max => old.max(operand),
        AtomicOp::Xchg => operand,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ir::{AtomicOp, BinOp, CmpOp, FunctionKind, Module, WiBuiltin};
    use crate::types::{AddressSpace, Type};
    use crate::verify::assert_verifies;

    fn module_of(funcs: Vec<Function>) -> Module {
        let mut m = Module::new();
        for f in funcs {
            m.insert_function(f);
        }
        assert_verifies(&m);
        m
    }

    /// kernel void scale(global f32* buf, f32 k) { buf[gid] *= k; }
    fn scale_kernel() -> Module {
        let mut b = FunctionBuilder::new("scale", FunctionKind::Kernel, Type::Void);
        let buf = b.add_param("buf", Type::ptr(AddressSpace::Global, Type::F32));
        let k = b.add_param("k", Type::F32);
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let p = b.gep(buf, gid);
        let v = b.load(p);
        let d = b.bin(BinOp::Mul, v, k);
        b.store(p, d);
        b.ret(None);
        module_of(vec![b.finish()])
    }

    #[test]
    fn scales_a_buffer() {
        let m = scale_kernel();
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(4 * 8);
        mem.write_f32(buf, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let stats = Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "scale",
                NdRange::new_1d(8, 4),
                &[ArgValue::Buffer(buf), ArgValue::Scalar(Value::F32(3.0))],
            )
            .unwrap();
        assert_eq!(
            mem.read_f32(buf),
            vec![3.0, 6.0, 9.0, 12.0, 15.0, 18.0, 21.0, 24.0]
        );
        assert_eq!(stats.insns_per_wg.len(), 2);
        assert!(stats.total_insns > 0);
        assert_eq!(stats.mem_ops, 16); // 8 loads + 8 stores
    }

    /// Reduction with local memory + barriers:
    /// kernel void reduce(global i32* in, global i32* out, local i32* tmp)
    /// Each group sums its local slice tree-style and atomically adds to out[0].
    fn reduce_kernel() -> Module {
        let mut b = FunctionBuilder::new("reduce", FunctionKind::Kernel, Type::Void);
        let input = b.add_param("in", Type::ptr(AddressSpace::Global, Type::I32));
        let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::I32));
        let tmp = b.add_param("tmp", Type::ptr(AddressSpace::Local, Type::I32));
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let lid = b.work_item(WiBuiltin::LocalId, 0);
        // tmp[lid] = in[gid]
        let pin = b.gep(input, gid);
        let v = b.load(pin);
        let pt = b.gep(tmp, lid);
        b.store(pt, v);
        b.barrier();
        // for (s = lsize/2; s > 0; s >>= 1) { if (lid < s) tmp[lid]+=tmp[lid+s]; barrier; }
        let lsize = b.work_item(WiBuiltin::LocalSize, 0);
        let two = b.const_i64(2);
        let s0 = b.bin(BinOp::Div, lsize, two);
        let scell = b.alloca(Type::I64, 1, AddressSpace::Private);
        b.store(scell, s0);
        let header = b.new_block();
        let body = b.new_block();
        let merge = b.new_block();
        let cont = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let s = b.load(scell);
        let zero = b.const_i64(0);
        let c = b.cmp(CmpOp::Gt, s, zero);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let is_low = b.cmp(CmpOp::Lt, lid, s);
        let addbb = b.new_block();
        b.cond_br(is_low, addbb, merge);
        b.switch_to(addbb);
        let pa = b.gep(tmp, lid);
        let hi = b.bin(BinOp::Add, lid, s);
        let pb = b.gep(tmp, hi);
        let va = b.load(pa);
        let vb = b.load(pb);
        let sum = b.bin(BinOp::Add, va, vb);
        b.store(pa, sum);
        b.br(merge);
        b.switch_to(merge);
        b.barrier();
        b.br(cont);
        b.switch_to(cont);
        let s2 = b.load(scell);
        let one = b.const_i64(1);
        let shifted = b.bin(BinOp::Shr, s2, one);
        b.store(scell, shifted);
        b.br(header);
        b.switch_to(exit);
        // if (lid == 0) atomic_add(out, tmp[0])
        let z = b.const_i64(0);
        let is_master = b.cmp(CmpOp::Eq, lid, z);
        let do_add = b.new_block();
        let done = b.new_block();
        b.cond_br(is_master, do_add, done);
        b.switch_to(do_add);
        let p0 = b.gep(tmp, z);
        let total = b.load(p0);
        let _ = b.atomic_rmw(AtomicOp::Add, out, total);
        b.br(done);
        b.switch_to(done);
        b.ret(None);
        module_of(vec![b.finish()])
    }

    #[test]
    fn reduction_with_barriers_and_atomics() {
        let m = reduce_kernel();
        let mut mem = DeviceMemory::new();
        let input = mem.alloc(4 * 64);
        let out = mem.alloc(4);
        let data: Vec<i32> = (1..=64).collect();
        mem.write_i32(input, &data);
        let stats = Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "reduce",
                NdRange::new_1d(64, 16),
                &[
                    ArgValue::Buffer(input),
                    ArgValue::Buffer(out),
                    ArgValue::Local { elems: 16 },
                ],
            )
            .unwrap();
        assert_eq!(mem.read_i32(out)[0], (1..=64).sum::<i32>());
        assert_eq!(stats.atomic_ops, 4); // one per group
        assert!(stats.barriers > 0);
    }

    #[test]
    fn static_local_alloca_is_shared() {
        // kernel: local i32 cell[1]; if (lid==0) cell[0]=42; barrier; out[gid]=cell[0];
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::I32));
        let cell = b.alloca(Type::I32, 1, AddressSpace::Local);
        let lid = b.work_item(WiBuiltin::LocalId, 0);
        let zero = b.const_i64(0);
        let is0 = b.cmp(CmpOp::Eq, lid, zero);
        let wr = b.new_block();
        let join = b.new_block();
        b.cond_br(is0, wr, join);
        b.switch_to(wr);
        let c42 = b.const_i32(42);
        b.store(cell, c42);
        b.br(join);
        b.switch_to(join);
        b.barrier();
        let v = b.load(cell);
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let p = b.gep(out, gid);
        b.store(p, v);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let mut mem = DeviceMemory::new();
        let out_buf = mem.alloc(4 * 8);
        Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "k",
                NdRange::new_1d(8, 8),
                &[ArgValue::Buffer(out_buf)],
            )
            .unwrap();
        assert_eq!(mem.read_i32(out_buf), vec![42; 8]);
    }

    #[test]
    fn barrier_divergence_detected() {
        // if (lid == 0) barrier();   — divergent
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let lid = b.work_item(WiBuiltin::LocalId, 0);
        let zero = b.const_i64(0);
        let is0 = b.cmp(CmpOp::Eq, lid, zero);
        let t = b.new_block();
        let j = b.new_block();
        b.cond_br(is0, t, j);
        b.switch_to(t);
        b.barrier();
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let mut mem = DeviceMemory::new();
        let err = Interpreter::new(&m)
            .run_kernel(&mut mem, "k", NdRange::new_1d(4, 4), &[])
            .unwrap_err();
        assert!(matches!(err, InterpError::BarrierDivergence(_)), "{err}");
    }

    #[test]
    fn out_of_bounds_detected() {
        let m = scale_kernel();
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(4 * 4); // too small for 8 items
        let err = Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "scale",
                NdRange::new_1d(8, 4),
                &[ArgValue::Buffer(buf), ArgValue::Scalar(Value::F32(1.0))],
            )
            .unwrap_err();
        assert!(matches!(err, InterpError::OutOfBounds { .. }), "{err}");
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut b = FunctionBuilder::new("spin", FunctionKind::Kernel, Type::Void);
        let l = b.new_block();
        b.br(l);
        b.switch_to(l);
        let _ = b.const_i32(0);
        b.br(l);
        let m = module_of(vec![b.finish()]);
        let mut mem = DeviceMemory::new();
        let interp = Interpreter::with_config(
            &m,
            InterpConfig {
                step_limit: 1000,
                ..InterpConfig::default()
            },
        );
        let err = interp
            .run_kernel(&mut mem, "spin", NdRange::new_1d(1, 1), &[])
            .unwrap_err();
        assert!(matches!(err, InterpError::StepLimitExceeded(1000)));
    }

    #[test]
    fn helper_calls_work() {
        // helper f32 square(f32 x) { return x*x; }  kernel uses it.
        let mut h = FunctionBuilder::new("square", FunctionKind::Helper, Type::F32);
        let x = h.add_param("x", Type::F32);
        let xx = h.bin(BinOp::Mul, x, x);
        h.ret(Some(xx));

        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let buf = b.add_param("buf", Type::ptr(AddressSpace::Global, Type::F32));
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let p = b.gep(buf, gid);
        let v = b.load(p);
        let sq = b.call("square", vec![v], Type::F32).unwrap();
        b.store(p, sq);
        b.ret(None);
        let m = module_of(vec![h.finish(), b.finish()]);
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(4 * 4);
        mem.write_f32(buf, &[1.0, 2.0, 3.0, 4.0]);
        Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "k",
                NdRange::new_1d(4, 2),
                &[ArgValue::Buffer(buf)],
            )
            .unwrap();
        assert_eq!(mem.read_f32(buf), vec![1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn wrong_arg_kind_rejected() {
        let m = scale_kernel();
        let mut mem = DeviceMemory::new();
        let err = Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "scale",
                NdRange::new_1d(4, 4),
                &[
                    ArgValue::Scalar(Value::I32(0)),
                    ArgValue::Scalar(Value::F32(1.0)),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, InterpError::ArgMismatch(_)));
    }

    #[test]
    fn dyn_stats_imbalance() {
        let s = DynStats {
            insns_per_wg: vec![100, 100, 100, 100],
            ..DynStats::default()
        };
        assert!(s.wg_imbalance() < 1e-9);
        let s2 = DynStats {
            insns_per_wg: vec![10, 1000],
            ..DynStats::default()
        };
        assert!(s2.wg_imbalance() > 0.5);
        let s3 = DynStats::default();
        assert_eq!(s3.wg_imbalance(), 0.0);
    }

    #[test]
    fn ndrange_geometry() {
        let r = NdRange::new_2d([8, 4], [4, 2]);
        assert_eq!(r.num_groups(), [2, 2, 1]);
        assert_eq!(r.total_groups(), 4);
        assert_eq!(r.wg_size(), 8);
        assert_eq!(r.total_items(), 32);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn ndrange_rejects_indivisible() {
        let _ = NdRange::new_1d(10, 4);
    }

    #[test]
    fn parallel_matches_sequential_without_atomics() {
        let m = scale_kernel();
        let run = |parallel: bool| {
            let mut mem = DeviceMemory::new();
            let buf = mem.alloc(4 * 64);
            mem.write_f32(buf, &(0..64).map(|i| i as f32).collect::<Vec<_>>());
            let interp = Interpreter::new(&m);
            let args = [ArgValue::Buffer(buf), ArgValue::Scalar(Value::F32(2.5))];
            let nd = NdRange::new_1d(64, 4);
            let stats = if parallel {
                interp
                    .run_kernel_parallel_with(&mut mem, "scale", nd, &args, 4)
                    .unwrap()
            } else {
                interp.run_kernel(&mut mem, "scale", nd, &args).unwrap()
            };
            (mem, stats)
        };
        let (mem_seq, stats_seq) = run(false);
        let (mem_par, stats_par) = run(true);
        assert_eq!(mem_seq, mem_par, "device memory must be byte-identical");
        assert_eq!(stats_seq, stats_par, "all DynStats counters must match");
        assert!(Interpreter::new(&m).can_parallelize("scale"));
    }

    #[test]
    fn stealing_matches_static_and_sequential() {
        // 64 groups of wildly different cost (gid-dependent loop trip
        // counts) so static partitions are imbalanced and stealing really
        // redistributes ranges — outputs must still be bit-identical.
        let mut b = FunctionBuilder::new("tri", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::I64));
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let cell = b.alloca(Type::I64, 1, AddressSpace::Private);
        let zero = b.const_i64(0);
        b.store(cell, zero);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let i = b.load(cell);
        let c = b.cmp(CmpOp::Lt, i, gid);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let one = b.const_i64(1);
        let next = b.bin(BinOp::Add, i, one);
        b.store(cell, next);
        b.br(header);
        b.switch_to(exit);
        let total = b.load(cell);
        let p = b.gep(out, gid);
        b.store(p, total);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let run = |sched: Option<ParSchedule>, threads: usize| {
            let mut mem = DeviceMemory::new();
            let buf = mem.alloc(8 * 64);
            let interp = Interpreter::new(&m);
            let nd = NdRange::new_1d(64, 1);
            let args = [ArgValue::Buffer(buf)];
            let stats = match sched {
                None => interp.run_kernel(&mut mem, "tri", nd, &args).unwrap(),
                Some(s) => interp
                    .run_kernel_parallel_sched(&mut mem, "tri", nd, &args, threads, s)
                    .unwrap(),
            };
            (mem, stats)
        };
        let seq = run(None, 1);
        for threads in [2, 3, 4, 8] {
            let stat = run(Some(ParSchedule::Static), threads);
            let steal = run(Some(ParSchedule::Stealing), threads);
            assert_eq!(seq, stat, "static diverged at {threads} threads");
            assert_eq!(seq, steal, "stealing diverged at {threads} threads");
        }
        // The workload really is imbalanced (what stealing exists for).
        assert!(seq.1.wg_imbalance() > 0.5, "{}", seq.1.wg_imbalance());
    }

    #[test]
    fn steal_claims_taper_and_cover() {
        // Deep range spaces claim at the cap (the pre-taper behaviour);
        // tails and tiny launches taper toward single-group claims; and
        // for any (total, threads) the sequential claim walk covers
        // [0, total) exactly, never stalling and never growing as the
        // cursor advances.
        assert_eq!(steal_claim(10_000, 4, 0), STEAL_RANGE);
        assert_eq!(steal_claim(64, 1, 0), STEAL_RANGE);
        assert_eq!(steal_claim(9, 4, 0), 1);
        assert_eq!(steal_claim(0, 4, 0), 1);
        for total in 0..=128usize {
            for threads in 1..=9usize {
                let mut lo = 0usize;
                let mut prev = usize::MAX;
                while lo < total {
                    let c = steal_claim(total, threads, lo);
                    assert!((1..=STEAL_RANGE).contains(&c), "claim {c} at {lo}");
                    assert!(c <= prev, "claim grew from {prev} to {c} at {lo}");
                    prev = c;
                    lo += c;
                }
            }
        }
        // A 1–9-group launch on several threads never hands one thread
        // more than a taper-sized bite, so every thread can participate.
        for total in 1..=9usize {
            for threads in 2..=8usize {
                assert!(
                    steal_claim(total, threads, 0) <= 1.max(total / 2),
                    "{total} groups on {threads} threads monopolised"
                );
            }
        }
    }

    #[test]
    fn stealing_reports_the_lowest_failing_group() {
        // Group `gid` indexes out of bounds once gid >= 24: the parallel
        // schedules must report the same error the sequential interpreter
        // stops at (flat group 24, offset 96), not whichever thread
        // failed first — a later group's out-of-bounds carries a larger
        // offset, so rendered-message equality pins the selection.
        let m = scale_kernel();
        let run = |sched: Option<ParSchedule>| -> InterpError {
            let mut mem = DeviceMemory::new();
            let buf = mem.alloc(4 * 24);
            let interp = Interpreter::new(&m);
            let nd = NdRange::new_1d(64, 1);
            let args = [ArgValue::Buffer(buf), ArgValue::Scalar(Value::F32(1.0))];
            match sched {
                None => interp.run_kernel(&mut mem, "scale", nd, &args),
                Some(s) => interp.run_kernel_parallel_sched(&mut mem, "scale", nd, &args, 4, s),
            }
            .unwrap_err()
        };
        let seq = run(None);
        assert!(matches!(seq, InterpError::OutOfBounds { .. }), "{seq}");
        for sched in [ParSchedule::Static, ParSchedule::Stealing] {
            let err = run(Some(sched));
            assert_eq!(
                format!("{err}"),
                format!("{seq}"),
                "{sched:?} must report the sequential interpreter's error"
            );
        }
    }

    #[test]
    fn discarded_global_atomics_parallelize_deterministically() {
        // The reduce kernel's only contended access is an atomic_add whose
        // result is discarded — order-independent, so the race analysis
        // admits it for cross-group parallelism (the old global-atomics
        // gate forced it sequential).
        let m = reduce_kernel();
        assert!(
            Interpreter::new(&m).can_parallelize("reduce"),
            "order-independent global atomic_add must parallelize"
        );
        let run = |threads: usize| {
            let mut mem = DeviceMemory::new();
            let input = mem.alloc(4 * 64);
            let out = mem.alloc(4);
            mem.write_i32(input, &(1..=64).collect::<Vec<_>>());
            let stats = Interpreter::new(&m)
                .run_kernel_parallel_with(
                    &mut mem,
                    "reduce",
                    NdRange::new_1d(64, 16),
                    &[
                        ArgValue::Buffer(input),
                        ArgValue::Buffer(out),
                        ArgValue::Local { elems: 16 },
                    ],
                    threads,
                )
                .unwrap();
            (mem.read_i32(out)[0], stats)
        };
        let (seq_sum, seq_stats) = run(1);
        assert_eq!(seq_sum, (1..=64).sum::<i32>());
        let (par_sum, par_stats) = run(4);
        assert_eq!(par_sum, seq_sum);
        assert_eq!(
            seq_stats, par_stats,
            "deterministic contention must keep stats bit-identical"
        );
    }

    #[test]
    fn used_atomic_results_fall_back_to_sequential() {
        // atomic_add whose old value lands in the output: order-dependent,
        // so the gate must refuse parallel execution — while the fallback
        // still runs the kernel correctly.
        let mut b = FunctionBuilder::new("rank", FunctionKind::Kernel, Type::Void);
        let ctr = b.add_param("ctr", Type::ptr(AddressSpace::Global, Type::I32));
        let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::I32));
        let zero = b.const_i64(0);
        let pc = b.gep(ctr, zero);
        let one = b.const_i32(1);
        let old = b.atomic_rmw(AtomicOp::Add, pc, one);
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let po = b.gep(out, gid);
        b.store(po, old);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let interp = Interpreter::new(&m);
        assert!(!interp.can_parallelize("rank"));
        let nd = NdRange::new_1d(16, 4);
        let mut mem = DeviceMemory::new();
        let ctr = mem.alloc(4);
        let out = mem.alloc(4 * 16);
        let args = [ArgValue::Buffer(ctr), ArgValue::Buffer(out)];
        assert!(!interp.parallel_eligible("rank", nd, &args));
        interp
            .run_kernel_parallel_with(&mut mem, "rank", nd, &args, 4)
            .unwrap();
        // Sequential fallback assigns ranks in flat group order.
        assert_eq!(mem.read_i32(out), (0..16).collect::<Vec<_>>());
        assert_eq!(mem.read_i32(ctr), vec![16]);
    }

    #[test]
    fn oracle_flags_racy_and_clears_safe_kernels() {
        // scale: every item touches its own element — clean oracle.
        let m = scale_kernel();
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(4 * 8);
        mem.write_f32(buf, &[1.0; 8]);
        let (stats, report) = Interpreter::new(&m)
            .run_kernel_oracle(
                &mut mem,
                "scale",
                NdRange::new_1d(8, 2),
                &[ArgValue::Buffer(buf), ArgValue::Scalar(Value::F32(2.0))],
            )
            .unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(stats.insns_per_wg.len(), 4);
        assert_eq!(mem.read_f32(buf), vec![2.0; 8]);

        // Every item plainly stores to element 0 — cross-group write-write.
        let mut b = FunctionBuilder::new("clobber", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::I32));
        let zero = b.const_i64(0);
        let p = b.gep(out, zero);
        let seven = b.const_i32(7);
        b.store(p, seven);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(4);
        let (_, report) = Interpreter::new(&m)
            .run_kernel_oracle(
                &mut mem,
                "clobber",
                NdRange::new_1d(8, 2),
                &[ArgValue::Buffer(buf)],
            )
            .unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.conflicts[0].kind, OracleConflictKind::WriteWrite);
        assert_eq!(report.total, 4, "all four bytes of the cell conflict");

        // Contended atomic adds: synchronized, not a race.
        let mut b = FunctionBuilder::new("count", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::I32));
        let zero = b.const_i64(0);
        let p = b.gep(out, zero);
        let one = b.const_i32(1);
        let _ = b.atomic_rmw(AtomicOp::Add, p, one);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(4);
        let (_, report) = Interpreter::new(&m)
            .run_kernel_oracle(
                &mut mem,
                "count",
                NdRange::new_1d(8, 2),
                &[ArgValue::Buffer(buf)],
            )
            .unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(mem.read_i32(buf), vec![8]);
    }

    #[test]
    fn oracle_flags_cross_group_read_after_write() {
        // Item gid reads element gid and writes element gid+1: group 0
        // writes element 4, which group 1 then reads.
        let mut b = FunctionBuilder::new("chain", FunctionKind::Kernel, Type::Void);
        let buf = b.add_param("buf", Type::ptr(AddressSpace::Global, Type::I32));
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let pr = b.gep(buf, gid);
        let v = b.load(pr);
        let one = b.const_i64(1);
        let next = b.bin(BinOp::Add, gid, one);
        let pw = b.gep(buf, next);
        let v32 = v; // already i32
        b.store(pw, v32);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(4 * 9);
        let (_, report) = Interpreter::new(&m)
            .run_kernel_oracle(
                &mut mem,
                "chain",
                NdRange::new_1d(8, 4),
                &[ArgValue::Buffer(buf)],
            )
            .unwrap();
        assert!(!report.is_clean());
        assert!(report
            .conflicts
            .iter()
            .any(|c| c.kind == OracleConflictKind::ReadAfterForeignWrite));
    }

    #[test]
    fn misaligned_global_atomic_is_a_deterministic_error() {
        // Verified IR cannot produce a misaligned atomic (gep strides are
        // pointee sizes and atomics require integer pointees), so this
        // exercises the interpreter's defense-in-depth guard with a
        // deliberately unverified module: an atomic_add through a bool*
        // gep'd to byte offset 2.
        let mut b = FunctionBuilder::new("mis", FunctionKind::Kernel, Type::Void);
        let raw = b.add_param("raw", Type::ptr(AddressSpace::Global, Type::Bool));
        let two = b.const_i64(2);
        let p = b.gep(raw, two); // byte offset 2
        let one = b.const_i32(1);
        let _ = b.atomic_rmw(AtomicOp::Add, p, one);
        b.ret(None);
        let mut m = Module::new();
        m.insert_function(b.finish());
        let run = |threads: usize| {
            let mut mem = DeviceMemory::new();
            let buf = mem.alloc(8);
            let interp = Interpreter::new(&m);
            let nd = NdRange::new_1d(4, 2);
            let args = [ArgValue::Buffer(buf)];
            if threads == 0 {
                interp.run_kernel(&mut mem, "mis", nd, &args)
            } else {
                interp.run_kernel_parallel_with(&mut mem, "mis", nd, &args, threads)
            }
            .unwrap_err()
        };
        let seq = run(0);
        assert!(format!("{seq}").contains("misaligned"), "{seq}");
        assert_eq!(format!("{}", run(1)), format!("{seq}"));
        assert_eq!(format!("{}", run(4)), format!("{seq}"));
    }

    #[test]
    fn local_atomics_do_not_disqualify_parallelism() {
        // Atomic on a *local* pointer: safe under group-level parallelism.
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::I32));
        let cell = b.alloca(Type::I32, 1, AddressSpace::Local);
        let one = b.const_i32(1);
        let _ = b.atomic_rmw(AtomicOp::Add, cell, one);
        b.barrier();
        let v = b.load(cell);
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let p = b.gep(out, gid);
        b.store(p, v);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        assert!(Interpreter::new(&m).can_parallelize("k"));
        let run = |threads: usize| {
            let mut mem = DeviceMemory::new();
            let buf = mem.alloc(4 * 16);
            Interpreter::new(&m)
                .run_kernel_parallel_with(
                    &mut mem,
                    "k",
                    NdRange::new_1d(16, 4),
                    &[ArgValue::Buffer(buf)],
                    threads,
                )
                .unwrap();
            mem.read_i32(buf)
        };
        assert_eq!(run(1), vec![4; 16]);
        assert_eq!(run(4), vec![4; 16]);
    }

    #[test]
    fn scratch_reuse_is_invisible_across_groups() {
        // Local memory + private allocas + helper calls across many groups:
        // the recycled scratch must behave exactly like fresh state (zeroed
        // local arena, empty private arena, argument registers reset).
        let mut h = FunctionBuilder::new("twice", FunctionKind::Helper, Type::I32);
        let x = h.add_param("x", Type::I32);
        let two = h.const_i32(2);
        let xx = h.bin(BinOp::Mul, x, two);
        h.ret(Some(xx));

        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::I32));
        let lcell = b.alloca(Type::I32, 1, AddressSpace::Local);
        let pcell = b.alloca(Type::I32, 1, AddressSpace::Private);
        // Fresh local and private cells must read as zero in every group.
        let l0 = b.load(lcell);
        let p0 = b.load(pcell);
        let lid = b.work_item(WiBuiltin::LocalId, 0);
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let gid32 = b.cast(Type::I32, gid);
        let doubled = b.call("twice", vec![gid32], Type::I32).unwrap();
        let zero_sum = b.bin(BinOp::Add, l0, p0);
        let v = b.bin(BinOp::Add, doubled, zero_sum);
        let p = b.gep(out, gid);
        b.store(p, v);
        // Dirty the cells so reuse would be visible without re-zeroing.
        let seven = b.const_i32(7);
        b.store(lcell, seven);
        b.store(pcell, seven);
        let _ = b.cmp(CmpOp::Eq, lid, gid);
        b.ret(None);
        let m = module_of(vec![h.finish(), b.finish()]);
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(4 * 32);
        // One work item per group so the local cell is group-fresh by
        // construction — what is being exercised is scratch reuse *across*
        // the 32 groups.
        let stats = Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "k",
                NdRange::new_1d(32, 1),
                &[ArgValue::Buffer(buf)],
            )
            .unwrap();
        assert_eq!(
            mem.read_i32(buf),
            (0..32).map(|i| i * 2).collect::<Vec<_>>()
        );
        assert_eq!(stats.insns_per_wg.len(), 32);
        // Every group executes the same instruction count here.
        assert!(stats.insns_per_wg.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn pointer_roundtrip_through_memory() {
        // Store a pointer into a private cell and load it back.
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let buf = b.add_param("buf", Type::ptr(AddressSpace::Global, Type::I32));
        let pp = b.alloca(
            Type::ptr(AddressSpace::Global, Type::I32),
            1,
            AddressSpace::Private,
        );
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let elt = b.gep(buf, gid);
        b.store(pp, elt);
        let elt2 = b.load(pp);
        let seven = b.const_i32(7);
        b.store(elt2, seven);
        b.ret(None);
        let m = module_of(vec![b.finish()]);
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(4 * 4);
        Interpreter::new(&m)
            .run_kernel(
                &mut mem,
                "k",
                NdRange::new_1d(4, 4),
                &[ArgValue::Buffer(buf)],
            )
            .unwrap();
        assert_eq!(mem.read_i32(buf), vec![7; 4]);
    }
}
