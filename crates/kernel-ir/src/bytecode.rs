//! # Bytecode execution tier
//!
//! A compile-and-execute tier for the functional plane: kernel functions are
//! lowered once per launch into a dense register bytecode (flat instruction
//! array, resolved branch targets, pre-computed frame sizes), optionally run
//! through a launch-specialising optimizer, and executed by a flat-dispatch
//! VM that shares the NDRange group loop — and therefore the flat group
//! order and both [`ParSchedule`] work
//! distributions — with the tree-walking interpreter.
//!
//! ## Pipeline
//!
//! 1. **Lowering** (`lower`) — each reachable function becomes a list of
//!    `BcInsn` blocks. Every non-terminator IR instruction lowers to
//!    exactly one bytecode instruction of *weight* 1; terminators lower to
//!    explicit `Jump`/`Branch`/`Ret` instructions of weight 0. Loads carry
//!    their pre-resolved result type and size, geps their pointee stride,
//!    calls their resolved callee index, and static local allocas their
//!    pre-planned arena offset — the per-dispatch lookups the tree-walker
//!    pays on every execution.
//! 2. **Optimization** (`optimize`, the `BytecodeOpt` tier) — a
//!    once-per-launch pipeline of constant folding over the concrete launch
//!    (scalar *and* pointer arguments are known values at launch time,
//!    launch-uniform work-item builtins are constants of the NDRange),
//!    dead-code elimination, and no-op coalescing. Folded and dead
//!    instructions are not deleted: they become weight-carrying
//!    `BcInsn::Nop`s, kept in place and merged only within their block, so
//!    the executed-instruction accounting (`DynStats::insns_per_wg`, the
//!    input to the paper's §3 fair-sharing equations and the timing
//!    simulator) stays **bit-identical** to the tree-walker. Folded results
//!    are hoisted into a per-launch *preamble*: a template register file the
//!    VM seeds each frame from with one copy.
//! 3. **Layout** (`layout`) — blocks are flattened into one program-wide
//!    instruction array with branch targets resolved to absolute pcs and
//!    per-function entry pcs and frame sizes recorded.
//!
//! ## Fallback rules
//!
//! Lowering is total for verified modules. Constructs whose tree-walker
//! semantics are load-bearing error paths — unknown callees (a runtime
//! [`InterpError::UnknownFunction`] *only if reached*), allocas in
//! non-stack address spaces, local allocas outside the kernel entry
//! function, loads without a result, unterminated blocks — refuse to lower
//! ([`LowerError`]) and [`Interpreter::run_kernel_bytecode`] transparently
//! falls back to the tree-walking interpreter, which reproduces the exact
//! runtime behaviour.
//!
//! ## Identity contract
//!
//! For every verified module and launch, all three tiers produce the same
//! `DeviceMemory` bytes, the same `DynStats` (every counter, including the
//! per-group instruction histogram) and the same `Result`. The optimized
//! tier additionally assumes the module is *well-typed* (verifier-clean):
//! dead code it eliminates can no longer raise type-confusion
//! `InterpError::Invalid` errors that the tree-walker would only hit when
//! actually executing the dead instructions. Divide-by-zero and other
//! value-dependent traps are never folded or eliminated.

use crate::error::InterpError;
use crate::interp::{
    apply_atomic, bounds, decode_value, default_interp_threads, encode_value, eval_bin, eval_cast,
    eval_cmp, eval_un, interp_size, run_groups_seq_sched, run_groups_static_sched,
    run_groups_stealing_sched, Arena, ArgValue, DeviceMemory, DynStats, GlobalMem, Interpreter,
    LaunchSetup, NdRange, ParSchedule, PtrVal, RegsPool, Value, WiCtx, WiStatus,
};
use crate::ir::{AtomicOp, BinOp, CmpOp, ConstVal, Module, Op, Terminator, UnOp, WiBuiltin};
use crate::types::{AddressSpace, Type};

/// Which execution tier the functional plane runs kernels on.
///
/// The default for freshly constructed [`Interpreter`]s is
/// [`ExecTier::TreeWalk`] (the historical behaviour); the runtime entry
/// points (`clrt::queue`, `ProxyCl::run_functional`) select
/// [`ExecTier::from_env`], which defaults to the optimized bytecode tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTier {
    /// The original tree-walking interpreter.
    TreeWalk,
    /// Dense register bytecode, lowered per launch but not optimized.
    Bytecode,
    /// Bytecode plus the launch-specialising optimization pipeline
    /// (constant folding, invariant hoisting into the per-launch preamble,
    /// dead-code elimination).
    BytecodeOpt,
}

impl ExecTier {
    /// Tier selected by the `ACCELOS_EXEC_TIER` environment variable:
    /// `tree`, `bytecode` or `bytecode-opt`. Unset (and unrecognised)
    /// values select [`ExecTier::BytecodeOpt`].
    pub fn from_env() -> Self {
        match std::env::var("ACCELOS_EXEC_TIER").ok().as_deref() {
            Some("tree") => ExecTier::TreeWalk,
            Some("bytecode") => ExecTier::Bytecode,
            _ => ExecTier::BytecodeOpt,
        }
    }
}

/// Register sentinel for "no destination" / "no value".
const NO_REG: u32 = u32::MAX;

/// Why a module refused to lower to bytecode (the caller falls back to the
/// tree-walking interpreter, which implements the construct's — typically
/// error-path — semantics directly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(pub(crate) String);

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bytecode lowering unsupported: {}", self.0)
    }
}

/// One dense bytecode instruction. Registers are `u32` indices into the
/// frame's register file ([`NO_REG`] = none); branch targets are block
/// indices until [`layout`] resolves them to absolute pcs.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum BcInsn {
    /// Placeholder for `weight` folded/eliminated source instructions;
    /// keeps `DynStats` accounting and the step limit bit-identical.
    Nop {
        /// How many source instructions this stands for.
        weight: u64,
    },
    /// `dst = val`.
    Const { dst: u32, val: Value },
    /// `dst = a <op> b`.
    Bin { op: BinOp, dst: u32, a: u32, b: u32 },
    /// `dst = <op> a`.
    Un { op: UnOp, dst: u32, a: u32 },
    /// `dst = a <cmp> b`.
    Cmp { op: CmpOp, dst: u32, a: u32, b: u32 },
    /// `dst = cond ? a : b` (only the chosen side is read).
    Select { dst: u32, cond: u32, a: u32, b: u32 },
    /// `dst = cast<ty>(a)`.
    Cast { dst: u32, ty: Box<Type>, a: u32 },
    /// Grow the work item's private arena by `bytes`; `dst` = old top.
    AllocaPriv { dst: u32, bytes: usize },
    /// Pre-planned static local-memory slot at `off`.
    AllocaLocal { dst: u32, off: usize },
    /// `dst = *(ty*)ptr` — result type and size resolved at lowering.
    Load {
        dst: u32,
        ptr: u32,
        ty: Box<Type>,
        size: usize,
    },
    /// `*ptr = value` (size from the runtime value, like the tree-walker).
    Store { ptr: u32, value: u32 },
    /// `dst = ptr + index * stride` — stride resolved at lowering.
    Gep {
        dst: u32,
        ptr: u32,
        index: u32,
        stride: usize,
    },
    /// Call of the function at index `func`, callee resolved at lowering.
    Call {
        dst: u32,
        func: u32,
        args: Box<[u32]>,
    },
    /// Work-item builtin (the launch-varying ones; launch-uniform builtins
    /// fold in the optimized tier).
    WorkItem {
        dst: u32,
        builtin: WiBuiltin,
        dim: u8,
    },
    /// Atomic read-modify-write; `dst` = previous value.
    AtomicRmw {
        op: AtomicOp,
        dst: u32,
        ptr: u32,
        value: u32,
    },
    /// Atomic compare-and-swap; `dst` = previous value.
    AtomicCmpXchg {
        dst: u32,
        ptr: u32,
        expected: u32,
        desired: u32,
    },
    /// Work-group barrier.
    Barrier,
    /// Unconditional branch (weight 0; counts one step like an IR
    /// terminator).
    Jump { target: u32 },
    /// Conditional branch on a `bool` register.
    Branch { cond: u32, then_t: u32, else_t: u32 },
    /// Function return ([`NO_REG`] = void).
    Ret { val: u32 },
}

/// A lowered function in block-structured form (pre-[`layout`]).
#[derive(Debug, Clone)]
pub(crate) struct BcFuncBody {
    name: String,
    frame_regs: usize,
    /// Blocks of instructions; `Jump`/`Branch` targets are block indices.
    blocks: Vec<Vec<BcInsn>>,
    /// Per-launch preamble: initial register file every frame of this
    /// function is seeded from. For the entry function it carries the
    /// launch arguments; [`optimize`] adds folded kernel invariants.
    template: Vec<Option<Value>>,
}

/// A lowered module in block-structured form. Function 0 is the kernel
/// entry.
#[derive(Debug, Clone)]
pub(crate) struct BcModule {
    funcs: Vec<BcFuncBody>,
}

/// Flat, pc-resolved metadata for one function.
#[derive(Debug)]
struct BcFunc {
    name: String,
    entry_pc: u32,
    frame_regs: usize,
    template: Box<[Option<Value>]>,
}

/// A laid-out bytecode program: one flat instruction array for all
/// functions, branch targets resolved to absolute pcs.
#[derive(Debug)]
pub(crate) struct BcProgram {
    insns: Vec<BcInsn>,
    funcs: Vec<BcFunc>,
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// Lower the entry kernel (and every function reachable from it) to
/// block-structured bytecode, resolving loads' types/sizes, geps' strides,
/// callee indices and static local-memory offsets.
pub(crate) fn lower(module: &Module, setup: &LaunchSetup<'_>) -> Result<BcModule, LowerError> {
    // Worklist discovery: entry first (function index 0), callees in
    // first-call order.
    let mut order: Vec<usize> = vec![setup.func_idx];
    let mut bc_index_of = vec![u32::MAX; module.functions.len()];
    bc_index_of[setup.func_idx] = 0;
    let mut cursor = 0;
    while cursor < order.len() {
        let func = &module.functions[order[cursor]];
        cursor += 1;
        for block in &func.blocks {
            for inst in &block.insts {
                if let Op::Call { callee, .. } = &inst.op {
                    let idx = module
                        .functions
                        .iter()
                        .position(|f| f.name == *callee)
                        .ok_or_else(|| LowerError(format!("unknown callee `{callee}`")))?;
                    if bc_index_of[idx] == u32::MAX {
                        bc_index_of[idx] = order.len() as u32;
                        order.push(idx);
                    }
                }
            }
        }
    }

    let mut funcs = Vec::with_capacity(order.len());
    for (bc_idx, &func_idx) in order.iter().enumerate() {
        let func = &module.functions[func_idx];
        let is_entry = bc_idx == 0;
        let mut blocks = Vec::with_capacity(func.blocks.len());
        for (bid, block) in func.blocks.iter().enumerate() {
            let mut insns = Vec::with_capacity(block.insts.len() + 1);
            for (ip, inst) in block.insts.iter().enumerate() {
                let dst = inst.result.map(|r| r.0).unwrap_or(NO_REG);
                let insn = match &inst.op {
                    Op::Const(c) => BcInsn::Const {
                        dst,
                        val: const_value(c),
                    },
                    Op::Bin(op, a, b) => BcInsn::Bin {
                        op: *op,
                        dst,
                        a: a.0,
                        b: b.0,
                    },
                    Op::Un(op, a) => BcInsn::Un {
                        op: *op,
                        dst,
                        a: a.0,
                    },
                    Op::Cmp(op, a, b) => BcInsn::Cmp {
                        op: *op,
                        dst,
                        a: a.0,
                        b: b.0,
                    },
                    Op::Select(c, a, b) => BcInsn::Select {
                        dst,
                        cond: c.0,
                        a: a.0,
                        b: b.0,
                    },
                    Op::Cast(ty, a) => BcInsn::Cast {
                        dst,
                        ty: Box::new(ty.clone()),
                        a: a.0,
                    },
                    Op::Alloca { elem, count, space } => match space {
                        AddressSpace::Private => BcInsn::AllocaPriv {
                            dst,
                            bytes: interp_size(elem) * (*count as usize),
                        },
                        AddressSpace::Local => {
                            if !is_entry {
                                return Err(LowerError(
                                    "local alloca outside the kernel entry function".into(),
                                ));
                            }
                            let off = setup
                                .static_local
                                .iter()
                                .find(|(b, i, _)| b.index() == bid && *i == ip)
                                .map(|(_, _, off)| *off)
                                .ok_or_else(|| LowerError("unplanned local alloca".into()))?;
                            BcInsn::AllocaLocal { dst, off }
                        }
                        other => {
                            return Err(LowerError(format!("alloca in {other}")));
                        }
                    },
                    Op::Load(p) => {
                        let result = inst
                            .result
                            .ok_or_else(|| LowerError("load without a result".into()))?;
                        let ty = func.value_type(result).clone();
                        let size = interp_size(&ty);
                        BcInsn::Load {
                            dst,
                            ptr: p.0,
                            ty: Box::new(ty),
                            size,
                        }
                    }
                    Op::Store { ptr, value } => BcInsn::Store {
                        ptr: ptr.0,
                        value: value.0,
                    },
                    Op::Gep { ptr, index } => {
                        let stride = interp_size(
                            func.value_type(*ptr)
                                .pointee()
                                .ok_or_else(|| LowerError("gep on non-pointer".into()))?,
                        );
                        BcInsn::Gep {
                            dst,
                            ptr: ptr.0,
                            index: index.0,
                            stride,
                        }
                    }
                    Op::Call { callee, args } => {
                        let idx = module
                            .functions
                            .iter()
                            .position(|f| f.name == *callee)
                            .expect("resolved during discovery");
                        BcInsn::Call {
                            dst,
                            func: bc_index_of[idx],
                            args: args.iter().map(|a| a.0).collect(),
                        }
                    }
                    Op::WorkItem { builtin, dim } => BcInsn::WorkItem {
                        dst,
                        builtin: *builtin,
                        dim: *dim,
                    },
                    Op::AtomicRmw { op, ptr, value } => BcInsn::AtomicRmw {
                        op: *op,
                        dst,
                        ptr: ptr.0,
                        value: value.0,
                    },
                    Op::AtomicCmpXchg {
                        ptr,
                        expected,
                        desired,
                    } => BcInsn::AtomicCmpXchg {
                        dst,
                        ptr: ptr.0,
                        expected: expected.0,
                        desired: desired.0,
                    },
                    Op::Barrier => BcInsn::Barrier,
                };
                insns.push(insn);
            }
            match block
                .term
                .as_ref()
                .ok_or_else(|| LowerError("unterminated block".into()))?
            {
                Terminator::Br(b) => insns.push(BcInsn::Jump { target: b.0 }),
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => insns.push(BcInsn::Branch {
                    cond: cond.0,
                    then_t: then_bb.0,
                    else_t: else_bb.0,
                }),
                Terminator::Ret(v) => insns.push(BcInsn::Ret {
                    val: v.map(|v| v.0).unwrap_or(NO_REG),
                }),
            }
            blocks.push(insns);
        }
        let mut template = vec![None; func.value_types.len()];
        if is_entry {
            for (i, plan) in setup.arg_plan.iter().enumerate() {
                let crate::interp::ArgPlan::Value(v) = plan;
                template[i] = Some(*v);
            }
        }
        funcs.push(BcFuncBody {
            name: func.name.clone(),
            frame_regs: func.value_types.len(),
            blocks,
            template,
        });
    }
    Ok(BcModule { funcs })
}

fn const_value(c: &ConstVal) -> Value {
    match c {
        ConstVal::Bool(b) => Value::Bool(*b),
        ConstVal::I32(x) => Value::I32(*x),
        ConstVal::I64(x) => Value::I64(*x),
        ConstVal::F32(x) => Value::F32(*x),
        ConstVal::F64(x) => Value::F64(*x),
    }
}

// ---------------------------------------------------------------------------
// Optimization
// ---------------------------------------------------------------------------

/// The once-per-launch optimization pipeline: constant folding against the
/// concrete launch (arguments, NDRange-uniform builtins, static local
/// offsets), dead-code elimination, and no-op coalescing. All of it is
/// weight-preserving: per-block instruction-weight totals — and therefore
/// `DynStats::insns_per_wg`, the step limit and the timing simulator's
/// inputs — are unchanged.
pub(crate) fn optimize(bc: &mut BcModule, ndrange: NdRange) {
    for func in &mut bc.funcs {
        fold_function(func, ndrange);
        dce_function(func);
        coalesce_nops(func);
    }
}

/// Fold instructions whose operands are launch-time constants. Folding
/// only fires when the interpreter's own evaluation succeeds — an
/// instruction that would trap (divide by zero, type confusion) stays in
/// place so the trap still happens if (and only if) the instruction is
/// actually executed.
fn fold_function(func: &mut BcFuncBody, ndrange: NdRange) {
    // Single-assignment registers: one defining instruction per register,
    // so a simple fixpoint over `known` values converges regardless of
    // block order.
    let mut known: Vec<Option<Value>> = func.template.clone();
    loop {
        let mut changed = false;
        for block in &mut func.blocks {
            for insn in block.iter_mut() {
                let get = |r: u32| known.get(r as usize).copied().flatten();
                let folded: Option<(u32, Value)> = match insn {
                    BcInsn::Const { dst, val } => Some((*dst, *val)),
                    BcInsn::Bin { op, dst, a, b } => match (get(*a), get(*b)) {
                        (Some(va), Some(vb)) => eval_bin(*op, va, vb).ok().map(|v| (*dst, v)),
                        _ => None,
                    },
                    BcInsn::Un { op, dst, a } => {
                        get(*a).and_then(|va| eval_un(*op, va).ok().map(|v| (*dst, v)))
                    }
                    BcInsn::Cmp { op, dst, a, b } => match (get(*a), get(*b)) {
                        (Some(va), Some(vb)) => {
                            eval_cmp(*op, va, vb).ok().map(|v| (*dst, Value::Bool(v)))
                        }
                        _ => None,
                    },
                    BcInsn::Select { dst, cond, a, b } => match get(*cond) {
                        Some(Value::Bool(c)) => get(if c { *a } else { *b }).map(|v| (*dst, v)),
                        _ => None,
                    },
                    BcInsn::Cast { dst, ty, a } => {
                        get(*a).and_then(|va| eval_cast(ty, va).ok().map(|v| (*dst, v)))
                    }
                    BcInsn::Gep {
                        dst,
                        ptr,
                        index,
                        stride,
                    } => match (get(*ptr), get(*index)) {
                        (Some(Value::Ptr(p)), Some(idx)) => idx.as_i64().ok().map(|i| {
                            (
                                *dst,
                                Value::Ptr(PtrVal {
                                    arena: p.arena,
                                    byte_off: p.byte_off + i * *stride as i64,
                                }),
                            )
                        }),
                        _ => None,
                    },
                    BcInsn::WorkItem { dst, builtin, dim } => {
                        // Launch-uniform builtins only; per-item builtins
                        // (global/local/group id) vary within the launch.
                        // `dim > 2` panics in both tiers when executed, so
                        // it must stay in place.
                        let d = *dim as usize;
                        let v = match builtin {
                            WiBuiltin::GlobalSize if d <= 2 => Some(ndrange.global[d]),
                            WiBuiltin::LocalSize if d <= 2 => Some(ndrange.local[d]),
                            WiBuiltin::NumGroups if d <= 2 => Some(ndrange.num_groups()[d]),
                            WiBuiltin::WorkDim => Some(ndrange.work_dim as usize),
                            _ => None,
                        };
                        v.map(|v| (*dst, Value::I64(v as i64)))
                    }
                    // Static local slots have launch-time offsets and no
                    // side effect (the arena is pre-sized from the plan).
                    BcInsn::AllocaLocal { dst, off } => Some((
                        *dst,
                        Value::Ptr(PtrVal {
                            arena: Arena::Local,
                            byte_off: *off as i64,
                        }),
                    )),
                    // AllocaPriv grows the private arena (a side effect);
                    // loads, stores, calls, atomics and barriers are never
                    // folded.
                    _ => None,
                };
                if let Some((dst, val)) = folded {
                    if dst != NO_REG {
                        known[dst as usize] = Some(val);
                        func.template[dst as usize] = Some(val);
                    }
                    *insn = BcInsn::Nop { weight: 1 };
                    changed = true;
                }
            }
        }
        if !changed {
            return;
        }
    }
}

/// Replace pure, trap-free instructions whose result is never read with
/// weight-1 no-ops, iterating to fixpoint so chains of dead instructions
/// dissolve. Assumes a verifier-clean (well-typed) module: a type-confused
/// instruction in dead code would trap in the tree-walker but no longer
/// executes here.
fn dce_function(func: &mut BcFuncBody) {
    loop {
        let mut used = vec![false; func.frame_regs];
        let mut mark = |r: u32| {
            if r != NO_REG {
                used[r as usize] = true;
            }
        };
        for block in &func.blocks {
            for insn in block {
                match insn {
                    BcInsn::Nop { .. }
                    | BcInsn::Const { .. }
                    | BcInsn::AllocaPriv { .. }
                    | BcInsn::AllocaLocal { .. }
                    | BcInsn::WorkItem { .. }
                    | BcInsn::Barrier
                    | BcInsn::Jump { .. } => {}
                    BcInsn::Bin { a, b, .. } | BcInsn::Cmp { a, b, .. } => {
                        mark(*a);
                        mark(*b);
                    }
                    BcInsn::Un { a, .. } | BcInsn::Cast { a, .. } => mark(*a),
                    BcInsn::Select { cond, a, b, .. } => {
                        mark(*cond);
                        mark(*a);
                        mark(*b);
                    }
                    BcInsn::Load { ptr, .. } => mark(*ptr),
                    BcInsn::Store { ptr, value } => {
                        mark(*ptr);
                        mark(*value);
                    }
                    BcInsn::Gep { ptr, index, .. } => {
                        mark(*ptr);
                        mark(*index);
                    }
                    BcInsn::Call { args, .. } => {
                        for a in args.iter() {
                            mark(*a);
                        }
                    }
                    BcInsn::AtomicRmw { ptr, value, .. } => {
                        mark(*ptr);
                        mark(*value);
                    }
                    BcInsn::AtomicCmpXchg {
                        ptr,
                        expected,
                        desired,
                        ..
                    } => {
                        mark(*ptr);
                        mark(*expected);
                        mark(*desired);
                    }
                    BcInsn::Branch { cond, .. } => mark(*cond),
                    BcInsn::Ret { val } => mark(*val),
                }
            }
        }
        let mut changed = false;
        for block in &mut func.blocks {
            for insn in block.iter_mut() {
                let dead_dst = match insn {
                    // Pure and trap-free on well-typed IR. Div/Rem (divide
                    // by zero), AllocaPriv (arena growth), memory ops,
                    // calls, atomics and barriers are excluded; WorkItem
                    // with dim > 2 panics when executed, so it stays.
                    BcInsn::Const { dst, .. }
                    | BcInsn::Select { dst, .. }
                    | BcInsn::Un { dst, .. }
                    | BcInsn::Cmp { dst, .. }
                    | BcInsn::Gep { dst, .. }
                    | BcInsn::AllocaLocal { dst, .. } => Some(*dst),
                    BcInsn::Bin { op, dst, .. } if !matches!(op, BinOp::Div | BinOp::Rem) => {
                        Some(*dst)
                    }
                    BcInsn::WorkItem { dst, builtin, dim } => {
                        let uniform = matches!(builtin, WiBuiltin::WorkDim) || *dim <= 2;
                        uniform.then_some(*dst)
                    }
                    _ => None,
                };
                match dead_dst {
                    Some(dst) if dst == NO_REG || !used[dst as usize] => {
                        *insn = BcInsn::Nop { weight: 1 };
                        changed = true;
                    }
                    _ => {}
                }
            }
        }
        if !changed {
            return;
        }
    }
}

/// Merge adjacent no-ops within each block into one weight-summed no-op.
/// Never merges across a non-nop instruction (barriers pause mid-block)
/// or across block boundaries (targets must stay addressable).
fn coalesce_nops(func: &mut BcFuncBody) {
    for block in &mut func.blocks {
        let mut out: Vec<BcInsn> = Vec::with_capacity(block.len());
        for insn in block.drain(..) {
            if let (BcInsn::Nop { weight }, Some(BcInsn::Nop { weight: prev })) =
                (&insn, out.last_mut())
            {
                *prev += weight;
                continue;
            }
            out.push(insn);
        }
        *block = out;
    }
}

// ---------------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------------

/// Flatten a block-structured module into one instruction array, resolving
/// `Jump`/`Branch` block indices to absolute pcs.
pub(crate) fn layout(bc: &BcModule) -> BcProgram {
    // First pass: block start pcs.
    let mut func_entry = Vec::with_capacity(bc.funcs.len());
    let mut block_pc: Vec<Vec<u32>> = Vec::with_capacity(bc.funcs.len());
    let mut pc = 0u32;
    for func in &bc.funcs {
        func_entry.push(pc);
        let starts = func
            .blocks
            .iter()
            .map(|b| {
                let start = pc;
                pc += b.len() as u32;
                start
            })
            .collect();
        block_pc.push(starts);
    }
    // Second pass: emit with resolved targets.
    let mut insns = Vec::with_capacity(pc as usize);
    for (fi, func) in bc.funcs.iter().enumerate() {
        for block in &func.blocks {
            for insn in block {
                insns.push(match insn {
                    BcInsn::Jump { target } => BcInsn::Jump {
                        target: block_pc[fi][*target as usize],
                    },
                    BcInsn::Branch {
                        cond,
                        then_t,
                        else_t,
                    } => BcInsn::Branch {
                        cond: *cond,
                        then_t: block_pc[fi][*then_t as usize],
                        else_t: block_pc[fi][*else_t as usize],
                    },
                    other => other.clone(),
                });
            }
        }
    }
    BcProgram {
        insns,
        funcs: bc
            .funcs
            .iter()
            .zip(func_entry)
            .map(|(f, entry_pc)| BcFunc {
                name: f.name.clone(),
                entry_pc,
                frame_regs: f.frame_regs,
                template: f.template.clone().into_boxed_slice(),
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// VM
// ---------------------------------------------------------------------------

/// One call frame: flat program counter plus a register file seeded from
/// the function's per-launch template.
struct BcFrame {
    pc: u32,
    regs: Vec<Option<Value>>,
    /// Register in the *caller* frame to receive our return value
    /// ([`NO_REG`] = discarded).
    ret_dst: u32,
}

/// A work item's execution state (mirrors the tree-walker's `WorkItem`).
struct BcItem {
    ctx: WiCtx,
    frames: Vec<BcFrame>,
    private: Vec<u8>,
    status: WiStatus,
    steps: u64,
}

/// Reusable per-work-group VM state: the shared local arena, the work
/// items, and the register-file pool (same recycling discipline as the
/// tree-walker's `WgScratch`).
#[derive(Default)]
pub(crate) struct BcScratch {
    local: Vec<u8>,
    items: Vec<BcItem>,
    pool: RegsPool,
}

fn bc_get(frame: &BcFrame, r: u32) -> Result<Value, InterpError> {
    frame.regs[r as usize]
        .ok_or_else(|| InterpError::Invalid(format!("read of undefined value %{r}")))
}

fn bc_set(item: &mut BcItem, dst: u32, v: Value) {
    if dst != NO_REG {
        let frame = item.frames.last_mut().unwrap();
        frame.regs[dst as usize] = Some(v);
    }
}

fn bc_bytes<'a>(
    gmem: &'a GlobalMem<'_>,
    local: &'a [u8],
    private: &'a [u8],
    p: PtrVal,
    size: usize,
) -> Result<&'a [u8], InterpError> {
    let (storage, what): (&[u8], &str) = match p.arena {
        Arena::Global(b) => return gmem.bytes(b, p.byte_off, size),
        Arena::Local => (local, "local memory"),
        Arena::Private => (private, "private memory"),
    };
    bounds(storage.len(), p.byte_off, size, what)?;
    let off = p.byte_off as usize;
    Ok(&storage[off..off + size])
}

fn bc_bytes_mut<'a>(
    gmem: &'a GlobalMem<'_>,
    local: &'a mut [u8],
    private: &'a mut [u8],
    p: PtrVal,
    size: usize,
) -> Result<&'a mut [u8], InterpError> {
    let (storage, what): (&mut [u8], &str) = match p.arena {
        Arena::Global(b) => return gmem.bytes_mut(b, p.byte_off, size),
        Arena::Local => (local, "local memory"),
        Arena::Private => (private, "private memory"),
    };
    bounds(storage.len(), p.byte_off, size, what)?;
    let off = p.byte_off as usize;
    Ok(&mut storage[off..off + size])
}

/// Run one work group of the program (mirrors the tree-walker's
/// `run_work_group`: same item order, same barrier round-robin, same
/// divergence error).
#[allow(clippy::too_many_arguments)]
fn run_bc_group(
    prog: &BcProgram,
    gmem: &GlobalMem<'_>,
    step_limit: u64,
    ndrange: NdRange,
    local_bytes: usize,
    group_id: [usize; 3],
    scratch: &mut BcScratch,
    stats: &mut DynStats,
) -> Result<u64, InterpError> {
    let BcScratch { local, items, pool } = scratch;
    local.clear();
    local.resize(local_bytes, 0);
    let wg_size = ndrange.wg_size();
    items.truncate(wg_size);

    let entry = &prog.funcs[0];
    let mut idx = 0;
    for lz in 0..ndrange.local[2] {
        for ly in 0..ndrange.local[1] {
            for lx in 0..ndrange.local[0] {
                let ctx = WiCtx {
                    local_id: [lx, ly, lz],
                    group_id,
                    global_id: [
                        group_id[0] * ndrange.local[0] + lx,
                        group_id[1] * ndrange.local[1] + ly,
                        group_id[2] * ndrange.local[2] + lz,
                    ],
                };
                let mut regs = pool.take(entry.frame_regs);
                regs.copy_from_slice(&entry.template);
                let root = BcFrame {
                    pc: entry.entry_pc,
                    regs,
                    ret_dst: NO_REG,
                };
                match items.get_mut(idx) {
                    Some(item) => {
                        item.ctx = ctx;
                        item.status = WiStatus::Running;
                        item.steps = 0;
                        item.private.clear();
                        while let Some(f) = item.frames.pop() {
                            pool.put(f.regs);
                        }
                        item.frames.push(root);
                    }
                    None => items.push(BcItem {
                        ctx,
                        frames: vec![root],
                        private: Vec::new(),
                        status: WiStatus::Running,
                        steps: 0,
                    }),
                }
                idx += 1;
            }
        }
    }

    let mut wg_insns: u64 = 0;
    loop {
        for item in items.iter_mut() {
            if item.status == WiStatus::Done {
                continue;
            }
            item.status = WiStatus::Running;
            run_bc_item(
                prog,
                gmem,
                local,
                pool,
                step_limit,
                ndrange,
                item,
                stats,
                &mut wg_insns,
            )?;
        }
        let done = items.iter().filter(|i| i.status == WiStatus::Done).count();
        if done == items.len() {
            break;
        }
        if done > 0 {
            let at_barrier = items.len() - done;
            return Err(InterpError::BarrierDivergence(format!(
                "{done} work items finished while {at_barrier} wait at a barrier"
            )));
        }
    }
    Ok(wg_insns)
}

/// Run one work item until it finishes or reaches a barrier (mirrors the
/// tree-walker's `run_until_pause` step accounting exactly: one step per
/// dispatched instruction, control flow included; no-ops count their
/// weight).
#[allow(clippy::too_many_arguments)]
fn run_bc_item(
    prog: &BcProgram,
    gmem: &GlobalMem<'_>,
    local: &mut [u8],
    pool: &mut RegsPool,
    step_limit: u64,
    ndrange: NdRange,
    item: &mut BcItem,
    stats: &mut DynStats,
    wg_insns: &mut u64,
) -> Result<(), InterpError> {
    loop {
        let pc = match item.frames.last_mut() {
            None => {
                item.status = WiStatus::Done;
                return Ok(());
            }
            Some(frame) => {
                let pc = frame.pc;
                frame.pc += 1;
                pc
            }
        };
        item.steps += 1;
        if item.steps > step_limit {
            return Err(InterpError::StepLimitExceeded(step_limit));
        }
        match &prog.insns[pc as usize] {
            BcInsn::Nop { weight } => {
                // Stands for `weight` source instructions: the dispatch
                // above already counted one step.
                item.steps += weight - 1;
                if item.steps > step_limit {
                    return Err(InterpError::StepLimitExceeded(step_limit));
                }
                *wg_insns += weight;
            }
            BcInsn::Jump { target } => {
                item.frames.last_mut().unwrap().pc = *target;
            }
            BcInsn::Branch {
                cond,
                then_t,
                else_t,
            } => {
                let frame = item.frames.last_mut().unwrap();
                let c = bc_get(frame, *cond)?.as_bool()?;
                frame.pc = if c { *then_t } else { *else_t };
            }
            BcInsn::Ret { val } => {
                let frame = item.frames.last().unwrap();
                let rv = if *val != NO_REG {
                    Some(bc_get(frame, *val)?)
                } else {
                    None
                };
                let ret_dst = frame.ret_dst;
                if let Some(f) = item.frames.pop() {
                    pool.put(f.regs);
                }
                if let (true, Some(v)) = (ret_dst != NO_REG, rv) {
                    if let Some(caller) = item.frames.last_mut() {
                        caller.regs[ret_dst as usize] = Some(v);
                    }
                }
            }
            BcInsn::Const { dst, val } => {
                *wg_insns += 1;
                bc_set(item, *dst, *val);
            }
            BcInsn::Bin { op, dst, a, b } => {
                *wg_insns += 1;
                let frame = item.frames.last().unwrap();
                let va = bc_get(frame, *a)?;
                let vb = bc_get(frame, *b)?;
                let v = eval_bin(*op, va, vb)?;
                bc_set(item, *dst, v);
            }
            BcInsn::Un { op, dst, a } => {
                *wg_insns += 1;
                let frame = item.frames.last().unwrap();
                let v = eval_un(*op, bc_get(frame, *a)?)?;
                bc_set(item, *dst, v);
            }
            BcInsn::Cmp { op, dst, a, b } => {
                *wg_insns += 1;
                let frame = item.frames.last().unwrap();
                let va = bc_get(frame, *a)?;
                let vb = bc_get(frame, *b)?;
                let v = Value::Bool(eval_cmp(*op, va, vb)?);
                bc_set(item, *dst, v);
            }
            BcInsn::Select { dst, cond, a, b } => {
                *wg_insns += 1;
                let frame = item.frames.last().unwrap();
                let c = bc_get(frame, *cond)?.as_bool()?;
                let v = bc_get(frame, if c { *a } else { *b })?;
                bc_set(item, *dst, v);
            }
            BcInsn::Cast { dst, ty, a } => {
                *wg_insns += 1;
                let frame = item.frames.last().unwrap();
                let v = eval_cast(ty, bc_get(frame, *a)?)?;
                bc_set(item, *dst, v);
            }
            BcInsn::AllocaPriv { dst, bytes } => {
                *wg_insns += 1;
                let off = item.private.len();
                item.private.resize(off + bytes, 0);
                bc_set(
                    item,
                    *dst,
                    Value::Ptr(PtrVal {
                        arena: Arena::Private,
                        byte_off: off as i64,
                    }),
                );
            }
            BcInsn::AllocaLocal { dst, off } => {
                *wg_insns += 1;
                bc_set(
                    item,
                    *dst,
                    Value::Ptr(PtrVal {
                        arena: Arena::Local,
                        byte_off: *off as i64,
                    }),
                );
            }
            BcInsn::Load { dst, ptr, ty, size } => {
                *wg_insns += 1;
                stats.mem_ops += 1;
                let frame = item.frames.last().unwrap();
                let p = bc_get(frame, *ptr)?.as_ptr()?;
                let v = {
                    let bytes = bc_bytes(gmem, local, &item.private, p, *size)?;
                    decode_value(ty, bytes)
                };
                bc_set(item, *dst, v);
            }
            BcInsn::Store { ptr, value } => {
                *wg_insns += 1;
                stats.mem_ops += 1;
                let frame = item.frames.last().unwrap();
                let p = bc_get(frame, *ptr)?.as_ptr()?;
                let v = bc_get(frame, *value)?;
                let size = match v {
                    Value::Bool(_) => 1,
                    Value::I32(_) | Value::F32(_) => 4,
                    Value::I64(_) | Value::F64(_) => 8,
                    Value::Ptr(_) => 16,
                };
                let bytes = bc_bytes_mut(gmem, local, &mut item.private, p, size)?;
                encode_value(v, bytes);
            }
            BcInsn::Gep {
                dst,
                ptr,
                index,
                stride,
            } => {
                *wg_insns += 1;
                let frame = item.frames.last().unwrap();
                let p = bc_get(frame, *ptr)?.as_ptr()?;
                let idx = bc_get(frame, *index)?.as_i64()?;
                bc_set(
                    item,
                    *dst,
                    Value::Ptr(PtrVal {
                        arena: p.arena,
                        byte_off: p.byte_off + idx * *stride as i64,
                    }),
                );
            }
            BcInsn::Call { dst, func, args } => {
                *wg_insns += 1;
                let callee = &prog.funcs[*func as usize];
                let frame = item.frames.last().unwrap();
                let mut regs = pool.take(callee.frame_regs);
                regs.copy_from_slice(&callee.template);
                for (i, a) in args.iter().enumerate() {
                    regs[i] = Some(bc_get(frame, *a)?);
                }
                item.frames.push(BcFrame {
                    pc: callee.entry_pc,
                    regs,
                    ret_dst: *dst,
                });
            }
            BcInsn::WorkItem { dst, builtin, dim } => {
                *wg_insns += 1;
                let d = *dim as usize;
                let c = &item.ctx;
                let v = match builtin {
                    WiBuiltin::GlobalId => c.global_id[d],
                    WiBuiltin::LocalId => c.local_id[d],
                    WiBuiltin::GroupId => c.group_id[d],
                    WiBuiltin::GlobalSize => ndrange.global[d],
                    WiBuiltin::LocalSize => ndrange.local[d],
                    WiBuiltin::NumGroups => ndrange.num_groups()[d],
                    WiBuiltin::WorkDim => ndrange.work_dim as usize,
                };
                bc_set(item, *dst, Value::I64(v as i64));
            }
            BcInsn::AtomicRmw {
                op,
                dst,
                ptr,
                value,
            } => {
                *wg_insns += 1;
                stats.atomic_ops += 1;
                let frame = item.frames.last().unwrap();
                let p = bc_get(frame, *ptr)?.as_ptr()?;
                let v = bc_get(frame, *value)?;
                let is64 = matches!(v, Value::I64(_));
                let old = if let Arena::Global(b) = p.arena {
                    use std::sync::atomic::Ordering::SeqCst;
                    if is64 {
                        let operand = v.as_i64()?;
                        let cell = gmem.atomic_u64(b, p.byte_off)?;
                        let prev = cell
                            .fetch_update(SeqCst, SeqCst, |cur| {
                                Some(apply_atomic(*op, cur as i64, operand) as u64)
                            })
                            .unwrap_or_else(|e| e);
                        Value::I64(prev as i64)
                    } else {
                        let operand = match v {
                            Value::I32(x) => x,
                            _ => return Err(InterpError::Invalid("atomic operand type".into())),
                        };
                        let cell = gmem.atomic_u32(b, p.byte_off)?;
                        let prev = cell
                            .fetch_update(SeqCst, SeqCst, |cur| {
                                Some(apply_atomic(*op, cur as i32 as i64, operand as i64) as i32
                                    as u32)
                            })
                            .unwrap_or_else(|e| e);
                        Value::I32(prev as i32)
                    }
                } else {
                    let size = if is64 { 8 } else { 4 };
                    let bytes = bc_bytes_mut(gmem, local, &mut item.private, p, size)?;
                    if is64 {
                        let old = i64::from_le_bytes(bytes[..8].try_into().unwrap());
                        let operand = v.as_i64()?;
                        let new = apply_atomic(*op, old, operand);
                        bytes[..8].copy_from_slice(&new.to_le_bytes());
                        Value::I64(old)
                    } else {
                        let old = i32::from_le_bytes(bytes[..4].try_into().unwrap());
                        let operand = match v {
                            Value::I32(x) => x,
                            _ => return Err(InterpError::Invalid("atomic operand type".into())),
                        };
                        let new = apply_atomic(*op, old as i64, operand as i64) as i32;
                        bytes[..4].copy_from_slice(&new.to_le_bytes());
                        Value::I32(old)
                    }
                };
                bc_set(item, *dst, old);
            }
            BcInsn::AtomicCmpXchg {
                dst,
                ptr,
                expected,
                desired,
            } => {
                *wg_insns += 1;
                stats.atomic_ops += 1;
                let frame = item.frames.last().unwrap();
                let p = bc_get(frame, *ptr)?.as_ptr()?;
                let exp = bc_get(frame, *expected)?;
                let des = bc_get(frame, *desired)?;
                let is64 = matches!(des, Value::I64(_));
                let old = if let Arena::Global(b) = p.arena {
                    use std::sync::atomic::Ordering::SeqCst;
                    if is64 {
                        let cell = gmem.atomic_u64(b, p.byte_off)?;
                        let exp = exp.as_i64()? as u64;
                        let des = des.as_i64()? as u64;
                        let prev = match cell.compare_exchange(exp, des, SeqCst, SeqCst) {
                            Ok(prev) | Err(prev) => prev,
                        };
                        Value::I64(prev as i64)
                    } else {
                        let cell = gmem.atomic_u32(b, p.byte_off)?;
                        let exp = exp.as_i64()? as i32 as u32;
                        let des = des.as_i64()? as i32 as u32;
                        let prev = match cell.compare_exchange(exp, des, SeqCst, SeqCst) {
                            Ok(prev) | Err(prev) => prev,
                        };
                        Value::I32(prev as i32)
                    }
                } else {
                    let size = if is64 { 8 } else { 4 };
                    let bytes = bc_bytes_mut(gmem, local, &mut item.private, p, size)?;
                    if is64 {
                        let old = i64::from_le_bytes(bytes[..8].try_into().unwrap());
                        if old == exp.as_i64()? {
                            bytes[..8].copy_from_slice(&des.as_i64()?.to_le_bytes());
                        }
                        Value::I64(old)
                    } else {
                        let old = i32::from_le_bytes(bytes[..4].try_into().unwrap());
                        if old as i64 == exp.as_i64()? {
                            bytes[..4].copy_from_slice(&(des.as_i64()? as i32).to_le_bytes());
                        }
                        Value::I32(old)
                    }
                };
                bc_set(item, *dst, old);
            }
            BcInsn::Barrier => {
                *wg_insns += 1;
                stats.barriers += 1;
                item.status = WiStatus::AtBarrier;
                return Ok(());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

fn fmt_value(v: Value) -> String {
    match v {
        Value::Bool(b) => format!("bool {b}"),
        Value::I32(x) => format!("i32 {x}"),
        Value::I64(x) => format!("i64 {x}"),
        Value::F32(x) => format!("f32 {x:?}"),
        Value::F64(x) => format!("f64 {x:?}"),
        Value::Ptr(p) => match p.arena {
            Arena::Global(b) => format!("ptr g{}+{}", b.0, p.byte_off),
            Arena::Local => format!("ptr l+{}", p.byte_off),
            Arena::Private => format!("ptr p+{}", p.byte_off),
        },
    }
}

fn fmt_reg(r: u32) -> String {
    if r == NO_REG {
        "_".to_string()
    } else {
        format!("r{r}")
    }
}

/// Render a laid-out program as stable, diffable text (the golden-snapshot
/// and `repro disasm` format).
pub(crate) fn disassemble(prog: &BcProgram) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (fi, func) in prog.funcs.iter().enumerate() {
        let end = prog
            .funcs
            .get(fi + 1)
            .map(|f| f.entry_pc as usize)
            .unwrap_or(prog.insns.len());
        let _ = writeln!(out, "fn @{fi} {} (regs {}):", func.name, func.frame_regs);
        let preamble: Vec<String> = func
            .template
            .iter()
            .enumerate()
            .filter_map(|(r, v)| v.map(|v| format!("r{r} = {}", fmt_value(v))))
            .collect();
        if !preamble.is_empty() {
            let _ = writeln!(out, "  preamble: {}", preamble.join(", "));
        }
        for pc in func.entry_pc as usize..end {
            let text = match &prog.insns[pc] {
                BcInsn::Nop { weight } => format!("nop x{weight}"),
                BcInsn::Const { dst, val } => {
                    format!("{} = const {}", fmt_reg(*dst), fmt_value(*val))
                }
                BcInsn::Bin { op, dst, a, b } => format!(
                    "{} = {} {}, {}",
                    fmt_reg(*dst),
                    op.mnemonic(),
                    fmt_reg(*a),
                    fmt_reg(*b)
                ),
                BcInsn::Un { op, dst, a } => {
                    format!("{} = {} {}", fmt_reg(*dst), op.mnemonic(), fmt_reg(*a))
                }
                BcInsn::Cmp { op, dst, a, b } => format!(
                    "{} = cmp.{} {}, {}",
                    fmt_reg(*dst),
                    op.mnemonic(),
                    fmt_reg(*a),
                    fmt_reg(*b)
                ),
                BcInsn::Select { dst, cond, a, b } => format!(
                    "{} = select {}, {}, {}",
                    fmt_reg(*dst),
                    fmt_reg(*cond),
                    fmt_reg(*a),
                    fmt_reg(*b)
                ),
                BcInsn::Cast { dst, ty, a } => {
                    format!("{} = cast {ty}, {}", fmt_reg(*dst), fmt_reg(*a))
                }
                BcInsn::AllocaPriv { dst, bytes } => {
                    format!("{} = alloca.priv {bytes}", fmt_reg(*dst))
                }
                BcInsn::AllocaLocal { dst, off } => {
                    format!("{} = alloca.local @{off}", fmt_reg(*dst))
                }
                BcInsn::Load { dst, ptr, ty, .. } => {
                    format!("{} = load {ty}, {}", fmt_reg(*dst), fmt_reg(*ptr))
                }
                BcInsn::Store { ptr, value } => {
                    format!("store {}, {}", fmt_reg(*ptr), fmt_reg(*value))
                }
                BcInsn::Gep {
                    dst,
                    ptr,
                    index,
                    stride,
                } => format!(
                    "{} = gep {}, {} x{stride}",
                    fmt_reg(*dst),
                    fmt_reg(*ptr),
                    fmt_reg(*index)
                ),
                BcInsn::Call { dst, func, args } => {
                    let args: Vec<String> = args.iter().map(|a| fmt_reg(*a)).collect();
                    format!("{} = call @{func}({})", fmt_reg(*dst), args.join(", "))
                }
                BcInsn::WorkItem { dst, builtin, dim } => {
                    format!("{} = {} {dim}", fmt_reg(*dst), builtin.name())
                }
                BcInsn::AtomicRmw {
                    op,
                    dst,
                    ptr,
                    value,
                } => format!(
                    "{} = {} {}, {}",
                    fmt_reg(*dst),
                    op.mnemonic(),
                    fmt_reg(*ptr),
                    fmt_reg(*value)
                ),
                BcInsn::AtomicCmpXchg {
                    dst,
                    ptr,
                    expected,
                    desired,
                } => format!(
                    "{} = atomic_cmpxchg {}, {}, {}",
                    fmt_reg(*dst),
                    fmt_reg(*ptr),
                    fmt_reg(*expected),
                    fmt_reg(*desired)
                ),
                BcInsn::Barrier => "barrier".to_string(),
                BcInsn::Jump { target } => format!("jump @{target}"),
                BcInsn::Branch {
                    cond,
                    then_t,
                    else_t,
                } => format!("br {}, @{then_t}, @{else_t}", fmt_reg(*cond)),
                BcInsn::Ret { val } => {
                    if *val == NO_REG {
                        "ret".to_string()
                    } else {
                        format!("ret {}", fmt_reg(*val))
                    }
                }
            };
            let _ = writeln!(out, "  {pc:>4}: {text}");
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Interpreter entry points
// ---------------------------------------------------------------------------

impl<'m> Interpreter<'m> {
    /// Select which execution tier
    /// [`run_kernel_bytecode`](Self::run_kernel_bytecode) uses. Freshly
    /// constructed interpreters default to [`ExecTier::TreeWalk`].
    pub fn set_exec_tier(&mut self, tier: ExecTier) {
        self.tier = tier;
    }

    /// The currently selected execution tier.
    pub fn exec_tier(&self) -> ExecTier {
        self.tier
    }

    /// Whether `kernel` (with this launch's arguments) lowers to bytecode,
    /// i.e. whether [`run_kernel_bytecode`](Self::run_kernel_bytecode)
    /// would execute on the bytecode tier rather than falling back to the
    /// tree-walker.
    pub fn bytecode_supported(
        &self,
        mem: &DeviceMemory,
        kernel: &str,
        ndrange: NdRange,
        args: &[ArgValue],
    ) -> bool {
        self.plan(mem, kernel, ndrange, args)
            .ok()
            .map(|setup| lower(self.module, &setup).is_ok())
            .unwrap_or(false)
    }

    /// Render the lowered and optimized bytecode of `kernel` for this
    /// launch as stable text (the `repro disasm` / golden-snapshot
    /// format).
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] when the launch does not plan (bad
    /// arguments, unknown kernel) or the module refuses to lower.
    pub fn disassemble_kernel(
        &self,
        mem: &DeviceMemory,
        kernel: &str,
        ndrange: NdRange,
        args: &[ArgValue],
    ) -> Result<String, InterpError> {
        let setup = self.plan(mem, kernel, ndrange, args)?;
        let raw = lower(self.module, &setup).map_err(|e| InterpError::Invalid(e.to_string()))?;
        let mut opt = raw.clone();
        optimize(&mut opt, ndrange);
        Ok(format!(
            "== lowered ==\n{}\n== optimized ==\n{}",
            disassemble(&layout(&raw)),
            disassemble(&layout(&opt))
        ))
    }

    /// Execute `kernel` on the selected [`ExecTier`], sharding work groups
    /// like [`run_kernel_parallel_sched`](Self::run_kernel_parallel_sched)
    /// (same accelcheck gate, same schedules, same flat group order).
    /// Falls back to the tree-walking interpreter when the tier is
    /// [`ExecTier::TreeWalk`] or the module refuses to lower (see the
    /// [module docs](crate::bytecode) for the fallback rules). Successful
    /// runs are bit-identical to the tree-walker: memory bytes, every
    /// `DynStats` counter, and errors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_kernel`](Self::run_kernel).
    pub fn run_kernel_bytecode(
        &self,
        mem: &mut DeviceMemory,
        kernel: &str,
        ndrange: NdRange,
        args: &[ArgValue],
        threads: usize,
        schedule: ParSchedule,
    ) -> Result<DynStats, InterpError> {
        if self.tier == ExecTier::TreeWalk {
            return self.run_kernel_parallel_sched(mem, kernel, ndrange, args, threads, schedule);
        }
        let setup = self.plan(mem, kernel, ndrange, args)?;
        let prog = match lower(self.module, &setup) {
            Ok(mut bc) => {
                if self.tier == ExecTier::BytecodeOpt {
                    optimize(&mut bc, ndrange);
                }
                layout(&bc)
            }
            Err(_) => {
                // Unsupported construct: the tree-walker implements its
                // (error-path) semantics directly.
                return self
                    .run_kernel_parallel_sched(mem, kernel, ndrange, args, threads, schedule);
            }
        };
        let total = ndrange.total_groups();
        let threads = threads.min(total).max(1);
        let step_limit = self.config.step_limit;
        let local_bytes = setup.local_bytes;
        let gmem = GlobalMem::new(mem);
        let run = |gid: [usize; 3], scratch: &mut BcScratch, stats: &mut DynStats| {
            run_bc_group(
                &prog,
                &gmem,
                step_limit,
                ndrange,
                local_bytes,
                gid,
                scratch,
                stats,
            )
        };
        if threads <= 1 || !self.parallel_eligible(kernel, ndrange, args) {
            run_groups_seq_sched(ndrange, run)
        } else {
            match schedule {
                ParSchedule::Static => run_groups_static_sched(ndrange, threads, run),
                ParSchedule::Stealing => run_groups_stealing_sched(ndrange, threads, run),
            }
        }
    }

    /// [`run_kernel_bytecode`](Self::run_kernel_bytecode) with the host's
    /// available parallelism and the default schedule — the entry point
    /// the OpenCL runtime layers (`clrt::queue`, `ProxyCl`) call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_kernel`](Self::run_kernel).
    pub fn run_kernel_tiered(
        &self,
        mem: &mut DeviceMemory,
        kernel: &str,
        ndrange: NdRange,
        args: &[ArgValue],
    ) -> Result<DynStats, InterpError> {
        self.run_kernel_bytecode(
            mem,
            kernel,
            ndrange,
            args,
            default_interp_threads(),
            ParSchedule::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::InterpConfig;
    use crate::ir::{BinOp, CmpOp, FunctionKind, Module, WiBuiltin};
    use crate::verify::assert_verifies;

    fn module_of(funcs: Vec<crate::ir::Function>) -> Module {
        let mut m = Module::new();
        for f in funcs {
            m.insert_function(f);
        }
        assert_verifies(&m);
        m
    }

    /// kernel void saxpy_n(global f32* x, global f32* y, f32 a, int n):
    /// loop over gid stride gsize — exercises a loop, folds `a`, the
    /// bound compare against the scalar `n`, and gsize.
    fn loop_kernel() -> Module {
        let mut b = FunctionBuilder::new("saxpy_n", FunctionKind::Kernel, Type::Void);
        let x = b.add_param("x", Type::ptr(AddressSpace::Global, Type::F32));
        let y = b.add_param("y", Type::ptr(AddressSpace::Global, Type::F32));
        let a = b.add_param("a", Type::F32);
        let n = b.add_param("n", Type::I32);
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let n64 = b.cast(Type::I64, n);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        // i lives in private memory (no phis in this IR).
        let slot = b.alloca(Type::I64, 1, AddressSpace::Private);
        b.store(slot, gid);
        b.br(header);
        b.switch_to(header);
        let i = b.load(slot);
        let in_range = b.cmp(CmpOp::Lt, i, n64);
        b.cond_br(in_range, body, exit);
        b.switch_to(body);
        let px = b.gep(x, i);
        let py = b.gep(y, i);
        let vx = b.load(px);
        let vy = b.load(py);
        let ax = b.bin(BinOp::Mul, a, vx);
        let sum = b.bin(BinOp::Add, vy, ax);
        b.store(py, sum);
        let gsize = b.work_item(WiBuiltin::GlobalSize, 0);
        let next = b.bin(BinOp::Add, i, gsize);
        b.store(slot, next);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        module_of(vec![b.finish()])
    }

    fn run_tier(
        m: &Module,
        tier: ExecTier,
        nd: NdRange,
        args: &[ArgValue],
        data: &[f32],
    ) -> (Vec<u8>, DynStats) {
        let mut mem = DeviceMemory::new();
        let x = mem.alloc(data.len() * 4);
        let y = mem.alloc(data.len() * 4);
        mem.write_f32(x, data);
        let mut interp = Interpreter::new(m);
        interp.set_exec_tier(tier);
        let mut full_args = vec![ArgValue::Buffer(x), ArgValue::Buffer(y)];
        full_args.extend_from_slice(args);
        let name = m.functions[0].name.clone();
        let stats = interp
            .run_kernel_bytecode(&mut mem, &name, nd, &full_args, 1, ParSchedule::default())
            .expect("runs");
        let mut bytes = mem.bytes(x).to_vec();
        bytes.extend_from_slice(mem.bytes(y));
        (bytes, stats)
    }

    #[test]
    fn tiers_agree_on_loop_kernel_including_stats() {
        let m = loop_kernel();
        let nd = NdRange::new_1d(8, 4);
        let args = [
            ArgValue::Scalar(Value::F32(2.5)),
            ArgValue::Scalar(Value::I32(23)),
        ];
        let data: Vec<f32> = (0..23).map(|i| i as f32 * 0.5).collect();
        let (tree_mem, tree_stats) = run_tier(&m, ExecTier::TreeWalk, nd, &args, &data);
        let (bc_mem, bc_stats) = run_tier(&m, ExecTier::Bytecode, nd, &args, &data);
        let (opt_mem, opt_stats) = run_tier(&m, ExecTier::BytecodeOpt, nd, &args, &data);
        assert_eq!(tree_mem, bc_mem);
        assert_eq!(tree_mem, opt_mem);
        assert_eq!(tree_stats, bc_stats);
        assert_eq!(tree_stats, opt_stats, "weight preservation broke DynStats");
    }

    #[test]
    fn optimizer_folds_invariants_into_preamble() {
        let m = loop_kernel();
        let mut mem = DeviceMemory::new();
        let x = mem.alloc(4);
        let y = mem.alloc(4);
        let nd = NdRange::new_1d(8, 4);
        let args = [
            ArgValue::Buffer(x),
            ArgValue::Buffer(y),
            ArgValue::Scalar(Value::F32(2.5)),
            ArgValue::Scalar(Value::I32(1)),
        ];
        let interp = Interpreter::new(&m);
        let setup = interp.plan(&mem, "saxpy_n", nd, &args).unwrap();
        let mut bc = lower(&m, &setup).unwrap();
        let before: usize = bc.funcs[0]
            .blocks
            .iter()
            .flatten()
            .filter(|i| !matches!(i, BcInsn::Nop { .. }))
            .count();
        optimize(&mut bc, nd);
        let after: usize = bc.funcs[0]
            .blocks
            .iter()
            .flatten()
            .filter(|i| !matches!(i, BcInsn::Nop { .. }))
            .count();
        assert!(after < before, "folding eliminated no dispatches");
        // The cast of the scalar bound must have landed in the preamble.
        assert!(
            bc.funcs[0].template.iter().flatten().count() > 4,
            "no invariants hoisted beyond the arguments"
        );
        // Weight totals per block are preserved.
        let weights: u64 = bc.funcs[0]
            .blocks
            .iter()
            .flatten()
            .map(|i| match i {
                BcInsn::Nop { weight } => *weight,
                BcInsn::Jump { .. } | BcInsn::Branch { .. } | BcInsn::Ret { .. } => 0,
                _ => 1,
            })
            .sum();
        assert_eq!(weights as usize, m.functions[0].insn_count());
    }

    #[test]
    fn unknown_callee_falls_back_to_tree_walker() {
        // A call to a function that does not exist only errors when
        // executed; lowering must refuse so the fallback preserves that.
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::I32));
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let zero = b.const_i32(0);
        let is_zero = b.cmp(CmpOp::Eq, gid, gid);
        let then_b = b.new_block();
        let exit = b.new_block();
        b.cond_br(is_zero, exit, then_b);
        b.switch_to(then_b);
        b.call("missing", vec![], Type::I32);
        b.br(exit);
        b.switch_to(exit);
        let p = b.gep(out, gid);
        b.store(p, zero);
        b.ret(None);
        let mut m = Module::new();
        m.insert_function(b.finish());

        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(16);
        let mut interp = Interpreter::new(&m);
        interp.set_exec_tier(ExecTier::BytecodeOpt);
        assert!(!interp.bytecode_supported(
            &mem,
            "k",
            NdRange::new_1d(4, 4),
            &[ArgValue::Buffer(buf)]
        ));
        // The branch never takes the `missing` path, so the fallback
        // tree-walker succeeds.
        interp
            .run_kernel_bytecode(
                &mut mem,
                "k",
                NdRange::new_1d(4, 4),
                &[ArgValue::Buffer(buf)],
                1,
                ParSchedule::default(),
            )
            .expect("fallback executes");
        assert_eq!(mem.read_i32(buf), vec![0, 0, 0, 0]);
    }

    #[test]
    fn step_limit_parity_across_tiers() {
        let m = loop_kernel();
        let nd = NdRange::new_1d(4, 4);
        for tier in [
            ExecTier::TreeWalk,
            ExecTier::Bytecode,
            ExecTier::BytecodeOpt,
        ] {
            let mut mem = DeviceMemory::new();
            let x = mem.alloc(64 * 4);
            let y = mem.alloc(64 * 4);
            let mut interp = Interpreter::with_config(
                &m,
                InterpConfig {
                    step_limit: 50,
                    ..InterpConfig::default()
                },
            );
            interp.set_exec_tier(tier);
            let err = interp
                .run_kernel_bytecode(
                    &mut mem,
                    "saxpy_n",
                    nd,
                    &[
                        ArgValue::Buffer(x),
                        ArgValue::Buffer(y),
                        ArgValue::Scalar(Value::F32(1.0)),
                        ArgValue::Scalar(Value::I32(64)),
                    ],
                    1,
                    ParSchedule::default(),
                )
                .unwrap_err();
            assert!(
                matches!(err, InterpError::StepLimitExceeded(50)),
                "{tier:?}: {err:?}"
            );
        }
    }

    #[test]
    fn disassembly_has_preamble_and_sections() {
        let m = loop_kernel();
        let mut mem = DeviceMemory::new();
        let x = mem.alloc(4);
        let y = mem.alloc(4);
        let interp = Interpreter::new(&m);
        let text = interp
            .disassemble_kernel(
                &mem,
                "saxpy_n",
                NdRange::new_1d(8, 4),
                &[
                    ArgValue::Buffer(x),
                    ArgValue::Buffer(y),
                    ArgValue::Scalar(Value::F32(2.5)),
                    ArgValue::Scalar(Value::I32(23)),
                ],
            )
            .expect("disassembles");
        assert!(text.contains("== lowered =="));
        assert!(text.contains("== optimized =="));
        assert!(text.contains("preamble:"));
        assert!(text.contains("nop x"));
    }

    #[test]
    fn exec_tier_from_env_parses_all_values() {
        // Not set in the test environment by default.
        assert_eq!(ExecTier::from_env(), ExecTier::BytecodeOpt);
    }
}
