//! # kernel-ir — a typed IR for accelerator kernels
//!
//! The compiler substrate of the accelOS (CGO 2016) reproduction. OpenCL-like
//! kernels are lowered (by the `minicl` front end) into this IR, analysed,
//! transformed by the accelOS JIT, and executed by the bundled NDRange
//! [`interp`]reter.
//!
//! The crate provides:
//!
//! * [`ir`] — modules, functions, basic blocks, instructions;
//! * [`builder`] — ergonomic function construction;
//! * [`verify`] — structural/type/dominance verification;
//! * [`analysis`] — liveness, register pressure, local-memory usage,
//!   instruction counts, call graphs (the inputs to the paper's §3
//!   resource-sharing equations);
//! * [`link`] — module linking (for the GPU scheduling runtime library);
//! * [`inline`] — function inlining (vendor compilers inline by default,
//!   which §6.5 of the paper relies on);
//! * [`interp`] — a work-group-accurate interpreter with barriers, local
//!   memory and atomics;
//! * [`bytecode`] — a compiled execution tier: dense register bytecode with
//!   a launch-specialising optimizer, bit-identical to the interpreter;
//! * [`testgen`] — the shared random-kernel generator behind the
//!   differential-fuzz test planes;
//! * [`races`] — the `accelcheck` static race & barrier-divergence analyzer
//!   gating cross-group parallel interpretation;
//! * [`lint`] — structural lints over the IR with a pluggable registry;
//! * [`profile`] — per-kernel resource summaries.
//!
//! # Example
//!
//! ```
//! use kernel_ir::builder::FunctionBuilder;
//! use kernel_ir::interp::{ArgValue, DeviceMemory, Interpreter, NdRange};
//! use kernel_ir::ir::{BinOp, FunctionKind, Module, WiBuiltin};
//! use kernel_ir::types::{AddressSpace, Type};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // kernel void axpy(global f32* x, global f32* y, f32 a) { y[i] += a*x[i]; }
//! let mut b = FunctionBuilder::new("axpy", FunctionKind::Kernel, Type::Void);
//! let x = b.add_param("x", Type::ptr(AddressSpace::Global, Type::F32));
//! let y = b.add_param("y", Type::ptr(AddressSpace::Global, Type::F32));
//! let a = b.add_param("a", Type::F32);
//! let gid = b.work_item(WiBuiltin::GlobalId, 0);
//! let px = b.gep(x, gid);
//! let py = b.gep(y, gid);
//! let vx = b.load(px);
//! let vy = b.load(py);
//! let ax = b.bin(BinOp::Mul, a, vx);
//! let sum = b.bin(BinOp::Add, vy, ax);
//! b.store(py, sum);
//! b.ret(None);
//!
//! let mut m = Module::new();
//! m.insert_function(b.finish());
//! kernel_ir::verify::verify_module(&m)?;
//!
//! let mut mem = DeviceMemory::new();
//! let xb = mem.alloc(4 * 4);
//! let yb = mem.alloc(4 * 4);
//! mem.write_f32(xb, &[1.0, 2.0, 3.0, 4.0]);
//! mem.write_f32(yb, &[10.0, 10.0, 10.0, 10.0]);
//! Interpreter::new(&m).run_kernel(
//!     &mut mem,
//!     "axpy",
//!     NdRange::new_1d(4, 2),
//!     &[
//!         ArgValue::Buffer(xb),
//!         ArgValue::Buffer(yb),
//!         ArgValue::Scalar(kernel_ir::interp::Value::F32(2.0)),
//!     ],
//! )?;
//! assert_eq!(mem.read_f32(yb), vec![12.0, 14.0, 16.0, 18.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod bytecode;
pub mod display;
pub mod error;
pub mod inline;
pub mod interp;
pub mod ir;
pub mod link;
pub mod lint;
pub mod profile;
pub mod races;
pub mod testgen;
pub mod types;
pub mod verify;

pub use analysis::{FunctionFacts, ModuleFacts};
pub use builder::FunctionBuilder;
pub use bytecode::ExecTier;
pub use error::{InterpError, IrError};
pub use interp::{ArgValue, BufferId, DeviceMemory, Interpreter, NdRange, OracleReport, Value};
pub use ir::{Function, FunctionKind, Module};
pub use lint::{Diagnostic, Severity};
pub use profile::KernelProfile;
pub use races::{KernelRaceReport, LaunchEnv, ParallelSafety};
pub use types::{AddressSpace, Type};
