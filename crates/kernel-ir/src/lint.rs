//! Structural lints over kernel IR with a pluggable registry.
//!
//! Each [`Lint`] inspects one function at a time and emits structured
//! [`Diagnostic`]s carrying function/block/instruction locations plus the
//! source span when the front end recorded one ([`crate::ir::Inst::span`]).
//! The registry powers the harness's `repro lint` subcommand, which sweeps
//! the bundled Parboil suite and fails CI on any `Error`/`Warn` finding.
//!
//! Shipped lints:
//!
//! | name                 | severity | finds                                         |
//! |----------------------|----------|-----------------------------------------------|
//! | `unreachable-block`  | warn     | non-empty blocks no path from entry reaches    |
//! | `dead-store`         | warn     | private cells stored to but never read         |
//! | `const-oob-index`    | error    | constant indices outside an alloca's bounds    |
//! | `unused-param`       | note     | kernel parameters never observed by the body   |
//! | `barrier-divergence` | error    | barriers under non-uniform control flow        |

use crate::ir::{BlockId, ConstVal, Function, FunctionKind, Module, Op, Terminator, ValueId};
use crate::races;
use crate::types::AddressSpace;
use crate::verify::{operands, successors};
use std::collections::BTreeSet;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; never fails a gated run.
    Note,
    /// Suspicious but not definitely wrong; fails `--deny-warnings`.
    Warn,
    /// Definitely wrong (undefined behaviour or out-of-bounds).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warn => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Finding severity.
    pub severity: Severity,
    /// Name of the lint that produced it.
    pub lint: &'static str,
    /// Function the finding is in.
    pub function: String,
    /// Block, when the finding is tied to one.
    pub block: Option<BlockId>,
    /// Instruction index within the block, when applicable.
    pub inst: Option<usize>,
    /// Source span `(line, col)` when the front end recorded one.
    pub span: Option<(u32, u32)>,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Location string: source span when available, IR location otherwise.
    pub fn location(&self) -> String {
        match (self.span, self.block) {
            (Some((l, c)), _) => format!("{}:{l}:{c}", self.function),
            (None, Some(b)) => match self.inst {
                Some(i) => format!("{}:bb{}/{i}", self.function, b.0),
                None => format!("{}:bb{}", self.function, b.0),
            },
            (None, None) => self.function.clone(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}] {}",
            self.severity,
            self.location(),
            self.lint,
            self.message
        )
    }
}

/// A single structural check over one function.
pub trait Lint {
    /// Stable kebab-case identifier (shown in diagnostics).
    fn name(&self) -> &'static str;
    /// One-line description of what the lint finds.
    fn description(&self) -> &'static str;
    /// Inspect `func` and append findings to `out`.
    fn check(&self, func: &Function, module: &Module, out: &mut Vec<Diagnostic>);
}

/// The shipped lint set, in reporting order.
pub fn registry() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(UnreachableBlock),
        Box::new(DeadStore),
        Box::new(ConstOobIndex),
        Box::new(UnusedParam),
        Box::new(BarrierDivergence),
    ]
}

/// Run every registered lint over every function of the module.
pub fn lint_module(module: &Module) -> Vec<Diagnostic> {
    let lints = registry();
    let mut out = Vec::new();
    for func in &module.functions {
        for lint in &lints {
            lint.check(func, module, &mut out);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Values derived from `root` through pointer-preserving ops (`gep`, `cast`).
fn derived_values(func: &Function, root: ValueId) -> BTreeSet<ValueId> {
    let mut set = BTreeSet::new();
    set.insert(root);
    let mut changed = true;
    while changed {
        changed = false;
        for block in &func.blocks {
            for inst in &block.insts {
                let Some(r) = inst.result else { continue };
                if set.contains(&r) {
                    continue;
                }
                let derived = match &inst.op {
                    Op::Gep { ptr, .. } => set.contains(ptr),
                    Op::Cast(_, v) => set.contains(v),
                    _ => false,
                };
                if derived {
                    set.insert(r);
                    changed = true;
                }
            }
        }
    }
    set
}

// ---------------------------------------------------------------------------
// unreachable-block
// ---------------------------------------------------------------------------

/// Flags non-empty blocks that no path from the entry reaches. Empty residue
/// blocks (common after front-end lowering of `if` without `else`) are
/// ignored.
struct UnreachableBlock;

impl Lint for UnreachableBlock {
    fn name(&self) -> &'static str {
        "unreachable-block"
    }

    fn description(&self) -> &'static str {
        "non-empty basic blocks unreachable from the entry"
    }

    fn check(&self, func: &Function, _module: &Module, out: &mut Vec<Diagnostic>) {
        let n = func.blocks.len();
        if n == 0 {
            return;
        }
        let succs = successors(func);
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut stack = vec![0usize];
        while let Some(b) = stack.pop() {
            for s in &succs[b] {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s.index());
                }
            }
        }
        for (b, block) in func.blocks.iter().enumerate() {
            if !seen[b] && !block.insts.is_empty() {
                out.push(Diagnostic {
                    severity: Severity::Warn,
                    lint: self.name(),
                    function: func.name.clone(),
                    block: Some(BlockId(b as u32)),
                    inst: None,
                    span: block.insts[0].span,
                    message: format!(
                        "block bb{b} ({} instructions) is unreachable from the entry",
                        block.insts.len()
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// dead-store
// ---------------------------------------------------------------------------

/// Flags private allocas that are stored to but never loaded (and whose
/// address does not escape through calls, stored pointers or returns).
/// Pure parameter spills are left to `unused-param`.
struct DeadStore;

impl Lint for DeadStore {
    fn name(&self) -> &'static str {
        "dead-store"
    }

    fn description(&self) -> &'static str {
        "private memory written but never read"
    }

    fn check(&self, func: &Function, _module: &Module, out: &mut Vec<Diagnostic>) {
        for (bid, block) in func.iter_blocks() {
            for (iid, inst) in block.insts.iter().enumerate() {
                let Op::Alloca {
                    space: AddressSpace::Private,
                    ..
                } = inst.op
                else {
                    continue;
                };
                let Some(root) = inst.result else { continue };
                let derived = derived_values(func, root);
                let mut loads = 0usize;
                // (block, inst index, span, stored value) per store.
                type StoreRec = (BlockId, usize, Option<(u32, u32)>, ValueId);
                let mut stores: Vec<StoreRec> = Vec::new();
                let mut escapes = false;
                for (b2, block2) in func.iter_blocks() {
                    for (i2, inst2) in block2.insts.iter().enumerate() {
                        match &inst2.op {
                            Op::Load(p) if derived.contains(p) => loads += 1,
                            Op::Store { ptr, value } => {
                                if derived.contains(ptr) {
                                    stores.push((b2, i2, inst2.span, *value));
                                }
                                if derived.contains(value) {
                                    escapes = true;
                                }
                            }
                            Op::AtomicRmw { ptr, .. } | Op::AtomicCmpXchg { ptr, .. }
                                if derived.contains(ptr) =>
                            {
                                loads += 1; // RMW reads the cell
                            }
                            Op::Call { args, .. } if args.iter().any(|a| derived.contains(a)) => {
                                escapes = true;
                            }
                            _ => {}
                        }
                    }
                    if let Some(Terminator::Ret(Some(v))) = &block2.term {
                        if derived.contains(v) {
                            escapes = true;
                        }
                    }
                }
                if loads > 0 || escapes || stores.is_empty() {
                    continue;
                }
                // A single store of a raw parameter is the front end's spill
                // idiom; `unused-param` owns that diagnosis.
                if stores.len() == 1 && stores[0].3.index() < func.params.len() {
                    continue;
                }
                let (sb, si, span, _) = stores[0];
                out.push(Diagnostic {
                    severity: Severity::Warn,
                    lint: self.name(),
                    function: func.name.clone(),
                    block: Some(sb),
                    inst: Some(si),
                    span,
                    message: format!(
                        "value stored to private alloca (bb{}/{iid}) is never read ({} store{})",
                        bid.0,
                        stores.len(),
                        if stores.len() == 1 { "" } else { "s" }
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// const-oob-index
// ---------------------------------------------------------------------------

/// Flags `gep` instructions indexing an alloca with a constant outside
/// `0..count`.
struct ConstOobIndex;

impl Lint for ConstOobIndex {
    fn name(&self) -> &'static str {
        "const-oob-index"
    }

    fn description(&self) -> &'static str {
        "constant indices outside the bounds of a stack/local allocation"
    }

    fn check(&self, func: &Function, _module: &Module, out: &mut Vec<Diagnostic>) {
        // Constant values (including through int casts).
        let mut consts: Vec<Option<i64>> = vec![None; func.value_types.len()];
        let mut counts: Vec<Option<u32>> = vec![None; func.value_types.len()];
        for block in &func.blocks {
            for inst in &block.insts {
                let Some(r) = inst.result else { continue };
                match &inst.op {
                    Op::Const(ConstVal::I32(v)) => consts[r.index()] = Some(*v as i64),
                    Op::Const(ConstVal::I64(v)) => consts[r.index()] = Some(*v),
                    Op::Cast(ty, v) if ty.is_int() => consts[r.index()] = consts[v.index()],
                    Op::Alloca { count, .. } => counts[r.index()] = Some(*count),
                    _ => {}
                }
            }
        }
        for (bid, block) in func.iter_blocks() {
            for (iid, inst) in block.insts.iter().enumerate() {
                let Op::Gep { ptr, index } = &inst.op else {
                    continue;
                };
                let (Some(count), Some(idx)) = (counts[ptr.index()], consts[index.index()]) else {
                    continue;
                };
                if idx < 0 || idx >= count as i64 {
                    out.push(Diagnostic {
                        severity: Severity::Error,
                        lint: self.name(),
                        function: func.name.clone(),
                        block: Some(bid),
                        inst: Some(iid),
                        span: inst.span,
                        message: format!(
                            "constant index {idx} is out of bounds for an allocation of {count} elements"
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// unused-param
// ---------------------------------------------------------------------------

/// Flags kernel parameters the body never observes. Sees through the front
/// end's spill idiom: a parameter whose only use is a store into a private
/// cell that is never loaded is still unused.
struct UnusedParam;

impl Lint for UnusedParam {
    fn name(&self) -> &'static str {
        "unused-param"
    }

    fn description(&self) -> &'static str {
        "kernel parameters never observed by the kernel body"
    }

    fn check(&self, func: &Function, _module: &Module, out: &mut Vec<Diagnostic>) {
        if func.kind != FunctionKind::Kernel {
            return;
        }
        for (p, param) in func.params.iter().enumerate() {
            let pv = ValueId(p as u32);
            let mut observed = false;
            let mut spill_cells: Vec<ValueId> = Vec::new();
            for block in &func.blocks {
                for inst in &block.insts {
                    match &inst.op {
                        Op::Store { ptr, value } if *value == pv => {
                            spill_cells.push(*ptr);
                        }
                        other => {
                            if operands(other).contains(&pv) {
                                observed = true;
                            }
                        }
                    }
                }
                match &block.term {
                    Some(Terminator::CondBr { cond, .. }) if *cond == pv => observed = true,
                    Some(Terminator::Ret(Some(v))) if *v == pv => observed = true,
                    _ => {}
                }
            }
            if observed {
                continue;
            }
            // The parameter only reaches spill cells: it is used iff any of
            // those cells is ever read.
            let mut loaded = false;
            for cell in &spill_cells {
                let derived = derived_values(func, *cell);
                for block in &func.blocks {
                    for inst in &block.insts {
                        match &inst.op {
                            Op::Load(p2) if derived.contains(p2) => loaded = true,
                            Op::AtomicRmw { ptr, .. } | Op::AtomicCmpXchg { ptr, .. }
                                if derived.contains(ptr) =>
                            {
                                loaded = true
                            }
                            Op::Call { args, .. } if args.iter().any(|a| derived.contains(a)) => {
                                loaded = true
                            }
                            _ => {}
                        }
                    }
                }
            }
            if loaded {
                continue;
            }
            out.push(Diagnostic {
                severity: Severity::Note,
                lint: self.name(),
                function: func.name.clone(),
                block: None,
                inst: None,
                span: None,
                message: format!("kernel parameter `{}` is never used", param.name),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// barrier-divergence
// ---------------------------------------------------------------------------

/// Surfaces the [`crate::races`] barrier-divergence findings as lint errors
/// (a barrier under non-uniform control flow is undefined behaviour).
struct BarrierDivergence;

impl Lint for BarrierDivergence {
    fn name(&self) -> &'static str {
        "barrier-divergence"
    }

    fn description(&self) -> &'static str {
        "barriers reachable under control flow that may diverge within a group"
    }

    fn check(&self, func: &Function, module: &Module, out: &mut Vec<Diagnostic>) {
        if func.kind != FunctionKind::Kernel {
            return;
        }
        let Some(report) = races::analyze_kernel(module, &func.name) else {
            return;
        };
        for b in &report.divergent_barriers {
            out.push(Diagnostic {
                severity: Severity::Error,
                lint: self.name(),
                function: func.name.clone(),
                block: Some(b.block),
                inst: Some(b.inst),
                span: b.span,
                message: b.cause.clone(),
            });
        }
    }
}
