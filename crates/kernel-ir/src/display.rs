//! Textual form of the IR, for debugging, golden tests and diagnostics.
//!
//! The format is line-oriented and stable:
//!
//! ```text
//! kernel void mop(%0: global f32* ina, %1: global f32* out) {
//! bb0:
//!   %2 = get_global_id 0
//!   %3 = gep %1, %2
//!   ...
//!   ret
//! }
//! ```

use crate::ir::{Function, FunctionKind, Inst, Module, Op, Terminator};
use std::fmt;

/// Wrapper that implements [`fmt::Display`] for a function.
///
/// # Examples
///
/// ```
/// use kernel_ir::builder::FunctionBuilder;
/// use kernel_ir::display::print_function;
/// use kernel_ir::ir::FunctionKind;
/// use kernel_ir::types::Type;
///
/// let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::Void);
/// b.ret(None);
/// let f = b.finish();
/// assert!(print_function(&f).contains("void f()"));
/// ```
pub fn print_function(func: &Function) -> String {
    format!("{}", FunctionPrinter(func))
}

/// Print an entire module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    for f in &module.functions {
        out.push_str(&print_function(f));
        out.push('\n');
    }
    out
}

struct FunctionPrinter<'a>(&'a Function);

impl fmt::Display for FunctionPrinter<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let func = self.0;
        if func.kind == FunctionKind::Kernel {
            write!(f, "kernel ")?;
        }
        write!(f, "{} {}(", func.ret, func.name)?;
        for (i, p) in func.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "%{i}: {} {}", p.ty, p.name)?;
        }
        writeln!(f, ") {{")?;
        for (bid, block) in func.iter_blocks() {
            writeln!(f, "{bid}:")?;
            for inst in &block.insts {
                write!(f, "  ")?;
                write_inst(f, inst)?;
                writeln!(f)?;
            }
            match &block.term {
                Some(t) => {
                    write!(f, "  ")?;
                    write_term(f, t)?;
                    writeln!(f)?;
                }
                None => writeln!(f, "  <unterminated>")?,
            }
        }
        writeln!(f, "}}")
    }
}

fn write_inst(f: &mut fmt::Formatter<'_>, inst: &Inst) -> fmt::Result {
    if let Some(r) = inst.result {
        write!(f, "{r} = ")?;
    }
    match &inst.op {
        Op::Const(c) => write!(f, "const {c}"),
        Op::Bin(op, a, b) => write!(f, "{} {a}, {b}", op.mnemonic()),
        Op::Un(op, a) => write!(f, "{} {a}", op.mnemonic()),
        Op::Cmp(op, a, b) => write!(f, "cmp.{} {a}, {b}", op.mnemonic()),
        Op::Select(c, a, b) => write!(f, "select {c}, {a}, {b}"),
        Op::Cast(ty, v) => write!(f, "cast {ty}, {v}"),
        Op::Alloca { elem, count, space } => write!(f, "alloca {space} {elem} x {count}"),
        Op::Load(p) => write!(f, "load {p}"),
        Op::Store { ptr, value } => write!(f, "store {ptr}, {value}"),
        Op::Gep { ptr, index } => write!(f, "gep {ptr}, {index}"),
        Op::Call { callee, args } => {
            write!(f, "call {callee}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")
        }
        Op::WorkItem { builtin, dim } => write!(f, "{} {dim}", builtin.name()),
        Op::AtomicRmw { op, ptr, value } => write!(f, "{} {ptr}, {value}", op.mnemonic()),
        Op::AtomicCmpXchg {
            ptr,
            expected,
            desired,
        } => {
            write!(f, "atomic_cmpxchg {ptr}, {expected}, {desired}")
        }
        Op::Barrier => write!(f, "barrier"),
    }
}

fn write_term(f: &mut fmt::Formatter<'_>, term: &Terminator) -> fmt::Result {
    match term {
        Terminator::Br(b) => write!(f, "br {b}"),
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => {
            write!(f, "condbr {cond}, {then_bb}, {else_bb}")
        }
        Terminator::Ret(Some(v)) => write!(f, "ret {v}"),
        Terminator::Ret(None) => write!(f, "ret"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ir::{BinOp, CmpOp, FunctionKind, WiBuiltin};
    use crate::types::{AddressSpace, Type};

    #[test]
    fn prints_kernel_with_all_shapes() {
        let mut b = FunctionBuilder::new("mop", FunctionKind::Kernel, Type::Void);
        let buf = b.add_param("out", Type::ptr(AddressSpace::Global, Type::F32));
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let p = b.gep(buf, gid);
        let v = b.load(p);
        let c = b.const_f32(1.0);
        let s = b.bin(BinOp::Add, v, c);
        let cnd = b.cmp(CmpOp::Lt, gid, gid);
        let sel = b.select(cnd, s, v);
        b.store(p, sel);
        b.barrier();
        b.ret(None);
        let text = print_function(&b.finish());
        assert!(text.contains("kernel void mop(%0: global f32* out)"));
        assert!(text.contains("get_global_id 0"));
        assert!(text.contains("cmp.lt"));
        assert!(text.contains("select"));
        assert!(text.contains("barrier"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn prints_module() {
        let mut b = FunctionBuilder::new("f", FunctionKind::Helper, Type::I32);
        let x = b.add_param("x", Type::I32);
        b.ret(Some(x));
        let mut m = Module::new();
        m.insert_function(b.finish());
        let text = print_module(&m);
        assert!(text.contains("i32 f(%0: i32 x)"));
        assert!(text.contains("ret %0"));
    }
}
