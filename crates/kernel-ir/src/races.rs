//! `accelcheck` — static race & divergence analysis over kernel IR.
//!
//! The transparent plane must decide, per kernel, whether cross-work-group
//! parallel interpretation is safe *without seeing the source*. The historical
//! gate was the single coarse [`crate::analysis::uses_global_atomics`] bit:
//! atomics ⇒ sequential, no atomics ⇒ parallel on trust. This module replaces
//! it with a real analysis:
//!
//! * **Global write-set race analysis** — a forward symbolic dataflow
//!   classifies the byte offset of every `global`-space access as an *affine*
//!   function of the work-item coordinates (`a·lid_d + b·grp_d + base`, with
//!   an optional loop-widened stride set), then proves cross-group
//!   disjointness of each written buffer either symbolically (tight-packing
//!   chain over the launch axes) or concretely at launch time (evaluated
//!   chain, or bounded enumeration for guarded/rounded-up launches).
//! * **Per-kernel verdict** — [`ParallelSafety`]: `Safe` (disjoint writes),
//!   `SafeViaAtomics` (all contended accesses are atomic; `deterministic`
//!   when they are commutative with unused results, so parallel execution is
//!   bit-identical to sequential), or `Racy { site }` naming the offending
//!   access.
//! * **Barrier-divergence check** — a barrier control-dependent on a
//!   condition that varies across the work items of one group is undefined
//!   behaviour; detected via postdominators + the uniformity lattice of the
//!   same dataflow.
//!
//! The dynamic ground truth for all of this is the shadow-mode race oracle in
//! [`crate::interp`] (`run_kernel_oracle`): proptests assert the static
//! verdict is never `Safe`/`SafeViaAtomics` when the oracle observes a
//! cross-group conflict.
//!
//! The IR is not SSA-with-phis: loop-carried state lives in private scalar
//! `alloca` cells. The dataflow therefore tracks those cells flow-sensitively
//! (strong updates on store, joins at loop heads) and widens loop increments
//! into the affine *step set* rather than losing them.

use crate::analysis::reachable_helpers;
use crate::interp::interp_size;
use crate::ir::{
    AtomicOp, BinOp, BlockId, CmpOp, ConstVal, Function, FunctionKind, Module, Op, Terminator,
    UnOp, ValueId, WiBuiltin,
};
use crate::types::{AddressSpace, Type};
use crate::verify::{operands, successors};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Marker used as the parameter index of accesses whose base pointer could
/// not be traced back to a kernel parameter.
pub const UNKNOWN_PARAM: usize = usize::MAX;

// ---------------------------------------------------------------------------
// Symbolic polynomial domain
// ---------------------------------------------------------------------------

/// An atomic symbolic quantity: launch-time constants the analysis keeps
/// opaque but can compare structurally and evaluate once a launch is known.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Atom {
    /// Kernel argument (scalar) by parameter index.
    Arg(usize),
    /// `get_local_size(d)`.
    LocalSize(u8),
    /// `get_num_groups(d)`.
    NumGroups(u8),
    /// `get_work_dim()`.
    WorkDim,
    /// A non-polynomial combination of uniform quantities (division, bit ops,
    /// …) kept as an opaque tree so equal computations still compare equal.
    Opaque(Box<Opq>),
}

/// Opaque uniform computation node (see [`Atom::Opaque`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Opq {
    Bin(BinOp, Poly, Poly),
    Un(UnOp, Poly),
}

/// A multivariate polynomial over [`Atom`]s with `i64` coefficients.
/// The key is a *sorted* multiset of atoms (`[]` = the constant term).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
struct Poly {
    terms: BTreeMap<Vec<Atom>, i64>,
}

impl Poly {
    fn zero() -> Self {
        Poly::default()
    }

    fn constant(c: i64) -> Self {
        let mut terms = BTreeMap::new();
        if c != 0 {
            terms.insert(Vec::new(), c);
        }
        Poly { terms }
    }

    fn atom(a: Atom) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(vec![a], 1);
        Poly { terms }
    }

    fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    fn as_const(&self) -> Option<i64> {
        if self.terms.is_empty() {
            return Some(0);
        }
        if self.terms.len() == 1 {
            if let Some(c) = self.terms.get(&Vec::new()) {
                return Some(*c);
            }
        }
        None
    }

    fn add(&self, o: &Poly) -> Poly {
        let mut terms = self.terms.clone();
        for (k, v) in &o.terms {
            let e = terms.entry(k.clone()).or_insert(0);
            *e = e.wrapping_add(*v);
            if *e == 0 {
                terms.remove(k);
            }
        }
        Poly { terms }
    }

    fn neg(&self) -> Poly {
        Poly {
            terms: self
                .terms
                .iter()
                .map(|(k, v)| (k.clone(), v.wrapping_neg()))
                .collect(),
        }
    }

    fn sub(&self, o: &Poly) -> Poly {
        self.add(&o.neg())
    }

    fn scale(&self, k: i64) -> Poly {
        if k == 0 {
            return Poly::zero();
        }
        Poly {
            terms: self
                .terms
                .iter()
                .map(|(t, v)| (t.clone(), v.wrapping_mul(k)))
                .collect(),
        }
    }

    fn mul(&self, o: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (ka, va) in &self.terms {
            for (kb, vb) in &o.terms {
                let mut key: Vec<Atom> = ka.iter().chain(kb.iter()).cloned().collect();
                key.sort();
                let e = out.terms.entry(key).or_insert(0);
                *e = e.wrapping_add(va.wrapping_mul(*vb));
            }
        }
        out.terms.retain(|_, v| *v != 0);
        out
    }

    /// If `self == k · o` for an integer `k`, return `k`.
    fn const_ratio(&self, o: &Poly) -> Option<i64> {
        if o.terms.is_empty() {
            return None;
        }
        if self.terms.len() != o.terms.len() {
            return None;
        }
        let mut ratio: Option<i64> = None;
        for ((ka, va), (kb, vb)) in self.terms.iter().zip(o.terms.iter()) {
            if ka != kb || *vb == 0 || va % vb != 0 {
                return None;
            }
            let r = va / vb;
            match ratio {
                None => ratio = Some(r),
                Some(prev) if prev != r => return None,
                _ => {}
            }
        }
        ratio
    }

    fn eval(&self, env: &LaunchEnv<'_>) -> Option<i64> {
        let mut total: i64 = 0;
        for (atoms, coeff) in &self.terms {
            let mut term = *coeff;
            for a in atoms {
                term = term.checked_mul(eval_atom(a, env)?)?;
            }
            total = total.checked_add(term)?;
        }
        Some(total)
    }
}

fn eval_atom(a: &Atom, env: &LaunchEnv<'_>) -> Option<i64> {
    match a {
        Atom::Arg(i) => *env.args.get(*i)?,
        Atom::LocalSize(d) => Some(env.local[*d as usize] as i64),
        Atom::NumGroups(d) => Some(env.groups[*d as usize] as i64),
        Atom::WorkDim => Some(env.work_dim as i64),
        Atom::Opaque(o) => match &**o {
            Opq::Bin(op, a, b) => fold_bin(*op, a.eval(env)?, b.eval(env)?),
            Opq::Un(op, a) => fold_un(*op, a.eval(env)?),
        },
    }
}

fn fold_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if !(0..64).contains(&b) {
                return None;
            }
            a.wrapping_shl(b as u32)
        }
        BinOp::Shr => {
            if !(0..64).contains(&b) {
                return None;
            }
            a.wrapping_shr(b as u32)
        }
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
    })
}

fn fold_un(op: UnOp, a: i64) -> Option<i64> {
    Some(match op {
        UnOp::Neg => a.wrapping_neg(),
        UnOp::Not => (a == 0) as i64,
        UnOp::Abs => a.wrapping_abs(),
        _ => return None,
    })
}

/// Make an opaque (or folded) uniform poly for a binary op.
fn opaque_bin(op: BinOp, a: &Poly, b: &Poly) -> Poly {
    if let (Some(ca), Some(cb)) = (a.as_const(), b.as_const()) {
        if let Some(f) = fold_bin(op, ca, cb) {
            return Poly::constant(f);
        }
    }
    Poly::atom(Atom::Opaque(Box::new(Opq::Bin(op, a.clone(), b.clone()))))
}

fn opaque_un(op: UnOp, a: &Poly) -> Poly {
    if let Some(ca) = a.as_const() {
        if let Some(f) = fold_un(op, ca) {
            return Poly::constant(f);
        }
    }
    Poly::atom(Atom::Opaque(Box::new(Opq::Un(op, a.clone()))))
}

// ---------------------------------------------------------------------------
// Affine values over work-item coordinates
// ---------------------------------------------------------------------------

/// A varying launch axis: local id or group id in one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Axis {
    Lid(u8),
    Grp(u8),
}

/// Maximum number of distinct loop strides tracked before widening degrades
/// the value to an unknown (geometric loops like `k *= 2` hit this cap).
const MAX_STEPS: usize = 3;

/// `base + Σ coeff_axis · axis`, smeared by any integer combination of the
/// polynomials in `steps` (loop-carried increments, sign-insensitive).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Affine {
    base: Poly,
    coeffs: BTreeMap<Axis, Poly>,
    steps: BTreeSet<Poly>,
}

impl Affine {
    fn uniform(p: Poly) -> Self {
        Affine {
            base: p,
            coeffs: BTreeMap::new(),
            steps: BTreeSet::new(),
        }
    }

    fn normalized(mut self) -> Self {
        self.coeffs.retain(|_, p| !p.is_zero());
        self.steps.retain(|p| !p.is_zero());
        self
    }

    /// Pure uniform: same value for every work item, no loop smear.
    fn as_pure_uniform(&self) -> Option<&Poly> {
        if self.coeffs.is_empty() && self.steps.is_empty() {
            Some(&self.base)
        } else {
            None
        }
    }

    /// No intra-group variation (no `Lid` coefficients); loop smear allowed
    /// because every item of the group replays the same sequence.
    fn group_uniform(&self) -> bool {
        !self.coeffs.keys().any(|a| matches!(a, Axis::Lid(_)))
    }

    fn step_free(&self) -> bool {
        self.steps.is_empty()
    }

    fn add(&self, o: &Affine) -> Affine {
        let mut coeffs = self.coeffs.clone();
        for (a, p) in &o.coeffs {
            let e = coeffs.entry(*a).or_insert_with(Poly::zero);
            *e = e.add(p);
        }
        Affine {
            base: self.base.add(&o.base),
            coeffs,
            steps: self.steps.union(&o.steps).cloned().collect(),
        }
        .normalized()
    }

    fn neg(&self) -> Affine {
        Affine {
            base: self.base.neg(),
            coeffs: self.coeffs.iter().map(|(a, p)| (*a, p.neg())).collect(),
            // Steps are sign-insensitive (smear in both directions).
            steps: self.steps.clone(),
        }
    }

    fn sub(&self, o: &Affine) -> Affine {
        self.add(&o.neg())
    }

    /// Multiply everything by a pure-uniform polynomial.
    fn scale_poly(&self, u: &Poly) -> Affine {
        Affine {
            base: self.base.mul(u),
            coeffs: self.coeffs.iter().map(|(a, p)| (*a, p.mul(u))).collect(),
            steps: self.steps.iter().map(|p| p.mul(u)).collect(),
        }
        .normalized()
    }

    /// Evaluate for a concrete work item. Ignores `steps` (callers handle the
    /// smear separately via the gcd of the evaluated steps).
    fn eval_at(&self, env: &LaunchEnv<'_>, lid: [usize; 3], grp: [usize; 3]) -> Option<i64> {
        let mut v = self.base.eval(env)?;
        for (a, p) in &self.coeffs {
            let axis = match a {
                Axis::Lid(d) => lid[*d as usize] as i64,
                Axis::Grp(d) => grp[*d as usize] as i64,
            };
            v = v.checked_add(p.eval(env)?.checked_mul(axis)?)?;
        }
        Some(v)
    }
}

/// The affine form of `get_global_id(d)`: `LS_d · grp_d + lid_d`.
fn gid_affine(d: u8) -> Affine {
    let mut coeffs = BTreeMap::new();
    coeffs.insert(Axis::Lid(d), Poly::constant(1));
    coeffs.insert(Axis::Grp(d), Poly::atom(Atom::LocalSize(d)));
    Affine {
        base: Poly::zero(),
        coeffs,
        steps: BTreeSet::new(),
    }
}

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

/// A symbolic comparison between two step-free-or-not affine values; used
/// both as the abstract value of `Cmp` results and as a path guard.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct CondVal {
    op: CmpOp,
    lhs: Affine,
    rhs: Affine,
}

impl CondVal {
    fn negate(&self) -> CondVal {
        let op = match self.op {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
        };
        CondVal {
            op,
            lhs: self.lhs.clone(),
            rhs: self.rhs.clone(),
        }
    }

    fn group_uniform(&self) -> bool {
        self.lhs.group_uniform() && self.rhs.group_uniform()
    }

    /// Item-fixed: a pure function of the item coordinates and launch
    /// constants, so it evaluates identically every time the item reaches it.
    fn item_fixed(&self) -> bool {
        self.lhs.step_free() && self.rhs.step_free()
    }

    fn eval_at(&self, env: &LaunchEnv<'_>, lid: [usize; 3], grp: [usize; 3]) -> Option<bool> {
        let l = self.lhs.eval_at(env, lid, grp)?;
        let r = self.rhs.eval_at(env, lid, grp)?;
        Some(match self.op {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        })
    }
}

/// Where a pointer points.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum PtrBase {
    /// Kernel parameter (buffer) by index.
    Param(usize),
    /// An `alloca` in this function, identified by `(block, inst)`.
    Cell {
        block: u32,
        inst: u32,
        space: AddressSpace,
        /// Private scalar cell tracked flow-sensitively by the dataflow.
        tracked: bool,
    },
}

/// Abstract pointer: base plus byte offset (None = unknown offset).
#[derive(Debug, Clone, PartialEq, Eq)]
struct PtrVal {
    base: PtrBase,
    off: Option<Affine>,
}

/// The abstract-value lattice.
///
/// `UnknownUniform` is the load-bearing middle tier: the value itself is
/// unknown, but it provably does not vary across the work items of a group
/// (all items replay the same computation on group-uniform inputs). It keeps
/// uniform loop conditions like `stride = stride / 2` from poisoning the
/// barrier-divergence check.
#[derive(Debug, Clone, PartialEq, Eq)]
enum AbsVal {
    Aff(Affine),
    UnknownUniform,
    Ptr(PtrVal),
    Cond(CondVal),
    Unknown,
}

impl AbsVal {
    fn group_uniform(&self) -> bool {
        match self {
            AbsVal::Aff(a) => a.group_uniform(),
            AbsVal::UnknownUniform => true,
            AbsVal::Cond(c) => c.group_uniform(),
            AbsVal::Ptr(p) => p.off.as_ref().is_some_and(|o| o.group_uniform()),
            AbsVal::Unknown => false,
        }
    }

    /// Degrade a non-representable value along the uniformity axis.
    fn degrade(&self) -> AbsVal {
        if self.group_uniform() {
            AbsVal::UnknownUniform
        } else {
            AbsVal::Unknown
        }
    }

    fn as_affine(&self) -> Option<&Affine> {
        match self {
            AbsVal::Aff(a) => Some(a),
            _ => None,
        }
    }
}

fn degrade_pair(a: &AbsVal, b: &AbsVal) -> AbsVal {
    if a.group_uniform() && b.group_uniform() {
        AbsVal::UnknownUniform
    } else {
        AbsVal::Unknown
    }
}

/// Join two abstract values. Equal values are kept; affine values with equal
/// coefficient maps widen their base difference into the step set (loop
/// increments); everything else degrades along the uniformity axis. In
/// `aggressive` mode (fixpoint safety valve) any inequality degrades.
fn join(a: &AbsVal, b: &AbsVal, aggressive: bool) -> AbsVal {
    if a == b {
        return a.clone();
    }
    if aggressive {
        return degrade_pair(a, b);
    }
    match (a, b) {
        (AbsVal::Aff(x), AbsVal::Aff(y)) => join_affine(x, y)
            .map(AbsVal::Aff)
            .unwrap_or_else(|| degrade_pair(a, b)),
        (AbsVal::Ptr(x), AbsVal::Ptr(y)) if x.base == y.base => {
            let off = match (&x.off, &y.off) {
                (Some(ox), Some(oy)) => join_affine(ox, oy),
                _ => None,
            };
            AbsVal::Ptr(PtrVal {
                base: x.base.clone(),
                off,
            })
        }
        (AbsVal::UnknownUniform, o) | (o, AbsVal::UnknownUniform) if o.group_uniform() => {
            AbsVal::UnknownUniform
        }
        _ => degrade_pair(a, b),
    }
}

/// Join affine values with identical coefficients by widening the base
/// difference into the step set; `None` when the join is not representable.
fn join_affine(x: &Affine, y: &Affine) -> Option<Affine> {
    if x.coeffs != y.coeffs {
        return None;
    }
    let (lo, hi) = if x.base <= y.base { (x, y) } else { (y, x) };
    let mut steps: BTreeSet<Poly> = x.steps.union(&y.steps).cloned().collect();
    let diff = hi.base.sub(&lo.base);
    if !diff.is_zero() {
        steps.insert(diff);
    }
    if steps.len() > MAX_STEPS {
        return None;
    }
    Some(Affine {
        base: lo.base.clone(),
        coeffs: lo.coeffs.clone(),
        steps,
    })
}

// ---------------------------------------------------------------------------
// Public report types
// ---------------------------------------------------------------------------

/// Per-kernel parallel-safety verdict — the replacement for the old
/// `uses_global_atomics` gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelSafety {
    /// All global writes are provably disjoint across work groups: parallel
    /// group execution is race-free and bit-identical to sequential.
    Safe,
    /// Every contended global access is atomic. `deterministic` is true when
    /// all contended atomics are commutative (add/sub/min/max) with unused
    /// results, so the final memory image is order-independent.
    SafeViaAtomics {
        /// Whether parallel execution is bit-identical to sequential.
        deterministic: bool,
    },
    /// A potential cross-group data race; `site` describes the offending
    /// access.
    Racy {
        /// Human-readable description of the first offending access.
        site: String,
    },
}

impl fmt::Display for ParallelSafety {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelSafety::Safe => write!(f, "safe"),
            ParallelSafety::SafeViaAtomics { deterministic } => {
                write!(
                    f,
                    "safe-via-atomics ({})",
                    if *deterministic {
                        "deterministic"
                    } else {
                        "order-dependent"
                    }
                )
            }
            ParallelSafety::Racy { site } => write!(f, "racy: {site}"),
        }
    }
}

/// How a site touches memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain load.
    Read,
    /// Plain store.
    Write,
    /// Atomic read-modify-write.
    Atomic {
        /// Which RMW operation.
        op: AtomicOp,
        /// Whether the returned old value is consumed anywhere.
        result_used: bool,
    },
    /// Atomic compare-and-swap.
    Cas {
        /// Whether the returned old value is consumed anywhere.
        result_used: bool,
    },
}

impl AccessKind {
    /// Whether the access mutates memory.
    pub fn is_write(&self) -> bool {
        !matches!(self, AccessKind::Read)
    }

    fn is_atomic(&self) -> bool {
        matches!(self, AccessKind::Atomic { .. } | AccessKind::Cas { .. })
    }

    /// Commutative atomic whose result is discarded: order-independent.
    fn order_independent(&self) -> bool {
        match self {
            AccessKind::Atomic { op, result_used } => {
                !result_used
                    && matches!(
                        op,
                        AtomicOp::Add | AtomicOp::Sub | AtomicOp::Min | AtomicOp::Max
                    )
            }
            _ => false,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
            AccessKind::Atomic { op, result_used } => {
                write!(
                    f,
                    "{}{}",
                    op.mnemonic(),
                    if *result_used { " (result used)" } else { "" }
                )
            }
            AccessKind::Cas { result_used } => write!(
                f,
                "atomic_cmpxchg{}",
                if *result_used { " (result used)" } else { "" }
            ),
        }
    }
}

/// One global-memory access discovered by the analysis.
#[derive(Debug, Clone)]
pub struct Site {
    /// Index of the kernel parameter the pointer traces back to, or
    /// [`UNKNOWN_PARAM`].
    pub param: usize,
    /// Source-level name of that parameter (`"<unknown>"` for untraceable
    /// pointers).
    pub param_name: String,
    /// How the site accesses memory.
    pub kind: AccessKind,
    /// Block containing the access.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: usize,
    /// Source span `(line, col)` if the front end recorded one.
    pub span: Option<(u32, u32)>,
    /// Access width in bytes.
    pub bytes: usize,
    offset: Option<Affine>,
    guards: BTreeSet<CondVal>,
}

impl Site {
    /// Coarse classification of the byte-offset expression: `"item-affine"`
    /// (varies with the local id), `"group-affine"` (varies only with the
    /// group id), `"uniform"` (same for all items) or `"unknown"`.
    pub fn index_class(&self) -> &'static str {
        match &self.offset {
            None => "unknown",
            Some(a) => {
                if !a.group_uniform() {
                    "item-affine"
                } else if !a.coeffs.is_empty() {
                    "group-affine"
                } else {
                    "uniform"
                }
            }
        }
    }

    /// Human-readable location: source span when available, IR location
    /// otherwise.
    pub fn location(&self) -> String {
        match self.span {
            Some((line, col)) => format!("{line}:{col}"),
            None => format!("bb{}/{}", self.block.0, self.inst),
        }
    }

    fn describe(&self) -> String {
        format!(
            "{} of `{}` at {} ({} index)",
            self.kind,
            self.param_name,
            self.location(),
            self.index_class()
        )
    }
}

/// A barrier executed under control flow that may diverge within a group.
#[derive(Debug, Clone)]
pub struct BarrierSite {
    /// Block containing the barrier (or the call to a barrier-using helper).
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: usize,
    /// Source span if recorded.
    pub span: Option<(u32, u32)>,
    /// Why the controlling condition is considered divergent.
    pub cause: String,
}

/// Concrete launch parameters for the launch-time eligibility check.
#[derive(Debug, Clone, Copy)]
pub struct LaunchEnv<'a> {
    /// Work-group size per dimension.
    pub local: [usize; 3],
    /// Number of groups per dimension.
    pub groups: [usize; 3],
    /// Number of launch dimensions.
    pub work_dim: u32,
    /// Scalar argument values by parameter index (`None` for buffers and
    /// non-integer scalars).
    pub args: &'a [Option<i64>],
    /// Whether all buffer arguments are pairwise distinct (no aliasing
    /// between parameters).
    pub distinct_buffers: bool,
}

/// Per-written-parameter safety route (how the parameter was proven safe).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Route {
    /// All sites proven cross-group disjoint symbolically. `unit_groups`
    /// lists dimensions that must have exactly one group for the proof to
    /// hold (zero group coefficient on that axis).
    Disjoint { unit_groups: BTreeSet<u8> },
    /// All sites are atomic; contention is synchronized.
    Contended { deterministic: bool },
    /// Well-formed affine sites whose disjointness could not be proven
    /// symbolically; re-checked per launch with concrete sizes.
    NeedsLaunch,
    /// A potential data race.
    Racy { why: String },
}

/// The full analysis result for one kernel.
#[derive(Debug, Clone)]
pub struct KernelRaceReport {
    /// Kernel name.
    pub kernel: String,
    /// The parallel-safety verdict.
    pub verdict: ParallelSafety,
    /// Every global-memory access discovered (reads included).
    pub sites: Vec<Site>,
    /// Barriers under potentially divergent control flow (undefined
    /// behaviour per the OpenCL execution model).
    pub divergent_barriers: Vec<BarrierSite>,
    routes: BTreeMap<usize, Route>,
}

// ---------------------------------------------------------------------------
// The dataflow analyzer
// ---------------------------------------------------------------------------

type CellId = (u32, u32);
type CellMap = BTreeMap<CellId, AbsVal>;

struct Analyzer<'a> {
    func: &'a Function,
    module: &'a Module,
    regs: Vec<Option<AbsVal>>,
    used: Vec<bool>,
    aggressive: bool,
    changed: bool,
}

impl<'a> Analyzer<'a> {
    fn new(func: &'a Function, module: &'a Module) -> Self {
        let mut used = vec![false; func.value_types.len()];
        for block in &func.blocks {
            for inst in &block.insts {
                for v in operands(&inst.op) {
                    used[v.index()] = true;
                }
            }
            match &block.term {
                Some(Terminator::CondBr { cond, .. }) => used[cond.index()] = true,
                Some(Terminator::Ret(Some(v))) => used[v.index()] = true,
                _ => {}
            }
        }
        let mut regs: Vec<Option<AbsVal>> = vec![None; func.value_types.len()];
        for (i, p) in func.params.iter().enumerate() {
            regs[i] = Some(if p.ty.is_ptr() {
                AbsVal::Ptr(PtrVal {
                    base: PtrBase::Param(i),
                    off: Some(Affine::uniform(Poly::zero())),
                })
            } else if p.ty.is_int() {
                AbsVal::Aff(Affine::uniform(Poly::atom(Atom::Arg(i))))
            } else {
                // Float/bool scalars: uniform but not usable in offsets.
                AbsVal::UnknownUniform
            });
        }
        Analyzer {
            func,
            module,
            regs,
            used,
            aggressive: false,
            changed: false,
        }
    }

    fn reg(&self, v: ValueId) -> AbsVal {
        self.regs[v.index()].clone().unwrap_or(AbsVal::Unknown)
    }

    fn set_reg(&mut self, v: ValueId, val: AbsVal) {
        let slot = &mut self.regs[v.index()];
        let next = match slot.take() {
            None => {
                self.changed = true;
                val
            }
            Some(old) => {
                let j = join(&old, &val, self.aggressive);
                if j != old {
                    self.changed = true;
                }
                j
            }
        };
        *slot = Some(next);
    }

    /// Whether a callee (transitively) touches global memory.
    fn callee_touches_global(&self, callee: &str) -> bool {
        let touches = |f: &Function| {
            f.blocks.iter().any(|b| {
                b.insts.iter().any(|i| {
                    let ptr = match &i.op {
                        Op::Load(p) => *p,
                        Op::Store { ptr, .. } => *ptr,
                        Op::AtomicRmw { ptr, .. } => *ptr,
                        Op::AtomicCmpXchg { ptr, .. } => *ptr,
                        _ => return false,
                    };
                    matches!(
                        f.value_type(ptr).space(),
                        Some(AddressSpace::Global | AddressSpace::Constant)
                    )
                })
            })
        };
        let Some(f) = self.module.function(callee) else {
            return true; // unknown callee: be conservative
        };
        if touches(f) {
            return true;
        }
        reachable_helpers(f, self.module)
            .iter()
            .filter_map(|n| self.module.function(n))
            .any(touches)
    }

    /// Transfer one block: update cells/regs; when `sites` is given, record
    /// global-memory accesses.
    fn transfer(&mut self, bid: usize, cells: &mut CellMap, mut sites: Option<&mut Vec<Site>>) {
        let block = &self.func.blocks[bid];
        for (iid, inst) in block.insts.iter().enumerate() {
            let val = match &inst.op {
                Op::Const(c) => match c {
                    ConstVal::Bool(_) | ConstVal::F32(_) | ConstVal::F64(_) => {
                        AbsVal::UnknownUniform
                    }
                    ConstVal::I32(v) => AbsVal::Aff(Affine::uniform(Poly::constant(*v as i64))),
                    ConstVal::I64(v) => AbsVal::Aff(Affine::uniform(Poly::constant(*v))),
                },
                Op::Bin(op, a, b) => self.transfer_bin(*op, &self.reg(*a), &self.reg(*b)),
                Op::Un(op, a) => {
                    let av = self.reg(*a);
                    match (&av, op) {
                        (AbsVal::Aff(x), UnOp::Neg) => AbsVal::Aff(x.neg()),
                        (AbsVal::Aff(x), _) => match x.as_pure_uniform() {
                            Some(p) => AbsVal::Aff(Affine::uniform(opaque_un(*op, p))),
                            None => av.degrade(),
                        },
                        _ => av.degrade(),
                    }
                }
                Op::Cmp(op, a, b) => {
                    let (av, bv) = (self.reg(*a), self.reg(*b));
                    match (av.as_affine(), bv.as_affine()) {
                        (Some(x), Some(y)) => AbsVal::Cond(CondVal {
                            op: *op,
                            lhs: x.clone(),
                            rhs: y.clone(),
                        }),
                        _ => degrade_pair(&av, &bv),
                    }
                }
                Op::Select(c, a, b) => {
                    let (cv, av, bv) = (self.reg(*c), self.reg(*a), self.reg(*b));
                    if av == bv {
                        av
                    } else if cv.group_uniform() {
                        join(&av, &bv, false)
                    } else {
                        degrade_pair(&av, &bv)
                    }
                }
                Op::Cast(ty, v) => {
                    let av = self.reg(*v);
                    if ty.is_int() && self.func.value_type(*v).is_int() {
                        match av {
                            AbsVal::Cond(_) => av.degrade(),
                            other => other,
                        }
                    } else {
                        av.degrade()
                    }
                }
                Op::Alloca { elem, count, space } => {
                    let tracked = *space == AddressSpace::Private
                        && *count == 1
                        && (elem.is_int()
                            || elem.is_float()
                            || *elem == Type::Bool
                            || elem.is_ptr());
                    let cell = (bid as u32, iid as u32);
                    if tracked {
                        cells.entry(cell).or_insert(AbsVal::Unknown);
                    }
                    AbsVal::Ptr(PtrVal {
                        base: PtrBase::Cell {
                            block: cell.0,
                            inst: cell.1,
                            space: *space,
                            tracked,
                        },
                        off: Some(Affine::uniform(Poly::zero())),
                    })
                }
                Op::Load(p) => {
                    self.record_access(
                        *p,
                        AccessKind::Read,
                        bid,
                        iid,
                        inst.span,
                        sites.as_deref_mut(),
                    );
                    match self.reg(*p) {
                        AbsVal::Ptr(PtrVal {
                            base: PtrBase::Cell { tracked: true, .. },
                            off: Some(o),
                        }) if o.as_pure_uniform().map(Poly::is_zero) == Some(true) => {
                            let cell = match self.reg(*p) {
                                AbsVal::Ptr(PtrVal {
                                    base: PtrBase::Cell { block, inst, .. },
                                    ..
                                }) => (block, inst),
                                _ => unreachable!(),
                            };
                            cells.get(&cell).cloned().unwrap_or(AbsVal::Unknown)
                        }
                        _ => AbsVal::Unknown,
                    }
                }
                Op::Store { ptr, value } => {
                    let vv = self.reg(*value);
                    self.record_access(
                        *ptr,
                        AccessKind::Write,
                        bid,
                        iid,
                        inst.span,
                        sites.as_deref_mut(),
                    );
                    match self.reg(*ptr) {
                        AbsVal::Ptr(PtrVal {
                            base:
                                PtrBase::Cell {
                                    block,
                                    inst: cinst,
                                    tracked: true,
                                    ..
                                },
                            off,
                        }) => {
                            let zero_off = off
                                .as_ref()
                                .and_then(|o| o.as_pure_uniform())
                                .map(Poly::is_zero)
                                == Some(true);
                            cells.insert(
                                (block, cinst),
                                if zero_off { vv } else { AbsVal::Unknown },
                            );
                        }
                        AbsVal::Unknown => {
                            // A store through an untraceable pointer could hit
                            // anything, including tracked cells.
                            for v in cells.values_mut() {
                                *v = AbsVal::Unknown;
                            }
                        }
                        _ => {}
                    }
                    AbsVal::Unknown
                }
                Op::Gep { ptr, index } => match self.reg(*ptr) {
                    AbsVal::Ptr(PtrVal { base, off }) => {
                        let stride = self
                            .func
                            .value_type(*ptr)
                            .pointee()
                            .map(interp_size)
                            .unwrap_or(1) as i64;
                        let idx = self.reg(*index);
                        let off = match (off, idx.as_affine()) {
                            (Some(o), Some(i)) => {
                                Some(o.add(&i.scale_poly(&Poly::constant(stride))))
                            }
                            _ => None,
                        };
                        AbsVal::Ptr(PtrVal { base, off })
                    }
                    _ => AbsVal::Unknown,
                },
                Op::Call { callee, args } => {
                    let touches_global = self.callee_touches_global(callee);
                    let mut all_uniform = true;
                    for a in args {
                        let av = self.reg(*a);
                        all_uniform &= av.group_uniform();
                        if let AbsVal::Ptr(PtrVal { base, .. }) = &av {
                            match base {
                                PtrBase::Param(p) if touches_global => {
                                    // The callee may read or write anywhere in
                                    // this buffer.
                                    if let Some(s) = sites.as_deref_mut() {
                                        s.push(self.make_site(
                                            *p,
                                            AccessKind::Write,
                                            bid,
                                            iid,
                                            inst.span,
                                            1,
                                            None,
                                        ));
                                    }
                                }
                                PtrBase::Cell {
                                    block,
                                    inst: cinst,
                                    tracked: true,
                                    ..
                                } => {
                                    // The callee may store through the cell.
                                    cells.insert((*block, *cinst), AbsVal::Unknown);
                                }
                                _ => {}
                            }
                        }
                    }
                    if all_uniform {
                        AbsVal::UnknownUniform
                    } else {
                        AbsVal::Unknown
                    }
                }
                Op::WorkItem { builtin, dim } => {
                    let d = *dim;
                    match builtin {
                        WiBuiltin::GlobalId => AbsVal::Aff(gid_affine(d)),
                        WiBuiltin::LocalId => {
                            let mut coeffs = BTreeMap::new();
                            coeffs.insert(Axis::Lid(d), Poly::constant(1));
                            AbsVal::Aff(Affine {
                                base: Poly::zero(),
                                coeffs,
                                steps: BTreeSet::new(),
                            })
                        }
                        WiBuiltin::GroupId => {
                            let mut coeffs = BTreeMap::new();
                            coeffs.insert(Axis::Grp(d), Poly::constant(1));
                            AbsVal::Aff(Affine {
                                base: Poly::zero(),
                                coeffs,
                                steps: BTreeSet::new(),
                            })
                        }
                        WiBuiltin::GlobalSize => AbsVal::Aff(Affine::uniform(
                            Poly::atom(Atom::LocalSize(d)).mul(&Poly::atom(Atom::NumGroups(d))),
                        )),
                        WiBuiltin::LocalSize => {
                            AbsVal::Aff(Affine::uniform(Poly::atom(Atom::LocalSize(d))))
                        }
                        WiBuiltin::NumGroups => {
                            AbsVal::Aff(Affine::uniform(Poly::atom(Atom::NumGroups(d))))
                        }
                        WiBuiltin::WorkDim => {
                            AbsVal::Aff(Affine::uniform(Poly::atom(Atom::WorkDim)))
                        }
                    }
                }
                Op::AtomicRmw { op, ptr, .. } => {
                    let result_used = inst.result.map(|r| self.used[r.index()]).unwrap_or(false);
                    self.record_access(
                        *ptr,
                        AccessKind::Atomic {
                            op: *op,
                            result_used,
                        },
                        bid,
                        iid,
                        inst.span,
                        sites.as_deref_mut(),
                    );
                    AbsVal::Unknown
                }
                Op::AtomicCmpXchg { ptr, .. } => {
                    let result_used = inst.result.map(|r| self.used[r.index()]).unwrap_or(false);
                    self.record_access(
                        *ptr,
                        AccessKind::Cas { result_used },
                        bid,
                        iid,
                        inst.span,
                        sites.as_deref_mut(),
                    );
                    AbsVal::Unknown
                }
                Op::Barrier => AbsVal::Unknown,
            };
            if let Some(r) = inst.result {
                self.set_reg(r, val);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn make_site(
        &self,
        param: usize,
        kind: AccessKind,
        bid: usize,
        iid: usize,
        span: Option<(u32, u32)>,
        bytes: usize,
        offset: Option<Affine>,
    ) -> Site {
        let param_name = if param == UNKNOWN_PARAM {
            "<unknown>".to_string()
        } else {
            self.func.params[param].name.clone()
        };
        Site {
            param,
            param_name,
            kind,
            block: BlockId(bid as u32),
            inst: iid,
            span,
            bytes,
            offset,
            guards: BTreeSet::new(),
        }
    }

    /// Record a global-memory access site if `ptr` reaches global memory.
    fn record_access(
        &self,
        ptr: ValueId,
        kind: AccessKind,
        bid: usize,
        iid: usize,
        span: Option<(u32, u32)>,
        sites: Option<&mut Vec<Site>>,
    ) {
        let Some(sites) = sites else { return };
        let ty = self.func.value_type(ptr);
        let space = ty.space();
        let bytes = ty.pointee().map(interp_size).unwrap_or(1);
        match self.reg(ptr) {
            AbsVal::Ptr(PtrVal { base, off }) => match base {
                PtrBase::Param(p) => {
                    // Constant space is read-only; only global can race.
                    if space == Some(AddressSpace::Global)
                        || (space == Some(AddressSpace::Constant) && kind.is_write())
                    {
                        sites.push(self.make_site(p, kind, bid, iid, span, bytes, off));
                    }
                }
                PtrBase::Cell { .. } => {} // local/private: never cross-group
            },
            _ => {
                // Untraceable pointer: it may point at global memory.
                sites.push(self.make_site(UNKNOWN_PARAM, kind, bid, iid, span, bytes, None));
            }
        }
    }

    fn transfer_bin(&self, op: BinOp, a: &AbsVal, b: &AbsVal) -> AbsVal {
        let (x, y) = match (a.as_affine(), b.as_affine()) {
            (Some(x), Some(y)) => (x, y),
            _ => return degrade_pair(a, b),
        };
        match op {
            BinOp::Add => AbsVal::Aff(x.add(y)),
            BinOp::Sub => AbsVal::Aff(x.sub(y)),
            BinOp::Mul => {
                if let Some(u) = x.as_pure_uniform() {
                    AbsVal::Aff(y.scale_poly(u))
                } else if let Some(u) = y.as_pure_uniform() {
                    AbsVal::Aff(x.scale_poly(u))
                } else {
                    degrade_pair(a, b)
                }
            }
            BinOp::Shl => {
                if let Some(c) = y.as_pure_uniform().and_then(Poly::as_const) {
                    if (0..32).contains(&c) {
                        return AbsVal::Aff(x.scale_poly(&Poly::constant(1i64 << c)));
                    }
                }
                self.opaque_uniform(op, a, b, x, y)
            }
            _ => self.opaque_uniform(op, a, b, x, y),
        }
    }

    fn opaque_uniform(&self, op: BinOp, a: &AbsVal, b: &AbsVal, x: &Affine, y: &Affine) -> AbsVal {
        match (x.as_pure_uniform(), y.as_pure_uniform()) {
            (Some(px), Some(py)) => AbsVal::Aff(Affine::uniform(opaque_bin(op, px, py))),
            _ => degrade_pair(a, b),
        }
    }
}

// ---------------------------------------------------------------------------
// Fixpoint driver, guards, divergence
// ---------------------------------------------------------------------------

/// Join `from` into `into`; true if `into` changed.
fn join_cells(into: &mut Option<CellMap>, from: &CellMap, aggressive: bool) -> bool {
    match into {
        None => {
            *into = Some(from.clone());
            true
        }
        Some(cur) => {
            let mut changed = false;
            for (k, v) in from {
                match cur.get(k) {
                    None => {
                        cur.insert(*k, v.clone());
                        changed = true;
                    }
                    Some(old) => {
                        let j = join(old, v, aggressive);
                        if &j != old {
                            cur.insert(*k, j);
                            changed = true;
                        }
                    }
                }
            }
            changed
        }
    }
}

/// Blocks reachable from entry when the `cut` edge is removed. Used for path
/// guards: under a fixed (item-invariant) branch outcome the cut edge is
/// never taken, so unreachable blocks imply the opposite outcome.
fn reachable_without_edge(func: &Function, cut: (usize, usize)) -> Vec<bool> {
    let succs = successors(func);
    let n = func.blocks.len();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        for s in &succs[b] {
            let si = s.index();
            if (b, si) == cut || seen[si] {
                continue;
            }
            seen[si] = true;
            stack.push(si);
        }
    }
    seen
}

/// Postdominator sets over the CFG augmented with a virtual exit node
/// (index `n`); same u128-bitset iteration as `verify::dominators`.
fn postdominators(func: &Function) -> Vec<u128> {
    let n = func.blocks.len();
    assert!(n < 128, "function has too many blocks for postdominators");
    let exit = n;
    let succs = successors(func);
    let all: u128 = if n + 1 == 128 {
        u128::MAX
    } else {
        (1u128 << (n + 1)) - 1
    };
    let mut pdom = vec![all; n + 1];
    pdom[exit] = 1u128 << exit;
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut meet = all;
            let is_exit_pred = matches!(func.blocks[b].term, Some(Terminator::Ret(_)));
            if is_exit_pred {
                meet &= pdom[exit];
            } else {
                let mut any = false;
                for s in &succs[b] {
                    meet &= pdom[s.index()];
                    any = true;
                }
                if !any {
                    meet = pdom[exit]; // malformed/unterminated: treat as exiting
                }
            }
            let next = meet | (1u128 << b);
            if next != pdom[b] {
                pdom[b] = next;
                changed = true;
            }
        }
    }
    pdom
}

/// Blocks `B` control-dependent on branch block `D` (Ferrante et al.):
/// `B` postdominates a successor of `D` but does not strictly postdominate
/// `D` itself.
fn control_dependent_on(func: &Function, pdom: &[u128], d: usize) -> u128 {
    let mut deps = 0u128;
    let succs: Vec<usize> = match &func.blocks[d].term {
        Some(t) => t.successors().iter().map(|b| b.index()).collect(),
        None => vec![],
    };
    for b in 0..func.blocks.len() {
        let strictly_pdoms_d = b != d && pdom[d] & (1u128 << b) != 0;
        if strictly_pdoms_d {
            continue;
        }
        if succs.iter().any(|&s| pdom[s] & (1u128 << b) != 0) {
            deps |= 1u128 << b;
        }
    }
    deps
}

// ---------------------------------------------------------------------------
// Disjointness proofs
// ---------------------------------------------------------------------------

/// Launch-time enumeration is attempted only below this many work items.
const ENUM_LIMIT: usize = 65_536;

/// Symbolic tight-packing proof that all sites of one parameter are
/// cross-group disjoint. Returns the set of dimensions that must have a
/// single group (axes with no group coefficient).
fn symbolic_disjoint(sites: &[&Site]) -> Option<BTreeSet<u8>> {
    let offs: Vec<&Affine> = sites
        .iter()
        .map(|s| s.offset.as_ref())
        .collect::<Option<Vec<_>>>()?;
    let coeffs = &offs[0].coeffs;
    if offs.iter().any(|o| &o.coeffs != coeffs) {
        return None;
    }
    // Bases may differ by constants only; the spread joins the access width
    // in the innermost packed span.
    let base0 = &offs[0].base;
    let mut lo: i64 = 0;
    let mut hi: i64 = sites[0].bytes as i64;
    for (o, s) in offs.iter().zip(sites.iter()).skip(1) {
        let d = o.base.sub(base0).as_const()?;
        lo = lo.min(d);
        hi = hi.max(d + s.bytes as i64);
    }
    let span0 = hi - lo;
    let mut covered = Poly::constant(span0);
    let mut unit_groups = BTreeSet::new();
    for d in 0..3u8 {
        for axis in [Axis::Lid(d), Axis::Grp(d)] {
            match coeffs.get(&axis) {
                None => {
                    // Zero local coefficient: same-group duplication is fine
                    // (groups run sequentially). Zero group coefficient: all
                    // groups hit the same bytes — require a unit dimension.
                    if matches!(axis, Axis::Grp(_)) {
                        unit_groups.insert(d);
                    }
                }
                Some(c) => {
                    let r = c.const_ratio(&covered)?;
                    if r == 0 {
                        return None;
                    }
                    let range = match axis {
                        Axis::Lid(d) => Poly::atom(Atom::LocalSize(d)),
                        Axis::Grp(d) => Poly::atom(Atom::NumGroups(d)),
                    };
                    covered = covered.scale(r.abs()).mul(&range);
                }
            }
        }
    }
    // Loop strides must jump in whole multiples of the packed span.
    for o in &offs {
        for step in &o.steps {
            let k = step.const_ratio(&covered)?;
            if k == 0 {
                return None;
            }
        }
    }
    Some(unit_groups)
}

/// Single-writer proof: every site carries an equality guard pinning
/// `get_global_id(d)` to one uniform value, so at most one work item (per
/// unit combination of the other dimensions) executes any of them.
fn single_writer_dim(sites: &[&Site]) -> Option<u8> {
    let first = &sites.first()?.guards;
    for g in first {
        if g.op != CmpOp::Eq || !g.item_fixed() {
            continue;
        }
        // One side must be the gid decomposition of a single dimension
        // (injective: `gid_d == c` pins both `grp_d` and `lid_d`), the other
        // pure uniform.
        for (lhs, rhs) in [(&g.lhs, &g.rhs), (&g.rhs, &g.lhs)] {
            if rhs.as_pure_uniform().is_none() {
                continue;
            }
            for d in 0..3u8 {
                if lhs.coeffs == gid_affine(d).coeffs && sites.iter().all(|s| s.guards.contains(g))
                {
                    return Some(d);
                }
            }
        }
    }
    None
}

/// Concrete per-launch disjointness: evaluate the shared coefficients and
/// chain the axes in ascending magnitude; every axis stride must clear the
/// span accumulated so far.
fn concrete_disjoint(sites: &[&Site], env: &LaunchEnv<'_>) -> bool {
    let Some(offs) = sites
        .iter()
        .map(|s| s.offset.as_ref())
        .collect::<Option<Vec<_>>>()
    else {
        return false;
    };
    // Per-axis coefficient, identical across sites.
    let mut coeff: BTreeMap<Axis, i64> = BTreeMap::new();
    for o in &offs {
        for (a, p) in &o.coeffs {
            let Some(v) = p.eval(env) else { return false };
            match coeff.get(a) {
                None => {
                    coeff.insert(*a, v);
                }
                Some(prev) if *prev != v => return false,
                _ => {}
            }
        }
        // An axis missing from one site but present in another is a zero
        // coefficient mismatch.
    }
    for o in &offs {
        for a in coeff.keys() {
            if !o.coeffs.contains_key(a) && coeff[a] != 0 {
                return false;
            }
        }
    }
    // Base spread.
    let Some(b0) = offs[0].base.eval(env) else {
        return false;
    };
    let mut lo = 0i64;
    let mut hi = sites[0].bytes as i64;
    for (o, s) in offs.iter().zip(sites.iter()).skip(1) {
        let Some(b) = o.base.eval(env) else {
            return false;
        };
        let d = b - b0;
        lo = lo.min(d);
        hi = hi.max(d + s.bytes as i64);
    }
    let mut span = hi - lo;
    // Axes sorted by ascending |coefficient|; zero-coefficient group axes
    // require a unit dimension, zero-coefficient local axes are harmless.
    let mut axes: Vec<(Axis, i64, i64)> = Vec::new();
    for d in 0..3u8 {
        let (ls, ng) = (env.local[d as usize] as i64, env.groups[d as usize] as i64);
        for (axis, n) in [(Axis::Lid(d), ls), (Axis::Grp(d), ng)] {
            let c = coeff.get(&axis).copied().unwrap_or(0);
            if n <= 1 {
                continue; // single point on this axis: no spread
            }
            if c == 0 {
                match axis {
                    Axis::Grp(_) => return false, // all groups collide
                    Axis::Lid(_) => continue,     // same-group duplication
                }
            }
            axes.push((axis, c.abs(), n));
        }
    }
    axes.sort_by_key(|(_, c, _)| *c);
    for (_, c, n) in axes {
        if c < span {
            return false;
        }
        span = c
            .checked_mul(n - 1)
            .and_then(|x| x.checked_add(span))
            .unwrap_or(i64::MAX);
    }
    // Loop strides: the whole chained footprint must fit inside one stride
    // period (every stride is then a multiple of the gcd ≥ span).
    let mut gcd: Option<i64> = None;
    for o in &offs {
        for step in &o.steps {
            let Some(v) = step.eval(env) else {
                return false;
            };
            let v = v.abs();
            if v == 0 {
                return false;
            }
            gcd = Some(match gcd {
                None => v,
                Some(g) => gcd_i64(g, v),
            });
        }
    }
    if let Some(g) = gcd {
        if span > g {
            return false;
        }
    }
    true
}

fn gcd_i64(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Bounded whole-launch enumeration: evaluate every site's guards and offset
/// for every work item and sweep the resulting byte intervals for
/// cross-group overlaps involving a write. Rescues guarded rounded-up
/// launches (`if (gid < n)`) the chain proof cannot handle.
fn enumerate_disjoint(sites: &[&Site], env: &LaunchEnv<'_>) -> bool {
    let items: usize = env.local.iter().product::<usize>() * env.groups.iter().product::<usize>();
    if items == 0 || items > ENUM_LIMIT {
        return false;
    }
    // If any site is loop-stepped, fold all intervals into residue space
    // modulo the shared stride gcd; each footprint must fit one period.
    let mut stride: Option<i64> = None;
    for s in sites {
        let Some(o) = &s.offset else { return false };
        for step in &o.steps {
            let Some(v) = step.eval(env) else {
                return false;
            };
            if v == 0 {
                return false;
            }
            stride = Some(match stride {
                None => v.abs(),
                Some(g) => gcd_i64(g, v.abs()),
            });
        }
    }
    let mut intervals: Vec<(i64, i64, u32, bool)> = Vec::new();
    for g2 in 0..env.groups[2] {
        for g1 in 0..env.groups[1] {
            for g0 in 0..env.groups[0] {
                let grp = [g0, g1, g2];
                let grp_lin = (g2 * env.groups[1] * env.groups[0] + g1 * env.groups[0] + g0) as u32;
                for l2 in 0..env.local[2] {
                    for l1 in 0..env.local[1] {
                        for l0 in 0..env.local[0] {
                            let lid = [l0, l1, l2];
                            for s in sites {
                                let active = s
                                    .guards
                                    .iter()
                                    .all(|g| g.eval_at(env, lid, grp).unwrap_or(true));
                                if !active {
                                    continue;
                                }
                                let o = s.offset.as_ref().unwrap();
                                let Some(v) = o.eval_at(env, lid, grp) else {
                                    return false;
                                };
                                let w = s.bytes as i64;
                                let v = match stride {
                                    None => v,
                                    Some(st) => {
                                        let r = v.rem_euclid(st);
                                        if r + w > st {
                                            return false;
                                        }
                                        r
                                    }
                                };
                                intervals.push((v, v + w, grp_lin, s.kind.is_write()));
                            }
                        }
                    }
                }
            }
        }
    }
    intervals.sort_unstable();
    // Sweep: among intervals overlapping at any byte, a pair from different
    // groups where at least one writes is a race.
    let mut open: Vec<(i64, u32, bool)> = Vec::new(); // (end, group, write)
    for (start, end, grp, write) in intervals {
        open.retain(|(e, _, _)| *e > start);
        for (_, og, ow) in &open {
            if *og != grp && (*ow || write) {
                return false;
            }
        }
        open.push((end, grp, write));
    }
    true
}

// ---------------------------------------------------------------------------
// Report assembly
// ---------------------------------------------------------------------------

/// Path guards per block: conditions that provably hold whenever the block
/// executes, derived from item-fixed branches via edge-cut reachability.
fn compute_guards(func: &Function, an: &Analyzer<'_>) -> Vec<BTreeSet<CondVal>> {
    let n = func.blocks.len();
    let mut guards: Vec<BTreeSet<CondVal>> = vec![BTreeSet::new(); n];
    for d in 0..n {
        let Some(Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        }) = &func.blocks[d].term
        else {
            continue;
        };
        if then_bb == else_bb {
            continue;
        }
        let AbsVal::Cond(c) = an.reg(*cond) else {
            continue;
        };
        if !c.item_fixed() {
            continue;
        }
        // If the branch outcome were false, the edge d→then would never be
        // taken; blocks unreachable without it therefore imply the condition.
        let no_then = reachable_without_edge(func, (d, then_bb.index()));
        let no_else = reachable_without_edge(func, (d, else_bb.index()));
        for b in 0..n {
            if !no_then[b] {
                guards[b].insert(c.clone());
            }
            if !no_else[b] {
                guards[b].insert(c.negate());
            }
        }
    }
    guards
}

/// Collect barriers (including calls into barrier-using helpers) that are
/// control-dependent on a non-uniform condition.
fn divergent_barriers(func: &Function, module: &Module, an: &Analyzer<'_>) -> Vec<BarrierSite> {
    let n = func.blocks.len();
    if n + 1 > 128 {
        return Vec::new(); // beyond the bitset width; skip the check
    }
    let pdom = postdominators(func);
    // Cache control-dependence sets per branch block.
    let mut cd: Vec<Option<u128>> = vec![None; n];
    let mut out = Vec::new();
    for (b, block) in func.blocks.iter().enumerate() {
        for (iid, inst) in block.insts.iter().enumerate() {
            let is_barrier = match &inst.op {
                Op::Barrier => true,
                Op::Call { callee, .. } => module
                    .function(callee)
                    .map(|f| crate::analysis::uses_barrier(f, module))
                    .unwrap_or(false),
                _ => false,
            };
            if !is_barrier {
                continue;
            }
            for (d, slot) in cd.iter_mut().enumerate() {
                let Some(Terminator::CondBr { cond, .. }) = &func.blocks[d].term else {
                    continue;
                };
                let deps = *slot.get_or_insert_with(|| control_dependent_on(func, &pdom, d));
                if deps & (1u128 << b) == 0 {
                    continue;
                }
                let cause = match an.reg(*cond) {
                    AbsVal::Cond(c) if c.group_uniform() => continue,
                    AbsVal::Aff(a) if a.group_uniform() => continue,
                    AbsVal::UnknownUniform => continue,
                    AbsVal::Cond(_) | AbsVal::Aff(_) => format!(
                        "barrier depends on branch at bb{d} whose condition varies across the work items of a group"
                    ),
                    _ => format!(
                        "barrier depends on branch at bb{d} whose condition could not be proven group-uniform"
                    ),
                };
                out.push(BarrierSite {
                    block: BlockId(b as u32),
                    inst: iid,
                    span: inst.span,
                    cause,
                });
                break; // one diagnosis per barrier is enough
            }
        }
    }
    out
}

fn group_sites(sites: &[Site]) -> BTreeMap<usize, Vec<&Site>> {
    let mut by_param: BTreeMap<usize, Vec<&Site>> = BTreeMap::new();
    for s in sites {
        by_param.entry(s.param).or_default().push(s);
    }
    by_param
}

fn compute_routes(sites: &[Site]) -> BTreeMap<usize, Route> {
    let mut routes = BTreeMap::new();
    for (p, ss) in group_sites(sites) {
        if !ss.iter().any(|s| s.kind.is_write()) {
            continue; // read-only parameter: cannot race on its own
        }
        if p == UNKNOWN_PARAM {
            let why = ss
                .iter()
                .find(|s| s.kind.is_write())
                .map(|s| s.describe())
                .unwrap_or_else(|| "access through untraceable pointer".into());
            routes.insert(p, Route::Racy { why });
            continue;
        }
        if let Some(d) = single_writer_dim(&ss) {
            let unit_groups: BTreeSet<u8> = (0..3u8).filter(|x| *x != d).collect();
            routes.insert(p, Route::Disjoint { unit_groups });
            continue;
        }
        let offsets_known = ss.iter().all(|s| s.offset.is_some());
        let symbolic = if offsets_known {
            symbolic_disjoint(&ss)
        } else {
            None
        };
        // An unrestricted disjointness proof beats everything (disjoint
        // atomics are deterministic even when their results are used).
        if let Some(unit_groups) = &symbolic {
            if !unit_groups.contains(&0) {
                routes.insert(
                    p,
                    Route::Disjoint {
                        unit_groups: unit_groups.clone(),
                    },
                );
                continue;
            }
        }
        if ss.iter().all(|s| s.kind.is_atomic()) {
            let deterministic = ss.iter().all(|s| s.kind.order_independent());
            routes.insert(p, Route::Contended { deterministic });
            continue;
        }
        // Disjoint only under a unit dimension 0: keep the route (the
        // launch-time check can still validate it) but the verdict demotes.
        if let Some(unit_groups) = symbolic {
            routes.insert(p, Route::Disjoint { unit_groups });
            continue;
        }
        if offsets_known {
            routes.insert(p, Route::NeedsLaunch);
        } else {
            let why = ss
                .iter()
                .find(|s| s.kind.is_write() && s.offset.is_none())
                .map(|s| s.describe())
                .unwrap_or_else(|| ss[0].describe());
            routes.insert(p, Route::Racy { why });
        }
    }
    routes
}

fn compute_verdict(routes: &BTreeMap<usize, Route>, sites: &[Site]) -> ParallelSafety {
    let by_param = group_sites(sites);
    let mut contended: Option<bool> = None;
    for (p, route) in routes {
        match route {
            Route::Racy { why } => {
                return ParallelSafety::Racy { site: why.clone() };
            }
            Route::NeedsLaunch => {
                let site = by_param
                    .get(p)
                    .and_then(|ss| ss.iter().find(|s| s.kind.is_write()))
                    .map(|s| s.describe())
                    .unwrap_or_else(|| format!("writes to parameter {p}"));
                return ParallelSafety::Racy {
                    site: format!("{site}; disjointness depends on launch parameters"),
                };
            }
            Route::Contended { deterministic } => {
                contended = Some(contended.unwrap_or(true) && *deterministic);
            }
            Route::Disjoint { unit_groups } => {
                // Disjointness that requires a single work group in
                // dimension 0 is a genuine launch restriction (dimension 0
                // always has groups); higher dimensions are unit in ordinary
                // lower-rank launches, so only dimension 0 demotes the
                // verdict.
                if unit_groups.contains(&0) {
                    let site = by_param
                        .get(p)
                        .and_then(|ss| ss.iter().find(|s| s.kind.is_write()))
                        .map(|s| s.describe())
                        .unwrap_or_else(|| format!("writes to parameter {p}"));
                    return ParallelSafety::Racy {
                        site: format!(
                            "{site}; disjoint only with a single work group in dimension 0"
                        ),
                    };
                }
            }
        }
    }
    match contended {
        Some(deterministic) => ParallelSafety::SafeViaAtomics { deterministic },
        None => ParallelSafety::Safe,
    }
}

/// Run the full race & divergence analysis on one kernel. Returns `None` if
/// `name` is not a kernel of `module`.
pub fn analyze_kernel(module: &Module, name: &str) -> Option<KernelRaceReport> {
    let func = module.function(name)?;
    if func.kind != FunctionKind::Kernel {
        return None;
    }
    if func.blocks.is_empty() {
        return Some(KernelRaceReport {
            kernel: name.to_string(),
            verdict: ParallelSafety::Safe,
            sites: Vec::new(),
            divergent_barriers: Vec::new(),
            routes: BTreeMap::new(),
        });
    }
    let n = func.blocks.len();
    let succs = successors(func);
    let mut an = Analyzer::new(func, module);
    let mut block_in: Vec<Option<CellMap>> = vec![None; n];
    block_in[0] = Some(CellMap::new());
    let soft_cap = 4 * n + 16;
    let hard_cap = 4 * soft_cap;
    let mut round = 0usize;
    loop {
        an.changed = false;
        let mut cells_changed = false;
        for b in 0..n {
            let Some(cin) = block_in[b].clone() else {
                continue;
            };
            let mut cells = cin;
            an.transfer(b, &mut cells, None);
            for s in &succs[b] {
                cells_changed |= join_cells(&mut block_in[s.index()], &cells, an.aggressive);
            }
        }
        round += 1;
        if !(cells_changed || an.changed) || round >= hard_cap {
            break;
        }
        if round >= soft_cap {
            an.aggressive = true;
        }
    }
    // Collection pass over the converged state.
    let mut sites: Vec<Site> = Vec::new();
    for (b, bin) in block_in.iter().enumerate().take(n) {
        let Some(cin) = bin.clone() else {
            continue;
        };
        let mut cells = cin;
        an.transfer(b, &mut cells, Some(&mut sites));
    }
    let guards = compute_guards(func, &an);
    for site in &mut sites {
        site.guards = guards[site.block.index()].clone();
    }
    let routes = compute_routes(&sites);
    let verdict = compute_verdict(&routes, &sites);
    let divergent = divergent_barriers(func, module, &an);
    Some(KernelRaceReport {
        kernel: name.to_string(),
        verdict,
        sites,
        divergent_barriers: divergent,
        routes,
    })
}

/// Analyze every kernel of a module, in definition order.
pub fn analyze_module(module: &Module) -> Vec<KernelRaceReport> {
    module
        .kernel_names()
        .iter()
        .filter_map(|n| analyze_kernel(module, n))
        .collect()
}

impl KernelRaceReport {
    /// Launch-independent eligibility for cross-group parallel execution:
    /// the verdict guarantees race freedom *and* bit-identical results.
    /// Disjointness proofs conditioned on unit dimensions or concrete launch
    /// parameters are re-validated by [`Self::eligible_for_launch`].
    pub fn eligible_static(&self) -> bool {
        matches!(
            self.verdict,
            ParallelSafety::Safe
                | ParallelSafety::SafeViaAtomics {
                    deterministic: true
                }
        )
    }

    /// Launch-aware eligibility: validates unit-dimension assumptions of the
    /// symbolic proofs and re-runs the disjointness decision with concrete
    /// sizes (evaluated chain, then bounded enumeration) for parameters the
    /// static proof could not settle.
    pub fn eligible_for_launch(&self, env: &LaunchEnv<'_>) -> bool {
        if self.routes.is_empty() {
            return true; // nothing written: reads cannot race
        }
        if env.groups.iter().product::<usize>() <= 1 {
            return true; // a single work group cannot race across groups
        }
        if !env.distinct_buffers {
            // Aliased buffer arguments would invalidate the per-parameter
            // reasoning below.
            return false;
        }
        let by_param = group_sites(&self.sites);
        for (p, route) in &self.routes {
            let ss = by_param.get(p).map(Vec::as_slice).unwrap_or(&[]);
            let ok = match route {
                Route::Disjoint { unit_groups } => {
                    unit_groups.iter().all(|d| env.groups[*d as usize] <= 1)
                        || concrete_disjoint(ss, env)
                        || enumerate_disjoint(ss, env)
                }
                Route::Contended { deterministic } => *deterministic,
                Route::NeedsLaunch => concrete_disjoint(ss, env) || enumerate_disjoint(ss, env),
                Route::Racy { .. } => false,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Whether any parameter is written at all (reads alone cannot race).
    pub fn has_writes(&self) -> bool {
        !self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ir::{BinOp, CmpOp, FunctionKind};
    use crate::types::{AddressSpace, Type};

    fn module_with(f: Function) -> Module {
        let mut m = Module::new();
        m.insert_function(f);
        m
    }

    fn global_f32_ptr() -> Type {
        Type::ptr(AddressSpace::Global, Type::F32)
    }

    fn report(m: &Module) -> KernelRaceReport {
        analyze_kernel(m, "k").expect("kernel analyzed")
    }

    fn env<'a>(
        local: [usize; 3],
        groups: [usize; 3],
        work_dim: u32,
        args: &'a [Option<i64>],
    ) -> LaunchEnv<'a> {
        LaunchEnv {
            local,
            groups,
            work_dim,
            args,
            distinct_buffers: true,
        }
    }

    #[test]
    fn gid_indexed_store_is_safe() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", global_f32_ptr());
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let p = b.gep(out, gid);
        let x = b.const_f32(1.0);
        b.store(p, x);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        assert_eq!(r.verdict, ParallelSafety::Safe, "{}", r.verdict);
        assert!(r.eligible_static());
        assert!(r.has_writes());
        let w = r.sites.iter().find(|s| s.kind.is_write()).unwrap();
        assert_eq!(w.index_class(), "item-affine");
        assert_eq!(w.param, 0);
        assert_eq!(w.param_name, "out");
        // A 1-D launch satisfies the implicit unit higher dimensions.
        assert!(r.eligible_for_launch(&env([8, 1, 1], [4, 1, 1], 1, &[None])));
    }

    #[test]
    fn constant_index_store_is_launch_restricted() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", global_f32_ptr());
        let zero = b.const_i64(0);
        let p = b.gep(out, zero);
        let x = b.const_f32(1.0);
        b.store(p, x);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        // Every item of every group writes out[0]: racy for any multi-group
        // launch, so the static verdict must not be `Safe`.
        assert!(
            matches!(r.verdict, ParallelSafety::Racy { .. }),
            "{}",
            r.verdict
        );
        assert!(!r.eligible_static());
        // ... but a single-group launch cannot race across groups.
        assert!(r.eligible_for_launch(&env([8, 1, 1], [1, 1, 1], 1, &[None])));
        assert!(!r.eligible_for_launch(&env([8, 1, 1], [2, 1, 1], 1, &[None])));
    }

    #[test]
    fn aliased_buffers_block_launch_eligibility() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", global_f32_ptr());
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let p = b.gep(out, gid);
        let x = b.const_f32(1.0);
        b.store(p, x);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        let mut e = env([8, 1, 1], [4, 1, 1], 1, &[None]);
        e.distinct_buffers = false;
        assert!(!r.eligible_for_launch(&e));
    }

    #[test]
    fn unused_atomic_add_is_deterministic_contention() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let hist = b.add_param("hist", Type::ptr(AddressSpace::Global, Type::I32));
        let idx = b.add_param("idx", Type::I64);
        let p = b.gep(hist, idx);
        let one = b.const_i32(1);
        let _old = b.atomic_rmw(AtomicOp::Add, p, one);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        assert_eq!(
            r.verdict,
            ParallelSafety::SafeViaAtomics {
                deterministic: true
            },
            "{}",
            r.verdict
        );
        assert!(r.eligible_static());
        assert!(r.eligible_for_launch(&env([8, 1, 1], [4, 1, 1], 1, &[None, Some(3)])));
    }

    #[test]
    fn used_atomic_result_is_order_dependent() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let ctr = b.add_param("ctr", Type::ptr(AddressSpace::Global, Type::I32));
        let out = b.add_param("out", Type::ptr(AddressSpace::Global, Type::I32));
        let zero = b.const_i64(0);
        let pc = b.gep(ctr, zero);
        let one = b.const_i32(1);
        let old = b.atomic_rmw(AtomicOp::Add, pc, one);
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let po = b.gep(out, gid);
        b.store(po, old);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        assert_eq!(
            r.verdict,
            ParallelSafety::SafeViaAtomics {
                deterministic: false
            },
            "{}",
            r.verdict
        );
        assert!(!r.eligible_static());
        assert!(!r.eligible_for_launch(&env([8, 1, 1], [4, 1, 1], 1, &[None, None])));
    }

    #[test]
    fn guarded_single_writer_is_safe() {
        // if (get_global_id(0) == 0) out[0] = 1.0;
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", global_f32_ptr());
        let then_bb = b.new_block();
        let exit_bb = b.new_block();
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let zero = b.const_i64(0);
        let c = b.cmp(CmpOp::Eq, gid, zero);
        b.cond_br(c, then_bb, exit_bb);
        b.switch_to(then_bb);
        let p = b.gep(out, zero);
        let x = b.const_f32(1.0);
        b.store(p, x);
        b.br(exit_bb);
        b.switch_to(exit_bb);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        assert_eq!(r.verdict, ParallelSafety::Safe, "{}", r.verdict);
        assert!(r.eligible_for_launch(&env([8, 1, 1], [4, 1, 1], 1, &[None])));
    }

    #[test]
    fn grid_strided_loop_is_safe() {
        // for (i = gid; i < n; i += get_global_size(0)) out[i] = 1.0;
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", global_f32_ptr());
        let n = b.add_param("n", Type::I64);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let cell = b.alloca(Type::I64, 1, AddressSpace::Private);
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        b.store(cell, gid);
        b.br(head);
        b.switch_to(head);
        let i = b.load(cell);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.gep(out, i);
        let x = b.const_f32(1.0);
        b.store(p, x);
        let gs = b.work_item(WiBuiltin::GlobalSize, 0);
        let i2 = b.bin(BinOp::Add, i, gs);
        b.store(cell, i2);
        b.br(head);
        b.switch_to(exit);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        assert_eq!(r.verdict, ParallelSafety::Safe, "{}", r.verdict);
        assert!(r.eligible_for_launch(&env([8, 1, 1], [4, 1, 1], 1, &[None, Some(1000)])));
    }

    #[test]
    fn scaled_group_index_needs_launch_and_is_rescued() {
        // out[gid0 + n * grp1]: disjoint only when n >= global_size(0).
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", global_f32_ptr());
        let n = b.add_param("n", Type::I64);
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let grp1 = b.work_item(WiBuiltin::GroupId, 1);
        let t = b.bin(BinOp::Mul, n, grp1);
        let idx = b.bin(BinOp::Add, gid, t);
        let p = b.gep(out, idx);
        let x = b.const_f32(1.0);
        b.store(p, x);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        assert!(
            matches!(r.verdict, ParallelSafety::Racy { .. }),
            "{}",
            r.verdict
        );
        assert!(!r.eligible_static());
        // global_size(0) = 4 * 2 = 8: n == 8 tiles exactly, n == 4 overlaps.
        assert!(r.eligible_for_launch(&env([4, 1, 1], [2, 3, 1], 2, &[None, Some(8)])));
        assert!(!r.eligible_for_launch(&env([4, 1, 1], [2, 3, 1], 2, &[None, Some(4)])));
    }

    #[test]
    fn unknown_pointer_store_is_racy() {
        // Store through a pointer selected by a data-dependent condition
        // between two elements cannot be traced to a single offset shape
        // that both arms share when the bases differ.
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let a = b.add_param("a", global_f32_ptr());
        let c = b.add_param("c", Type::ptr(AddressSpace::Global, Type::I32));
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let pc = b.gep(c, gid);
        let cv = b.load(pc);
        let pa = b.gep(a, cv);
        // Index depends on loaded data: offset is unknown.
        let x = b.const_f32(1.0);
        b.store(pa, x);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        assert!(
            matches!(r.verdict, ParallelSafety::Racy { .. }),
            "{}",
            r.verdict
        );
        assert!(!r.eligible_for_launch(&env([8, 1, 1], [4, 1, 1], 1, &[None, None])));
        // Unit-group launches are still fine: groups run sequentially inside.
        assert!(r.eligible_for_launch(&env([8, 1, 1], [1, 1, 1], 1, &[None, None])));
    }

    #[test]
    fn barrier_under_item_varying_branch_is_divergent() {
        // if (get_local_id(0) == 0) { barrier(); }
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let _out = b.add_param("out", global_f32_ptr());
        let then_bb = b.new_block();
        let exit_bb = b.new_block();
        let lid = b.work_item(WiBuiltin::LocalId, 0);
        let zero = b.const_i64(0);
        let c = b.cmp(CmpOp::Eq, lid, zero);
        b.cond_br(c, then_bb, exit_bb);
        b.switch_to(then_bb);
        b.barrier();
        b.br(exit_bb);
        b.switch_to(exit_bb);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        assert_eq!(r.divergent_barriers.len(), 1, "{:?}", r.divergent_barriers);
        assert_eq!(r.divergent_barriers[0].block, BlockId(1));
    }

    #[test]
    fn barrier_under_uniform_branch_is_not_divergent() {
        // if (n > 0) { barrier(); } -- same decision for every item.
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let _out = b.add_param("out", global_f32_ptr());
        let n = b.add_param("n", Type::I64);
        let then_bb = b.new_block();
        let exit_bb = b.new_block();
        let zero = b.const_i64(0);
        let c = b.cmp(CmpOp::Gt, n, zero);
        b.cond_br(c, then_bb, exit_bb);
        b.switch_to(then_bb);
        b.barrier();
        b.br(exit_bb);
        b.switch_to(exit_bb);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        assert!(
            r.divergent_barriers.is_empty(),
            "{:?}",
            r.divergent_barriers
        );
    }

    #[test]
    fn read_only_kernel_has_no_routes() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let input = b.add_param("input", global_f32_ptr());
        let gid = b.work_item(WiBuiltin::GlobalId, 0);
        let p = b.gep(input, gid);
        let _v = b.load(p);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        assert_eq!(r.verdict, ParallelSafety::Safe);
        assert!(!r.has_writes());
        assert!(r.sites.iter().any(|s| !s.kind.is_write()));
        // Even aliased buffers cannot race when nothing is written.
        let mut e = env([8, 1, 1], [4, 1, 1], 1, &[None]);
        e.distinct_buffers = false;
        assert!(r.eligible_for_launch(&e));
    }

    #[test]
    fn group_and_uniform_index_classes() {
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let a = b.add_param("a", global_f32_ptr());
        let bb = b.add_param("b", global_f32_ptr());
        let n = b.add_param("n", Type::I64);
        let grp = b.work_item(WiBuiltin::GroupId, 0);
        let pa = b.gep(a, grp);
        let x = b.const_f32(1.0);
        b.store(pa, x);
        let pb = b.gep(bb, n);
        b.store(pb, x);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        let site_a = r.sites.iter().find(|s| s.param == 0).unwrap();
        let site_b = r.sites.iter().find(|s| s.param == 1).unwrap();
        assert_eq!(site_a.index_class(), "group-affine");
        assert_eq!(site_b.index_class(), "uniform");
    }

    #[test]
    fn two_dim_tiled_store_is_safe() {
        // out[gid1 * global_size(0) + gid0]: the canonical 2-D row-major
        // write, disjoint for every launch shape.
        let mut b = FunctionBuilder::new("k", FunctionKind::Kernel, Type::Void);
        let out = b.add_param("out", global_f32_ptr());
        let gid0 = b.work_item(WiBuiltin::GlobalId, 0);
        let gid1 = b.work_item(WiBuiltin::GlobalId, 1);
        let gs0 = b.work_item(WiBuiltin::GlobalSize, 0);
        let row = b.bin(BinOp::Mul, gid1, gs0);
        let idx = b.bin(BinOp::Add, row, gid0);
        let p = b.gep(out, idx);
        let x = b.const_f32(2.0);
        b.store(p, x);
        b.ret(None);
        let m = module_with(b.finish());
        let r = report(&m);
        assert_eq!(r.verdict, ParallelSafety::Safe, "{}", r.verdict);
        assert!(r.eligible_for_launch(&env([4, 2, 1], [3, 5, 1], 2, &[None])));
    }

    #[test]
    fn analyze_module_covers_all_kernels() {
        let mut m = Module::new();
        for name in ["k", "k2"] {
            let mut b = FunctionBuilder::new(name, FunctionKind::Kernel, Type::Void);
            let out = b.add_param("out", global_f32_ptr());
            let gid = b.work_item(WiBuiltin::GlobalId, 0);
            let p = b.gep(out, gid);
            let x = b.const_f32(1.0);
            b.store(p, x);
            b.ret(None);
            m.insert_function(b.finish());
        }
        let reports = analyze_module(&m);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.verdict == ParallelSafety::Safe));
        assert!(analyze_kernel(&m, "missing").is_none());
    }
}
