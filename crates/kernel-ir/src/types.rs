//! Scalar and pointer types for the kernel IR.
//!
//! The type system mirrors the subset of OpenCL C that accelerator kernels
//! use in practice: sized integers, single/double precision floats, booleans
//! (comparison results) and pointers qualified by an address space.

use std::fmt;

/// OpenCL address spaces.
///
/// Address spaces are part of a pointer's type: a `global float*` and a
/// `local float*` are distinct, never interchangeable without a cast, and the
/// verifier enforces that (`C-NEWTYPE` style static distinction).
///
/// # Examples
///
/// ```
/// use kernel_ir::types::AddressSpace;
/// assert_ne!(AddressSpace::Global, AddressSpace::Local);
/// assert_eq!(AddressSpace::Global.to_string(), "global");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AddressSpace {
    /// Device global memory, visible to all work items of all work groups.
    Global,
    /// On-chip memory shared by the work items of one work group.
    Local,
    /// Per-work-item memory (stack allocations).
    Private,
    /// Read-only device memory.
    Constant,
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AddressSpace::Global => "global",
            AddressSpace::Local => "local",
            AddressSpace::Private => "private",
            AddressSpace::Constant => "constant",
        };
        f.write_str(s)
    }
}

/// An IR type.
///
/// # Examples
///
/// ```
/// use kernel_ir::types::{AddressSpace, Type};
/// let p = Type::ptr(AddressSpace::Global, Type::F32);
/// assert!(p.is_ptr());
/// assert_eq!(p.pointee(), Some(&Type::F32));
/// assert_eq!(Type::I64.byte_size(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// No value; only valid as a function return type.
    Void,
    /// Boolean produced by comparisons.
    Bool,
    /// 32-bit signed integer (`int`).
    I32,
    /// 64-bit signed integer (`long` / `size_t`).
    I64,
    /// 32-bit float (`float`).
    F32,
    /// 64-bit float (`double`).
    F64,
    /// Pointer into `space` with element type `elem`.
    Ptr {
        /// Address space the pointer refers to.
        space: AddressSpace,
        /// Pointee element type.
        elem: Box<Type>,
    },
}

impl Type {
    /// Convenience constructor for a pointer type.
    pub fn ptr(space: AddressSpace, elem: Type) -> Self {
        Type::Ptr {
            space,
            elem: Box::new(elem),
        }
    }

    /// Returns `true` for any pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr { .. })
    }

    /// Returns `true` for `I32`/`I64`.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::I32 | Type::I64)
    }

    /// Returns `true` for `F32`/`F64`.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Returns `true` for any numeric scalar (int or float).
    pub fn is_numeric(&self) -> bool {
        self.is_int() || self.is_float()
    }

    /// The pointee type if this is a pointer.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr { elem, .. } => Some(elem),
            _ => None,
        }
    }

    /// The address space if this is a pointer.
    pub fn space(&self) -> Option<AddressSpace> {
        match self {
            Type::Ptr { space, .. } => Some(*space),
            _ => None,
        }
    }

    /// Size of one value of this type in bytes.
    ///
    /// Pointers are modelled as 8 bytes (64-bit device).
    ///
    /// # Panics
    ///
    /// Panics if called on [`Type::Void`], which has no size.
    pub fn byte_size(&self) -> usize {
        match self {
            Type::Void => panic!("void has no size"),
            Type::Bool => 1,
            Type::I32 | Type::F32 => 4,
            Type::I64 | Type::F64 | Type::Ptr { .. } => 8,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Bool => f.write_str("bool"),
            Type::I32 => f.write_str("i32"),
            Type::I64 => f.write_str("i64"),
            Type::F32 => f.write_str("f32"),
            Type::F64 => f.write_str("f64"),
            Type::Ptr { space, elem } => write!(f, "{space} {elem}*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes() {
        assert_eq!(Type::Bool.byte_size(), 1);
        assert_eq!(Type::I32.byte_size(), 4);
        assert_eq!(Type::F32.byte_size(), 4);
        assert_eq!(Type::I64.byte_size(), 8);
        assert_eq!(Type::F64.byte_size(), 8);
        assert_eq!(Type::ptr(AddressSpace::Global, Type::F32).byte_size(), 8);
    }

    #[test]
    #[should_panic(expected = "void has no size")]
    fn void_has_no_size() {
        let _ = Type::Void.byte_size();
    }

    #[test]
    fn predicates() {
        assert!(Type::I32.is_int());
        assert!(Type::I64.is_int());
        assert!(!Type::F32.is_int());
        assert!(Type::F32.is_float());
        assert!(Type::F64.is_numeric());
        assert!(Type::I32.is_numeric());
        assert!(!Type::Bool.is_numeric());
        let p = Type::ptr(AddressSpace::Local, Type::I32);
        assert!(p.is_ptr());
        assert_eq!(p.space(), Some(AddressSpace::Local));
        assert_eq!(p.pointee(), Some(&Type::I32));
        assert_eq!(Type::I32.pointee(), None);
        assert_eq!(Type::I32.space(), None);
    }

    #[test]
    fn display() {
        assert_eq!(
            Type::ptr(AddressSpace::Global, Type::F32).to_string(),
            "global f32*"
        );
        assert_eq!(Type::Void.to_string(), "void");
        assert_eq!(Type::Bool.to_string(), "bool");
        assert_eq!(Type::F64.to_string(), "f64");
        assert_eq!(AddressSpace::Private.to_string(), "private");
        assert_eq!(AddressSpace::Constant.to_string(), "constant");
    }
}
