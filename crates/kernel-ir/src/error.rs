//! Error types for IR construction, verification and interpretation.

use std::error::Error;
use std::fmt;

/// Error produced by the IR verifier or module linker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrError {
    /// Function the error was found in, when known.
    pub function: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl IrError {
    /// Error not attributed to a particular function.
    pub fn new(message: impl Into<String>) -> Self {
        IrError {
            function: None,
            message: message.into(),
        }
    }

    /// Error attributed to `function`.
    pub fn in_function(function: impl Into<String>, message: impl Into<String>) -> Self {
        IrError {
            function: Some(function.into()),
            message: message.into(),
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(name) => write!(f, "in function `{name}`: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl Error for IrError {}

/// Error raised while interpreting a kernel over an NDRange.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// A kernel or helper function name did not resolve.
    UnknownFunction(String),
    /// Kernel argument list did not match the kernel signature.
    ArgMismatch(String),
    /// Memory access outside a buffer or arena.
    OutOfBounds {
        /// What was accessed.
        what: String,
        /// Byte offset of the access.
        offset: usize,
        /// Size of the underlying storage in bytes.
        size: usize,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// Work items of one work group reached different barriers (undefined
    /// behaviour in OpenCL; a hard error here).
    BarrierDivergence(String),
    /// The work item executed more than the configured instruction budget
    /// (runaway loop guard).
    StepLimitExceeded(u64),
    /// Any other dynamic violation (bad cast, call of a kernel, ...).
    Invalid(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            InterpError::ArgMismatch(m) => write!(f, "kernel argument mismatch: {m}"),
            InterpError::OutOfBounds { what, offset, size } => {
                write!(
                    f,
                    "out-of-bounds access to {what}: byte offset {offset} of {size}"
                )
            }
            InterpError::DivideByZero => f.write_str("integer division by zero"),
            InterpError::BarrierDivergence(m) => write!(f, "barrier divergence: {m}"),
            InterpError::StepLimitExceeded(n) => {
                write!(f, "work item exceeded the step limit of {n} instructions")
            }
            InterpError::Invalid(m) => write!(f, "invalid operation: {m}"),
        }
    }
}

impl Error for InterpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = IrError::in_function("k", "bad terminator");
        assert_eq!(e.to_string(), "in function `k`: bad terminator");
        assert_eq!(IrError::new("x").to_string(), "x");
        assert!(InterpError::DivideByZero.to_string().contains("division"));
        let oob = InterpError::OutOfBounds {
            what: "buffer 0".into(),
            offset: 64,
            size: 32,
        };
        assert!(oob.to_string().contains("byte offset 64"));
        assert!(InterpError::StepLimitExceeded(10)
            .to_string()
            .contains("10"));
    }

    #[test]
    fn errors_are_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<IrError>();
        assert_err::<InterpError>();
    }
}
