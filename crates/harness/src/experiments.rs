//! Per-experiment drivers: one function per table/figure of the paper's
//! evaluation (§8), each returning a renderable result.
//!
//! The heavy lifting is one [`sweep`] per (device, request-size): every
//! workload runs under all four schemes and its metrics are recorded; the
//! figures are different projections of the same sweep, exactly as in the
//! paper.

use crate::runner::{Runner, Scheme, WorkloadRun};
use crate::workloads::{alphabetic_pairs, SweepConfig, Workload};
use gpu_sim::{DeviceConfig, KernelLaunch, LaunchPlan, Simulator};
use parboil::KernelSpec;
use rayon::prelude::*;
use std::fmt;

/// Geometric mean of a non-empty slice.
fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Metrics of one workload under every scheme (averaged over repetitions).
///
/// `PartialEq` is exact (bit-level) — the parallel sweep is required to
/// reproduce the sequential sweep's numbers identically, and the
/// determinism tests assert it through this impl.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMetrics {
    /// Unfairness per scheme, ordered as [`Scheme::all`].
    pub unfairness: [f64; 4],
    /// Execution overlap per scheme.
    pub overlap: [f64; 4],
    /// Total workload time per scheme.
    pub total_time: [f64; 4],
    /// STP per scheme.
    pub stp: [f64; 4],
    /// ANTT per scheme.
    pub antt: [f64; 4],
    /// Worst-case ANTT per scheme.
    pub worst_antt: [f64; 4],
}

impl WorkloadMetrics {
    /// Fairness improvement of `scheme` over the baseline.
    pub fn fairness_improvement(&self, scheme: Scheme) -> f64 {
        let i = scheme_index(scheme);
        sched_metrics::fairness_improvement(self.unfairness[0], self.unfairness[i])
    }

    /// Throughput speedup of `scheme` over the baseline.
    pub fn throughput_speedup(&self, scheme: Scheme) -> f64 {
        let i = scheme_index(scheme);
        self.total_time[0] / self.total_time[i]
    }
}

fn scheme_index(s: Scheme) -> usize {
    Scheme::all()
        .iter()
        .position(|&x| x == s)
        .expect("scheme in table")
}

/// One full sweep: per-workload metrics for one device and request size.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Request size (2, 4 or 8).
    pub request_size: usize,
    /// Device name.
    pub device: String,
    /// Per-workload metrics.
    pub workloads: Vec<WorkloadMetrics>,
}

impl Sweep {
    /// Average unfairness per scheme.
    pub fn avg_unfairness(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for (i, o) in out.iter_mut().enumerate() {
            *o = mean(
                &self
                    .workloads
                    .iter()
                    .map(|w| w.unfairness[i])
                    .collect::<Vec<_>>(),
            );
        }
        out
    }

    /// Average overlap per scheme.
    pub fn avg_overlap(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for (i, o) in out.iter_mut().enumerate() {
            *o = mean(
                &self
                    .workloads
                    .iter()
                    .map(|w| w.overlap[i])
                    .collect::<Vec<_>>(),
            );
        }
        out
    }

    /// Average fairness improvement of `scheme` over baseline.
    pub fn avg_fairness_improvement(&self, scheme: Scheme) -> f64 {
        mean(
            &self
                .workloads
                .iter()
                .map(|w| w.fairness_improvement(scheme))
                .collect::<Vec<_>>(),
        )
    }

    /// Average throughput speedup of `scheme` over baseline.
    pub fn avg_throughput_speedup(&self, scheme: Scheme) -> f64 {
        mean(
            &self
                .workloads
                .iter()
                .map(|w| w.throughput_speedup(scheme))
                .collect::<Vec<_>>(),
        )
    }

    /// Average STP / ANTT / worst-ANTT of `scheme`.
    pub fn avg_stp_antt(&self, scheme: Scheme) -> (f64, f64, f64) {
        let i = scheme_index(scheme);
        (
            mean(&self.workloads.iter().map(|w| w.stp[i]).collect::<Vec<_>>()),
            mean(&self.workloads.iter().map(|w| w.antt[i]).collect::<Vec<_>>()),
            mean(
                &self
                    .workloads
                    .iter()
                    .map(|w| w.worst_antt[i])
                    .collect::<Vec<_>>(),
            ),
        )
    }

    /// Distribution of per-workload values of `f`: (min, max, fraction
    /// below 1.0).
    pub fn distribution(&self, f: impl Fn(&WorkloadMetrics) -> f64) -> (f64, f64, f64) {
        let vals: Vec<f64> = self.workloads.iter().map(f).collect();
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let below = vals.iter().filter(|&&v| v < 1.0).count() as f64 / vals.len() as f64;
        (min, max, below)
    }
}

/// The six metrics of one `(workload, scheme, repetition)` run — the unit
/// of work the parallel sweep distributes.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SchemeRun {
    unfairness: f64,
    overlap: f64,
    total_time: f64,
    stp: f64,
    antt: f64,
    worst_antt: f64,
}

/// Seed of repetition `rep` for a workload whose base seed is `seed`.
///
/// Derived from `(seed, rep)` alone — never from iteration order — which is
/// what lets the sweep shard `(workload × rep × scheme)` cells across
/// threads and still reproduce the sequential numbers bit-for-bit.
fn rep_seed(seed: u64, rep: u32) -> u64 {
    seed.wrapping_add(rep as u64).wrapping_mul(0x9e37_79b9)
}

/// Run one repetition of one workload under all four schemes.
fn measure_rep(runner: &Runner, workload: &Workload, seed: u64, rep: u32) -> [SchemeRun; 4] {
    let rep_seed = rep_seed(seed, rep);
    Scheme::all().map(|scheme| {
        let run: WorkloadRun = runner.run_workload(scheme, workload, rep_seed);
        SchemeRun {
            unfairness: run.unfairness(),
            overlap: run.overlap(),
            total_time: run.total_time as f64,
            stp: run.stp(),
            antt: run.antt(),
            worst_antt: run.worst_antt(),
        }
    })
}

/// Average per-rep scheme runs, accumulating in repetition order (the same
/// float-addition order as the historical sequential loop).
fn average_reps(per_rep: &[[SchemeRun; 4]]) -> WorkloadMetrics {
    let mut acc = WorkloadMetrics {
        unfairness: [0.0; 4],
        overlap: [0.0; 4],
        total_time: [0.0; 4],
        stp: [0.0; 4],
        antt: [0.0; 4],
        worst_antt: [0.0; 4],
    };
    for rep in per_rep {
        for (i, run) in rep.iter().enumerate() {
            acc.unfairness[i] += run.unfairness;
            acc.overlap[i] += run.overlap;
            acc.total_time[i] += run.total_time;
            acc.stp[i] += run.stp;
            acc.antt[i] += run.antt;
            acc.worst_antt[i] += run.worst_antt;
        }
    }
    let n = per_rep.len() as f64;
    for i in 0..4 {
        acc.unfairness[i] /= n;
        acc.overlap[i] /= n;
        acc.total_time[i] /= n;
        acc.stp[i] /= n;
        acc.antt[i] /= n;
        acc.worst_antt[i] /= n;
    }
    acc
}

/// Run one workload under all four schemes, `reps` times, and average.
///
/// `reps` is clamped to at least 1 (matching [`sweep`] / [`sweep_seq`], so
/// `reps == 0` configurations cannot make the two sweep paths diverge or
/// produce NaN averages).
pub fn measure_workload(
    runner: &Runner,
    workload: &Workload,
    reps: u32,
    seed: u64,
) -> WorkloadMetrics {
    let per_rep: Vec<[SchemeRun; 4]> = (0..reps.max(1))
        .map(|rep| measure_rep(runner, workload, seed, rep))
        .collect();
    average_reps(&per_rep)
}

/// Sweep one request size on one device, fanning the `(workload × rep)`
/// grid out across the rayon pool (each unit runs its four schemes
/// inline). Results are merged in `(workload, rep)` order, so the output
/// is bit-identical to [`sweep_seq`] regardless of thread count.
pub fn sweep(runner: &Runner, cfg: &SweepConfig, request_size: usize) -> Sweep {
    let workloads = cfg.workloads(request_size);
    let reps = cfg.reps.max(1);
    let units: Vec<(usize, u32)> = (0..workloads.len())
        .flat_map(|i| (0..reps).map(move |r| (i, r)))
        .collect();
    let runs: Vec<[SchemeRun; 4]> = units
        .par_iter()
        .map(|&(i, rep)| measure_rep(runner, &workloads[i], cfg.seed.wrapping_add(i as u64), rep))
        .collect();
    let metrics = runs.chunks(reps as usize).map(average_reps).collect();
    Sweep {
        request_size,
        device: runner.device().name.clone(),
        workloads: metrics,
    }
}

/// The historical single-threaded sweep. Kept as the reference the
/// parallel [`sweep`] is differentially tested against (and for hosts
/// where spawning threads is undesirable).
pub fn sweep_seq(runner: &Runner, cfg: &SweepConfig, request_size: usize) -> Sweep {
    let workloads = cfg.workloads(request_size);
    let metrics = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| measure_workload(runner, w, cfg.reps, cfg.seed.wrapping_add(i as u64)))
        .collect();
    Sweep {
        request_size,
        device: runner.device().name.clone(),
        workloads: metrics,
    }
}

// ---------------------------------------------------------------------
// Figure 2 — motivation: bfs + cutcp + stencil + tpacf on NVIDIA
// ---------------------------------------------------------------------

/// Result of the fig. 2 motivation experiment.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Kernel names.
    pub names: Vec<&'static str>,
    /// Per-kernel slowdowns under the baseline.
    pub baseline_slowdowns: Vec<f64>,
    /// Per-kernel slowdowns under accelOS.
    pub accelos_slowdowns: Vec<f64>,
    /// Unfairness: (baseline, EK, accelOS).
    pub unfairness: (f64, f64, f64),
    /// Throughput speedup over baseline: (EK, accelOS).
    pub speedup: (f64, f64),
}

/// Reproduce fig. 2: parallel execution of bfs, cutcp, stencil and tpacf.
pub fn fig2(runner: &Runner, seed: u64) -> Fig2 {
    let names = ["bfs", "cutcp", "stencil", "tpacf"];
    let wl: Workload = names
        .iter()
        .map(|n| KernelSpec::by_name(n).expect("kernel exists"))
        .collect();
    let base = runner.run_workload(Scheme::Baseline, &wl, seed);
    let ek = runner.run_workload(Scheme::ElasticKernels, &wl, seed);
    let acc = runner.run_workload(Scheme::AccelOs, &wl, seed);
    Fig2 {
        names: names.to_vec(),
        baseline_slowdowns: base.slowdowns(),
        accelos_slowdowns: acc.slowdowns(),
        unfairness: (base.unfairness(), ek.unfairness(), acc.unfairness()),
        speedup: (
            base.total_time as f64 / ek.total_time as f64,
            base.total_time as f64 / acc.total_time as f64,
        ),
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2 — parallel execution of bfs, cutcp, stencil, tpacf"
        )?;
        writeln!(f, "(a) individual slowdowns:")?;
        writeln!(f, "  {:<10} {:>10} {:>10}", "kernel", "OpenCL", "accelOS")?;
        for (i, n) in self.names.iter().enumerate() {
            writeln!(
                f,
                "  {:<10} {:>10.2} {:>10.2}",
                n, self.baseline_slowdowns[i], self.accelos_slowdowns[i]
            )?;
        }
        writeln!(
            f,
            "(b) unfairness: OpenCL {:.2}  EK {:.2}  accelOS {:.2}  (accelOS {:.2}x fairer)",
            self.unfairness.0,
            self.unfairness.1,
            self.unfairness.2,
            self.unfairness.0 / self.unfairness.2
        )?;
        writeln!(
            f,
            "(c) throughput speedup: EK {:.2}x  accelOS {:.2}x",
            self.speedup.0, self.speedup.1
        )
    }
}

// ---------------------------------------------------------------------
// Figures 9/10/12/13/14 + tables 1/2 — sweep projections
// ---------------------------------------------------------------------

/// The three request sizes with their sweeps on one device.
#[derive(Debug, Clone)]
pub struct DeviceSweeps {
    /// 2-, 4- and 8-request sweeps.
    pub sizes: Vec<Sweep>,
}

/// Run the paper's three sweeps (2, 4, 8 requests) on one device.
pub fn device_sweeps(runner: &Runner, cfg: &SweepConfig) -> DeviceSweeps {
    DeviceSweeps {
        sizes: [2, 4, 8].iter().map(|&k| sweep(runner, cfg, k)).collect(),
    }
}

impl DeviceSweeps {
    /// Render the fig. 9 view: average unfairness per scheme.
    pub fn fig9(&self) -> String {
        let mut s = format!(
            "Figure 9 — average system unfairness (lower is better), {}\n",
            self.sizes[0].device
        );
        s += &format!(
            "  {:<10} {:>10} {:>10} {:>10}\n",
            "requests", "OpenCL", "EK", "accelOS"
        );
        for sw in &self.sizes {
            let u = sw.avg_unfairness();
            s += &format!(
                "  {:<10} {:>10.2} {:>10.2} {:>10.2}\n",
                sw.request_size,
                u[scheme_index(Scheme::Baseline)],
                u[scheme_index(Scheme::ElasticKernels)],
                u[scheme_index(Scheme::AccelOs)]
            );
        }
        s
    }

    /// Render the fig. 10 view: fairness-improvement distributions.
    pub fn fig10(&self) -> String {
        let mut s = format!(
            "Figure 10 — fairness improvement over OpenCL (higher is better), {}\n",
            self.sizes[0].device
        );
        s += &format!(
            "  {:<10} {:>28} {:>28}\n",
            "requests", "accelOS avg [min..max] %<1", "EK avg [min..max] %<1"
        );
        for sw in &self.sizes {
            let a = sw.avg_fairness_improvement(Scheme::AccelOs);
            let (amin, amax, abad) = sw.distribution(|w| w.fairness_improvement(Scheme::AccelOs));
            let e = sw.avg_fairness_improvement(Scheme::ElasticKernels);
            let (emin, emax, ebad) =
                sw.distribution(|w| w.fairness_improvement(Scheme::ElasticKernels));
            s += &format!(
                "  {:<10} {:>7.2}x [{:>5.2}..{:>6.2}] {:>4.0}% {:>7.2}x [{:>5.2}..{:>6.2}] {:>4.0}%\n",
                sw.request_size, a, amin, amax, abad * 100.0, e, emin, emax, ebad * 100.0
            );
        }
        s
    }

    /// Render the fig. 12 view: average kernel execution overlap.
    pub fn fig12(&self) -> String {
        let mut s = format!(
            "Figure 12 — average kernel execution overlap (higher is better), {}\n",
            self.sizes[0].device
        );
        s += &format!(
            "  {:<10} {:>10} {:>10} {:>10}\n",
            "requests", "OpenCL", "EK", "accelOS"
        );
        for sw in &self.sizes {
            let o = sw.avg_overlap();
            s += &format!(
                "  {:<10} {:>9.0}% {:>9.0}% {:>9.0}%\n",
                sw.request_size,
                o[scheme_index(Scheme::Baseline)] * 100.0,
                o[scheme_index(Scheme::ElasticKernels)] * 100.0,
                o[scheme_index(Scheme::AccelOs)] * 100.0
            );
        }
        s
    }

    /// Render the fig. 13 view: average throughput speedups.
    pub fn fig13(&self) -> String {
        let mut s = format!(
            "Figure 13 — average system throughput speedup over OpenCL, {}\n",
            self.sizes[0].device
        );
        s += &format!("  {:<10} {:>10} {:>10}\n", "requests", "EK", "accelOS");
        for sw in &self.sizes {
            s += &format!(
                "  {:<10} {:>9.2}x {:>9.2}x\n",
                sw.request_size,
                sw.avg_throughput_speedup(Scheme::ElasticKernels),
                sw.avg_throughput_speedup(Scheme::AccelOs)
            );
        }
        s
    }

    /// Render the fig. 14 view: throughput-speedup distributions.
    pub fn fig14(&self) -> String {
        let mut s = format!(
            "Figure 14 — throughput speedup distribution over OpenCL, {}\n",
            self.sizes[0].device
        );
        s += &format!(
            "  {:<10} {:>28} {:>28}\n",
            "requests", "accelOS [min..max] %slow", "EK [min..max] %slow"
        );
        for sw in &self.sizes {
            let (amin, amax, abad) = sw.distribution(|w| w.throughput_speedup(Scheme::AccelOs));
            let (emin, emax, ebad) =
                sw.distribution(|w| w.throughput_speedup(Scheme::ElasticKernels));
            s += &format!(
                "  {:<10} [{:>5.2}..{:>5.2}] {:>9.0}% [{:>5.2}..{:>5.2}] {:>9.0}%\n",
                sw.request_size,
                amin,
                amax,
                abad * 100.0,
                emin,
                emax,
                ebad * 100.0
            );
        }
        s
    }

    /// Render the table 1/2 view: STP, ANTT and worst-case ANTT.
    pub fn table_stp_antt(&self) -> String {
        let mut s = format!(
            "Tables 1/2 — STP (higher better), ANTT / W.ANTT (lower better), {}\n",
            self.sizes[0].device
        );
        s += &format!(
            "  {:<6} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}\n",
            "RQSTs", "EK STP", "EK ANTT", "EK W.A", "aOS STP", "aOS ANTT", "aOS W.A"
        );
        for sw in &self.sizes {
            let (estp, eantt, ewa) = sw.avg_stp_antt(Scheme::ElasticKernels);
            let (astp, aantt, awa) = sw.avg_stp_antt(Scheme::AccelOs);
            s += &format!(
                "  {:<6} | {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}\n",
                sw.request_size, estp, eantt, ewa, astp, aantt, awa
            );
        }
        s
    }
}

// ---------------------------------------------------------------------
// Figure 11 — alphabetic pairwise unfairness
// ---------------------------------------------------------------------

/// One row of fig. 11.
#[derive(Debug, Clone)]
pub struct PairRow {
    /// The two kernel names.
    pub pair: (String, String),
    /// Unfairness: (baseline, EK, accelOS).
    pub unfairness: (f64, f64, f64),
}

/// Reproduce fig. 11: unfairness for the alphabetic-neighbour pairs
/// (pairs are independent, so they fan out across the rayon pool).
pub fn fig11(runner: &Runner, seed: u64) -> Vec<PairRow> {
    alphabetic_pairs()
        .par_iter()
        .map(|wl| {
            let base = runner.run_workload(Scheme::Baseline, wl, seed);
            let ek = runner.run_workload(Scheme::ElasticKernels, wl, seed);
            let acc = runner.run_workload(Scheme::AccelOs, wl, seed);
            PairRow {
                pair: (wl[0].name.to_string(), wl[1].name.to_string()),
                unfairness: (base.unfairness(), ek.unfairness(), acc.unfairness()),
            }
        })
        .collect()
}

/// Render fig. 11 rows.
pub fn render_fig11(rows: &[PairRow], device: &str) -> String {
    let mut s = format!("Figure 11 — unfairness for alphabetic 2-kernel workloads, {device}\n");
    s += &format!(
        "  {:<50} {:>8} {:>8} {:>8}\n",
        "pair", "OpenCL", "EK", "accelOS"
    );
    for r in rows {
        s += &format!(
            "  {:<50} {:>8.2} {:>8.2} {:>8.2}\n",
            format!("{} + {}", r.pair.0, r.pair.1),
            r.unfairness.0,
            r.unfairness.1,
            r.unfairness.2
        );
    }
    s
}

// ---------------------------------------------------------------------
// Figure 15 — single-kernel performance impact (naive vs optimized)
// ---------------------------------------------------------------------

/// One kernel's isolated speedups.
#[derive(Debug, Clone)]
pub struct SingleKernelRow {
    /// Kernel name.
    pub name: &'static str,
    /// accelOS-naive speedup over baseline (isolated).
    pub naive: f64,
    /// accelOS-optimized speedup over baseline (isolated).
    pub optimized: f64,
}

/// Reproduce fig. 15: per-kernel isolated accelOS speedups (kernels are
/// independent, so they fan out across the rayon pool).
pub fn fig15(runner: &Runner, seed: u64) -> Vec<SingleKernelRow> {
    KernelSpec::all()
        .par_iter()
        .map(|spec| {
            let base = runner.isolated_time(Scheme::Baseline, spec, seed) as f64;
            let naive = runner.isolated_time(Scheme::AccelOsNaive, spec, seed) as f64;
            let opt = runner.isolated_time(Scheme::AccelOs, spec, seed) as f64;
            SingleKernelRow {
                name: spec.name,
                naive: base / naive,
                optimized: base / opt,
            }
        })
        .collect()
}

/// Render fig. 15 rows plus geometric means.
pub fn render_fig15(rows: &[SingleKernelRow], device: &str) -> String {
    let mut s = format!("Figure 15 — accelOS single-kernel performance impact, {device}\n");
    s += &format!("  {:<30} {:>8} {:>10}\n", "kernel", "naive", "optimized");
    for r in rows {
        s += &format!("  {:<30} {:>7.2}x {:>9.2}x\n", r.name, r.naive, r.optimized);
    }
    let g_naive = geomean(&rows.iter().map(|r| r.naive).collect::<Vec<_>>());
    let g_opt = geomean(&rows.iter().map(|r| r.optimized).collect::<Vec<_>>());
    s += &format!(
        "  {:<30} {:>7.2}x {:>9.2}x  (geometric mean)\n",
        "geomean", g_naive, g_opt
    );
    s
}

// ---------------------------------------------------------------------
// §8.5 small kernels + §6.4 chunking ablation
// ---------------------------------------------------------------------

/// Isolated time of `spec` restricted to `wgs` work groups, as a custom
/// launch (used by the §8.5 small-kernel study and the chunk ablation).
pub fn isolated_custom(
    device: &DeviceConfig,
    spec: &KernelSpec,
    wgs: u64,
    plan_of: impl FnOnce(Vec<u64>) -> LaunchPlan,
    seed: u64,
) -> u64 {
    let costs = spec.vg_costs(wgs as usize, seed);
    let mut sim = Simulator::new(device.clone());
    sim.add_launch(KernelLaunch {
        name: spec.name.to_string(),
        arrival: 0,
        req: gpu_sim::WorkGroupReq {
            threads: spec.wg_size,
            local_mem: 0,
            regs_per_thread: 1,
        },
        mem_intensity: spec.mem_intensity,
        plan: plan_of(costs),
        max_workers: None,
    });
    sim.run().total_time().max(1)
}

/// One row of the §8.5 small-kernel study.
#[derive(Debug, Clone)]
pub struct SmallKernelRow {
    /// Kernel name.
    pub name: &'static str,
    /// Work groups launched.
    pub wgs: u64,
    /// Relative difference accelOS vs baseline (positive = slower).
    pub rel_diff: f64,
}

/// Reproduce the §8.5 small-kernel experiment: bfs/spmv/tpacf with 2, 4
/// and 8 work groups differ from standard OpenCL by only a few percent.
pub fn small_kernels(device: &DeviceConfig, seed: u64) -> Vec<SmallKernelRow> {
    let mut rows = Vec::new();
    for name in ["bfs", "spmv", "tpacf"] {
        let spec = KernelSpec::by_name(name).expect("kernel exists");
        for wgs in [2u64, 4, 8] {
            let base = isolated_custom(
                device,
                spec,
                wgs,
                |c| LaunchPlan::Hardware { wg_costs: c.into() },
                seed,
            ) as f64;
            let acc = isolated_custom(
                device,
                spec,
                wgs,
                |c| LaunchPlan::PersistentDynamic {
                    workers: wgs as u32,
                    vg_costs: c.into(),
                    chunk: 1,
                    per_vg_overhead: 2,
                },
                seed,
            ) as f64;
            rows.push(SmallKernelRow {
                name: spec.name,
                wgs,
                rel_diff: acc / base - 1.0,
            });
        }
    }
    rows
}

/// Render the small-kernel rows.
pub fn render_small_kernels(rows: &[SmallKernelRow], device: &str) -> String {
    let mut s = format!("§8.5 — small-kernel executions, accelOS vs OpenCL, {device}\n");
    s += &format!("  {:<10} {:>6} {:>12}\n", "kernel", "WGs", "difference");
    for r in rows {
        s += &format!(
            "  {:<10} {:>6} {:>11.1}%\n",
            r.name,
            r.wgs,
            r.rel_diff * 100.0
        );
    }
    s
}

/// One row of the §6.4 chunking ablation.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Kernel name.
    pub name: &'static str,
    /// Which cost regime: `true` for the artificially shortened variant
    /// (per-group cost divided by 8, the paper's "small kernel" regime).
    pub short_variant: bool,
    /// Chunk size forced for this run (0 = the guided-schedule extension).
    pub chunk: u32,
    /// Isolated speedup over the chunk=1 configuration.
    pub speedup_vs_chunk1: f64,
}

/// Ablation of §6.4: force every chunk size on representative kernels, in
/// both the normal regime and an artificially shortened one (per-group
/// costs ÷ 8, like the paper's §8.5 small datasets). Chunking pays in the
/// short regime (the atomic dequeue chain binds) and can cost in the
/// normal regime (coarser chunks hurt balance) — which is exactly why the
/// policy adapts on instruction count.
pub fn chunk_ablation(device: &DeviceConfig, seed: u64) -> Vec<AblationRow> {
    let kernels = [
        "mri-gridding_uniformAdd",
        "mri-q_ComputePhiMag",
        "histo_final",
        "sgemm",
    ];
    let mut rows = Vec::new();
    for name in kernels {
        let spec = KernelSpec::by_name(name).expect("kernel exists");
        let workers = (device.total_threads() / spec.wg_size as u64).min(spec.default_wgs) as u32;
        for short in [false, true] {
            let div = if short { 8 } else { 1 };
            let time_for = |chunk: u32| {
                isolated_custom(
                    device,
                    spec,
                    spec.default_wgs,
                    |c| LaunchPlan::PersistentDynamic {
                        workers,
                        vg_costs: c.iter().map(|&x| (x / div).max(1)).collect(),
                        chunk,
                        per_vg_overhead: 2,
                    },
                    seed,
                ) as f64
            };
            let t1 = time_for(1);
            for chunk in [1u32, 2, 4, 6, 8] {
                rows.push(AblationRow {
                    name: spec.name,
                    short_variant: short,
                    chunk,
                    speedup_vs_chunk1: t1 / time_for(chunk),
                });
            }
            // Extension: the guided (tapering) schedule, rendered as
            // chunk = 0 rows.
            let guided = isolated_custom(
                device,
                spec,
                spec.default_wgs,
                |c| LaunchPlan::PersistentGuided {
                    workers,
                    vg_costs: c.iter().map(|&x| (x / div).max(1)).collect(),
                    max_chunk: 8,
                    per_vg_overhead: 2,
                },
                seed,
            ) as f64;
            rows.push(AblationRow {
                name: spec.name,
                short_variant: short,
                chunk: 0,
                speedup_vs_chunk1: t1 / guided,
            });
        }
    }
    rows
}

/// Render the ablation rows.
pub fn render_ablation(rows: &[AblationRow], device: &str) -> String {
    let mut s = format!("§6.4 ablation — dequeue chunk size vs isolated time, {device}\n");
    s += &format!(
        "  {:<30} {:>8} {:>6} {:>14}\n",
        "kernel", "regime", "chunk", "vs chunk=1"
    );
    for r in rows {
        s += &format!(
            "  {:<30} {:>8} {:>6} {:>13.2}x\n",
            r.name,
            if r.short_variant { "short" } else { "normal" },
            if r.chunk == 0 {
                "guided".to_string()
            } else {
                r.chunk.to_string()
            },
            r.speedup_vs_chunk1
        );
    }
    s
}

// ---------------------------------------------------------------------
// Extension — dynamic tenancy (§9: "different number and types of
// applications may join or leave a system dynamically")
// ---------------------------------------------------------------------

/// One scheme's outcome under dynamic tenancy.
#[derive(Debug, Clone)]
pub struct DynamicTenancyRow {
    /// Scheme label.
    pub scheme: &'static str,
    /// Unfairness across the tenants.
    pub unfairness: f64,
    /// Time for the whole episode.
    pub total_time: u64,
}

/// Extension experiment: six tenants join a node at staggered times (two
/// immediately, then one every ~quarter of the first kernel's isolated
/// runtime) and leave as they finish. accelOS plans fair shares and grows
/// into freed capacity; the baseline serialises arrivals; EK's static
/// sizing never adapts.
pub fn dynamic_tenancy(runner: &Runner, seed: u64) -> Vec<DynamicTenancyRow> {
    let names = ["tpacf", "lbm", "histo_main", "spmv", "sgemm", "stencil"];
    let workload: Workload = names
        .iter()
        .map(|n| KernelSpec::by_name(n).expect("kernel exists"))
        .collect();
    // Stagger joins relative to the first tenant's isolated runtime.
    let t0 = runner.isolated_time(Scheme::Baseline, workload[0], seed);
    let arrivals: Vec<u64> = (0..workload.len() as u64)
        .map(|i| i.saturating_sub(1) * t0 / 4)
        .collect();
    Scheme::all()
        .into_iter()
        .map(|scheme| {
            let run = runner.run_workload_with_arrivals(scheme, &workload, &arrivals, seed);
            DynamicTenancyRow {
                scheme: scheme.label(),
                unfairness: run.unfairness(),
                total_time: run.total_time,
            }
        })
        .collect()
}

/// Render the dynamic-tenancy rows.
pub fn render_dynamic_tenancy(rows: &[DynamicTenancyRow], device: &str) -> String {
    let base_time = rows[0].total_time as f64;
    let mut s = format!("Extension — dynamic tenancy (staggered joins/leaves), {device}\n");
    s += &format!(
        "  {:<16} {:>12} {:>16}\n",
        "scheme", "unfairness", "vs OpenCL time"
    );
    for r in rows {
        s += &format!(
            "  {:<16} {:>12.2} {:>15.2}x\n",
            r.scheme,
            r.unfairness,
            base_time / r.total_time as f64
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::SweepConfig;

    #[test]
    fn fig2_shapes_match_the_paper() {
        let runner = Runner::new(DeviceConfig::k20m());
        let f = fig2(&runner, 1);
        // Baseline slows later arrivals more (fig. 2a): tpacf (last) worse
        // than bfs (first).
        assert!(
            f.baseline_slowdowns[3] > f.baseline_slowdowns[0],
            "baseline: {:?}",
            f.baseline_slowdowns
        );
        // accelOS is substantially fairer (paper: 5.79x).
        assert!(
            f.unfairness.0 / f.unfairness.2 > 2.0,
            "unfairness {:?}",
            f.unfairness
        );
        // accelOS improves throughput (paper: 1.31x).
        assert!(f.speedup.1 > 1.0, "accelOS speedup {:.2}", f.speedup.1);
        let _rendered = f.to_string();
    }

    #[test]
    fn tiny_sweep_reproduces_orderings() {
        let runner = Runner::new(DeviceConfig::k20m());
        let cfg = SweepConfig::test_scale();
        let sw = sweep(&runner, &cfg, 4);
        let u = sw.avg_unfairness();
        // accelOS is fairer than baseline on average.
        assert!(
            u[scheme_index(Scheme::AccelOs)] < u[scheme_index(Scheme::Baseline)],
            "unfairness {u:?}"
        );
        // accelOS overlaps more than baseline.
        let o = sw.avg_overlap();
        assert!(o[scheme_index(Scheme::AccelOs)] > o[scheme_index(Scheme::Baseline)]);
        // Renderers do not panic.
        let ds = DeviceSweeps { sizes: vec![sw] };
        let _ = ds.fig9();
        let _ = ds.fig10();
        let _ = ds.fig12();
        let _ = ds.fig13();
        let _ = ds.fig14();
        let _ = ds.table_stp_antt();
    }

    #[test]
    fn fig11_pairs_render() {
        let runner = Runner::new(DeviceConfig::k20m());
        let rows = fig11(&runner, 3);
        assert_eq!(rows.len(), 13);
        let rendered = render_fig11(&rows, "K20m");
        assert!(rendered.contains("bfs + cutcp"));
    }

    #[test]
    fn fig15_geomean_shows_optimized_gain() {
        let runner = Runner::new(DeviceConfig::k20m());
        let rows = fig15(&runner, 5);
        assert_eq!(rows.len(), 25);
        let g_opt = geomean(&rows.iter().map(|r| r.optimized).collect::<Vec<_>>());
        let g_naive = geomean(&rows.iter().map(|r| r.naive).collect::<Vec<_>>());
        assert!(
            g_opt > g_naive,
            "optimized {g_opt:.3} vs naive {g_naive:.3}"
        );
        assert!(g_opt > 1.0, "optimized should be a net win: {g_opt:.3}");
        assert!(
            g_naive > 0.85,
            "naive should be a small loss at worst: {g_naive:.3}"
        );
        let _ = render_fig15(&rows, "K20m");
    }

    #[test]
    fn small_kernels_stay_close_to_baseline() {
        let rows = small_kernels(&DeviceConfig::k20m(), 7);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(
                r.rel_diff.abs() < 0.15,
                "{} with {} WGs diverged {:.1}%",
                r.name,
                r.wgs,
                r.rel_diff * 100.0
            );
        }
        let _ = render_small_kernels(&rows, "K20m");
    }

    #[test]
    fn dynamic_tenancy_favors_accelos() {
        let runner = Runner::new(DeviceConfig::k20m());
        let rows = dynamic_tenancy(&runner, 5);
        assert_eq!(rows.len(), 4);
        let by = |label: &str| rows.iter().find(|r| r.scheme == label).expect("row");
        let base = by("OpenCL");
        let acc = by("accelOS");
        assert!(
            acc.unfairness < base.unfairness,
            "accelOS {:.2} vs baseline {:.2}",
            acc.unfairness,
            base.unfairness
        );
        assert!(
            acc.total_time < base.total_time,
            "accelOS should also finish the episode sooner"
        );
        let _ = render_dynamic_tenancy(&rows, "K20m");
    }

    #[test]
    fn chunking_helps_short_kernels_and_not_long_ones() {
        let rows = chunk_ablation(&DeviceConfig::k20m(), 9);
        // Short-regime uniformAdd with chunk 8 must clearly beat chunk 1
        // (the atomic dequeue chain binds otherwise).
        let ua8 = rows
            .iter()
            .find(|r| r.name == "mri-gridding_uniformAdd" && r.chunk == 8 && r.short_variant)
            .expect("row exists");
        assert!(
            ua8.speedup_vs_chunk1 > 1.2,
            "chunking gain {:.2}",
            ua8.speedup_vs_chunk1
        );
        // Normal-regime sgemm must NOT benefit from coarse chunking — this
        // asymmetry is why §6.4 adapts on instruction count.
        let sg8 = rows
            .iter()
            .find(|r| r.name == "sgemm" && r.chunk == 8 && !r.short_variant)
            .expect("row exists");
        assert!(
            sg8.speedup_vs_chunk1 < 1.05,
            "sgemm chunking {:.2}",
            sg8.speedup_vs_chunk1
        );
        // The guided extension must recover most of the fixed-chunk win in
        // the short regime without the fixed policy's normal-regime loss.
        let ua_guided = rows
            .iter()
            .find(|r| r.name == "mri-gridding_uniformAdd" && r.chunk == 0 && r.short_variant)
            .expect("row exists");
        assert!(
            ua_guided.speedup_vs_chunk1 > 1.5,
            "guided gain {:.2}",
            ua_guided.speedup_vs_chunk1
        );
        let sg_guided = rows
            .iter()
            .find(|r| r.name == "sgemm" && r.chunk == 0 && !r.short_variant)
            .expect("row exists");
        assert!(
            sg_guided.speedup_vs_chunk1 > 0.9,
            "guided avoids the coarse-chunk loss: {:.2}",
            sg_guided.speedup_vs_chunk1
        );
        let _ = render_ablation(&rows, "K20m");
    }
}
