//! Per-experiment drivers: one function per table/figure of the paper's
//! evaluation (§8), each returning a renderable result.
//!
//! The heavy lifting is one [`sweep`] per (device, request-size): every
//! workload runs under every policy of a [`PolicySet`] and its metrics are
//! recorded; the figures are different projections of the same sweep,
//! exactly as in the paper. The paper's figures use
//! [`PolicySet::paper`]; any other set (weighted shares, guided dequeues,
//! custom policies) sweeps through the same code — `repro --policies`
//! exposes that from the command line.
//!
//! Ratio metrics (fairness improvement, throughput speedup) are relative
//! to a **reference** policy — by default the first of the set
//! (`repro --reference <name>` picks another; the reference row renders
//! explicitly as 1.00x so mixed sweeps stay readable).

use crate::runner::{Runner, WorkloadRun};
use crate::workloads::{alphabetic_pairs, SweepConfig, Workload};
use accelos::policy::PolicySet;
use gpu_sim::{DeviceConfig, FaultPlan, FaultSpec, KernelLaunch, LaunchPlan, Simulator};
use parboil::KernelSpec;
use rayon::prelude::*;
use std::fmt;

/// Geometric mean of a non-empty slice.
fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Metrics of one workload under every policy of the swept set (averaged
/// over repetitions). Each vector is indexed by the policy's position in
/// the [`PolicySet`].
///
/// `PartialEq` is exact (bit-level) — the parallel sweep is required to
/// reproduce the sequential sweep's numbers identically, and the
/// determinism tests assert it through this impl.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMetrics {
    /// Unfairness per policy, in set order.
    pub unfairness: Vec<f64>,
    /// Execution overlap per policy.
    pub overlap: Vec<f64>,
    /// Total workload time per policy.
    pub total_time: Vec<f64>,
    /// STP per policy.
    pub stp: Vec<f64>,
    /// ANTT per policy.
    pub antt: Vec<f64>,
    /// Worst-case ANTT per policy.
    pub worst_antt: Vec<f64>,
}

impl WorkloadMetrics {
    /// Fairness improvement of policy `index` over the set's default
    /// reference (index 0).
    pub fn fairness_improvement(&self, index: usize) -> f64 {
        self.fairness_improvement_over(0, index)
    }

    /// Fairness improvement of policy `index` over policy `reference`.
    pub fn fairness_improvement_over(&self, reference: usize, index: usize) -> f64 {
        sched_metrics::fairness_improvement(self.unfairness[reference], self.unfairness[index])
    }

    /// Throughput speedup of policy `index` over the set's default
    /// reference (index 0).
    pub fn throughput_speedup(&self, index: usize) -> f64 {
        self.throughput_speedup_over(0, index)
    }

    /// Throughput speedup of policy `index` over policy `reference`.
    pub fn throughput_speedup_over(&self, reference: usize, index: usize) -> f64 {
        self.total_time[reference] / self.total_time[index]
    }
}

/// One full sweep: per-workload metrics for one device, request size and
/// policy set.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Request size (2, 4 or 8).
    pub request_size: usize,
    /// Device name.
    pub device: String,
    /// Names of the swept policies, in set order.
    pub policy_names: Vec<String>,
    /// Figure labels of the swept policies, in set order.
    pub policy_labels: Vec<String>,
    /// Per-workload metrics.
    pub workloads: Vec<WorkloadMetrics>,
}

impl Sweep {
    /// Number of swept policies.
    pub fn policy_count(&self) -> usize {
        self.policy_names.len()
    }

    /// Position of the policy named `name` in this sweep.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.policy_names.iter().position(|n| n == name)
    }

    /// Mean of `f` across all workloads (the scalar behind every `avg_*`
    /// view).
    pub fn avg_of(&self, f: impl Fn(&WorkloadMetrics) -> f64) -> f64 {
        assert!(!self.workloads.is_empty());
        self.workloads.iter().map(f).sum::<f64>() / self.workloads.len() as f64
    }

    /// Average unfairness per policy, in set order.
    pub fn avg_unfairness(&self) -> Vec<f64> {
        (0..self.policy_count())
            .map(|i| self.avg_of(|w| w.unfairness[i]))
            .collect()
    }

    /// Average overlap per policy, in set order.
    pub fn avg_overlap(&self) -> Vec<f64> {
        (0..self.policy_count())
            .map(|i| self.avg_of(|w| w.overlap[i]))
            .collect()
    }

    /// Average fairness improvement of policy `index` over the default
    /// reference (index 0).
    pub fn avg_fairness_improvement(&self, index: usize) -> f64 {
        self.avg_fairness_improvement_over(0, index)
    }

    /// Average fairness improvement of policy `index` over `reference`.
    pub fn avg_fairness_improvement_over(&self, reference: usize, index: usize) -> f64 {
        self.avg_of(|w| w.fairness_improvement_over(reference, index))
    }

    /// Average throughput speedup of policy `index` over the default
    /// reference (index 0).
    pub fn avg_throughput_speedup(&self, index: usize) -> f64 {
        self.avg_throughput_speedup_over(0, index)
    }

    /// Average throughput speedup of policy `index` over `reference`.
    pub fn avg_throughput_speedup_over(&self, reference: usize, index: usize) -> f64 {
        self.avg_of(|w| w.throughput_speedup_over(reference, index))
    }

    /// Average STP / ANTT / worst-ANTT of policy `index`.
    pub fn avg_stp_antt(&self, index: usize) -> (f64, f64, f64) {
        (
            self.avg_of(|w| w.stp[index]),
            self.avg_of(|w| w.antt[index]),
            self.avg_of(|w| w.worst_antt[index]),
        )
    }

    /// Distribution of per-workload values of `f`: (min, max, fraction
    /// below 1.0).
    pub fn distribution(&self, f: impl Fn(&WorkloadMetrics) -> f64) -> (f64, f64, f64) {
        let vals: Vec<f64> = self.workloads.iter().map(f).collect();
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let below = vals.iter().filter(|&&v| v < 1.0).count() as f64 / vals.len() as f64;
        (min, max, below)
    }
}

/// The six metrics of one `(workload, policy, repetition)` run — the unit
/// of work the parallel sweep distributes.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PolicyRun {
    unfairness: f64,
    overlap: f64,
    total_time: f64,
    stp: f64,
    antt: f64,
    worst_antt: f64,
}

/// Seed of repetition `rep` for a workload whose base seed is `seed`.
///
/// Derived from `(seed, rep)` alone — never from iteration order — which is
/// what lets the sweep shard `(workload × rep × policy)` cells across
/// threads and still reproduce the sequential numbers bit-for-bit.
fn rep_seed(seed: u64, rep: u32) -> u64 {
    seed.wrapping_add(rep as u64).wrapping_mul(0x9e37_79b9)
}

/// Run one repetition of one workload under every policy of the set,
/// through one shared [`crate::runner::RepContext`] session (one cost
/// draw, one share cache, N policies).
fn measure_rep(
    runner: &Runner,
    set: &PolicySet,
    workload: &Workload,
    seed: u64,
    rep: u32,
) -> Vec<PolicyRun> {
    let ctx = runner.rep_context(workload, rep_seed(seed, rep));
    let arrivals = vec![0; workload.len()];
    set.iter()
        .map(|policy| {
            let run: WorkloadRun = runner.run_in(&ctx, policy.as_ref(), &arrivals);
            PolicyRun {
                unfairness: run.unfairness(),
                overlap: run.overlap(),
                total_time: run.total_time as f64,
                stp: run.stp(),
                antt: run.antt(),
                worst_antt: run.worst_antt(),
            }
        })
        .collect()
}

/// All-zero sums over `n_policies` policies (the fold's initial state).
fn zero_metrics(n_policies: usize) -> WorkloadMetrics {
    WorkloadMetrics {
        unfairness: vec![0.0; n_policies],
        overlap: vec![0.0; n_policies],
        total_time: vec![0.0; n_policies],
        stp: vec![0.0; n_policies],
        antt: vec![0.0; n_policies],
        worst_antt: vec![0.0; n_policies],
    }
}

/// Fold one repetition's policy runs into the running sums. Repetitions
/// must be folded in repetition order — float addition is the one
/// non-commutative step of the pipeline, and this order is what keeps the
/// streaming fold bit-identical to the historical buffered loop.
fn fold_rep(acc: &mut WorkloadMetrics, rep: &[PolicyRun]) {
    for (i, run) in rep.iter().enumerate() {
        acc.unfairness[i] += run.unfairness;
        acc.overlap[i] += run.overlap;
        acc.total_time[i] += run.total_time;
        acc.stp[i] += run.stp;
        acc.antt[i] += run.antt;
        acc.worst_antt[i] += run.worst_antt;
    }
}

/// Divide the folded sums by the repetition count (the terminal step of
/// the average, shared by the streaming and buffered folds).
fn finish_average(acc: &mut WorkloadMetrics, reps: usize) {
    let n = reps as f64;
    for i in 0..acc.unfairness.len() {
        acc.unfairness[i] /= n;
        acc.overlap[i] /= n;
        acc.total_time[i] /= n;
        acc.stp[i] /= n;
        acc.antt[i] /= n;
        acc.worst_antt[i] /= n;
    }
}

/// Average per-rep policy runs, accumulating in repetition order (the same
/// float-addition order as the historical sequential loop).
fn average_reps(per_rep: &[Vec<PolicyRun>]) -> WorkloadMetrics {
    let n_policies = per_rep.first().map_or(0, Vec::len);
    let mut acc = zero_metrics(n_policies);
    for rep in per_rep {
        fold_rep(&mut acc, rep);
    }
    finish_average(&mut acc, per_rep.len());
    acc
}

/// Run one workload under every policy of the set, `reps` times, and
/// average.
///
/// `reps` is clamped to at least 1 (matching [`sweep`] / [`sweep_seq`], so
/// `reps == 0` configurations cannot make the two sweep paths diverge or
/// produce NaN averages).
pub fn measure_workload(
    runner: &Runner,
    set: &PolicySet,
    workload: &Workload,
    reps: u32,
    seed: u64,
) -> WorkloadMetrics {
    let per_rep: Vec<Vec<PolicyRun>> = (0..reps.max(1))
        .map(|rep| measure_rep(runner, set, workload, seed, rep))
        .collect();
    average_reps(&per_rep)
}

/// Counters of one streaming sweep fold (see [`sweep_with_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// `(workload × rep)` units processed.
    pub units: usize,
    /// High-water mark of units parked in reorder windows. The historical
    /// buffered fold held every one of `units` results at once before
    /// folding — a buffer that grows with the full combination space at
    /// `--full` scale — while the streaming fold parks at most the
    /// scheduling skew between threads (0 on one thread).
    pub peak_buffered: usize,
}

/// Per-workload state of the streaming fold: running rep-order sums plus
/// a reorder window for repetitions that finished out of order.
struct FoldSlot {
    /// Next repetition to fold (reps fold strictly in order).
    next_rep: u32,
    /// Finished repetitions waiting for an earlier one.
    pending: std::collections::BTreeMap<u32, Vec<PolicyRun>>,
    /// Rep-order partial sums (same float-addition order as
    /// [`average_reps`]).
    sums: WorkloadMetrics,
}

/// The streaming fold behind [`sweep`] and the sharded sweeps: fan the
/// `(workload × rep)` grid across the rayon pool and merge each finished
/// unit into its workload's running accumulator in repetition order
/// (buffering only units that arrive before an earlier rep of the same
/// workload). Per-repetition seeds derive from the **global** workload
/// index in `cfg`'s grid, so a shard computes exactly the numbers the
/// unsharded sweep computes for the same workloads.
fn sweep_stream(
    runner: &Runner,
    set: &PolicySet,
    cfg: &SweepConfig,
    workloads: &[Workload],
    global_indices: &[usize],
) -> (Vec<WorkloadMetrics>, FoldStats) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    assert_eq!(workloads.len(), global_indices.len());
    let reps = cfg.reps.max(1);
    let units: Vec<(usize, u32)> = (0..workloads.len())
        .flat_map(|i| (0..reps).map(move |r| (i, r)))
        .collect();
    let slots: Vec<Mutex<FoldSlot>> = (0..workloads.len())
        .map(|_| {
            Mutex::new(FoldSlot {
                next_rep: 0,
                pending: std::collections::BTreeMap::new(),
                sums: zero_metrics(set.len()),
            })
        })
        .collect();
    let buffered = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    units.par_iter().for_each(|&(i, rep)| {
        let runs = measure_rep(
            runner,
            set,
            &workloads[i],
            cfg.seed.wrapping_add(global_indices[i] as u64),
            rep,
        );
        let mut slot = slots[i].lock().unwrap();
        let slot = &mut *slot;
        if rep == slot.next_rep {
            fold_rep(&mut slot.sums, &runs);
            slot.next_rep += 1;
            while let Some(next) = slot.pending.remove(&slot.next_rep) {
                fold_rep(&mut slot.sums, &next);
                slot.next_rep += 1;
                buffered.fetch_sub(1, Ordering::Relaxed);
            }
        } else {
            slot.pending.insert(rep, runs);
            let now = buffered.fetch_add(1, Ordering::Relaxed) + 1;
            peak.fetch_max(now, Ordering::Relaxed);
        }
    });
    let metrics = slots
        .into_iter()
        .map(|slot| {
            let mut slot = slot.into_inner().unwrap();
            debug_assert_eq!(slot.next_rep, reps, "every repetition folded");
            debug_assert!(slot.pending.is_empty());
            finish_average(&mut slot.sums, reps as usize);
            slot.sums
        })
        .collect();
    let stats = FoldStats {
        units: units.len(),
        peak_buffered: peak.load(Ordering::Relaxed),
    };
    (metrics, stats)
}

/// Sweep one request size on one device, fanning the `(workload × rep)`
/// grid out across the rayon pool (each unit runs every policy inline
/// against one shared session). Units **stream** into per-workload
/// accumulators in deterministic repetition order — nothing buffers the
/// whole grid — so the output is bit-identical to [`sweep_seq`]
/// regardless of thread count while peak memory stays flat as the
/// combination space grows.
pub fn sweep(runner: &Runner, set: &PolicySet, cfg: &SweepConfig, request_size: usize) -> Sweep {
    sweep_with_stats(runner, set, cfg, request_size).0
}

/// [`sweep`] plus the streaming fold's buffering counters (used by the
/// perf-trajectory benches as a peak-memory proxy).
pub fn sweep_with_stats(
    runner: &Runner,
    set: &PolicySet,
    cfg: &SweepConfig,
    request_size: usize,
) -> (Sweep, FoldStats) {
    let workloads = cfg.workloads(request_size);
    let indices: Vec<usize> = (0..workloads.len()).collect();
    let (metrics, stats) = sweep_stream(runner, set, cfg, &workloads, &indices);
    (
        Sweep {
            request_size,
            device: runner.device().name.clone(),
            policy_names: set.names(),
            policy_labels: set.labels(),
            workloads: metrics,
        },
        stats,
    )
}

/// The shard worker's sweep: metrics for just the workloads at
/// `indices` of the request size's grid, tagged with their global
/// indices. Because per-repetition seeds derive from `(global index,
/// rep)` alone, each returned cell is bit-identical to the corresponding
/// cell of the unsharded [`sweep`] — which is what lets `repro --shard
/// i/n` partition the grid across independent processes and `repro
/// merge` reassemble the exact unsharded output.
///
/// # Panics
///
/// Panics if any index is out of range for the request size's grid.
pub fn sweep_indexed(
    runner: &Runner,
    set: &PolicySet,
    cfg: &SweepConfig,
    request_size: usize,
    indices: &[usize],
) -> Vec<(usize, WorkloadMetrics)> {
    let grid = cfg.workloads(request_size);
    let selected: Vec<Workload> = indices.iter().map(|&i| grid[i].clone()).collect();
    let (metrics, _) = sweep_stream(runner, set, cfg, &selected, indices);
    indices.iter().copied().zip(metrics).collect()
}

/// The historical single-threaded sweep. Kept as the reference the
/// parallel [`sweep`] is differentially tested against (and for hosts
/// where spawning threads is undesirable).
pub fn sweep_seq(
    runner: &Runner,
    set: &PolicySet,
    cfg: &SweepConfig,
    request_size: usize,
) -> Sweep {
    let workloads = cfg.workloads(request_size);
    let metrics = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| measure_workload(runner, set, w, cfg.reps, cfg.seed.wrapping_add(i as u64)))
        .collect();
    Sweep {
        request_size,
        device: runner.device().name.clone(),
        policy_names: set.names(),
        policy_labels: set.labels(),
        workloads: metrics,
    }
}

// ---------------------------------------------------------------------
// Figure 2 — motivation: bfs + cutcp + stencil + tpacf on NVIDIA
// ---------------------------------------------------------------------

/// Result of the fig. 2 motivation experiment.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Kernel names.
    pub names: Vec<&'static str>,
    /// Per-kernel slowdowns under the baseline.
    pub baseline_slowdowns: Vec<f64>,
    /// Per-kernel slowdowns under accelOS.
    pub accelos_slowdowns: Vec<f64>,
    /// Unfairness: (baseline, EK, accelOS).
    pub unfairness: (f64, f64, f64),
    /// Throughput speedup over baseline: (EK, accelOS).
    pub speedup: (f64, f64),
}

/// Reproduce fig. 2: parallel execution of bfs, cutcp, stencil and tpacf.
pub fn fig2(runner: &Runner, seed: u64) -> Fig2 {
    let names = ["bfs", "cutcp", "stencil", "tpacf"];
    let wl: Workload = names
        .iter()
        .map(|n| KernelSpec::by_name(n).expect("kernel exists"))
        .collect();
    let ctx = runner.rep_context(&wl, seed);
    let arrivals = vec![0; wl.len()];
    let baseline = PolicySet::builtin("baseline").expect("builtin");
    let ek = PolicySet::builtin("ek").expect("builtin");
    let accelos = PolicySet::builtin("accelos").expect("builtin");
    let base = runner.run_in(&ctx, baseline.as_ref(), &arrivals);
    let ek = runner.run_in(&ctx, ek.as_ref(), &arrivals);
    let acc = runner.run_in(&ctx, accelos.as_ref(), &arrivals);
    Fig2 {
        names: names.to_vec(),
        baseline_slowdowns: base.slowdowns(),
        accelos_slowdowns: acc.slowdowns(),
        unfairness: (base.unfairness(), ek.unfairness(), acc.unfairness()),
        speedup: (
            base.total_time as f64 / ek.total_time as f64,
            base.total_time as f64 / acc.total_time as f64,
        ),
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2 — parallel execution of bfs, cutcp, stencil, tpacf"
        )?;
        writeln!(f, "(a) individual slowdowns:")?;
        writeln!(f, "  {:<10} {:>10} {:>10}", "kernel", "OpenCL", "accelOS")?;
        for (i, n) in self.names.iter().enumerate() {
            writeln!(
                f,
                "  {:<10} {:>10.2} {:>10.2}",
                n, self.baseline_slowdowns[i], self.accelos_slowdowns[i]
            )?;
        }
        writeln!(
            f,
            "(b) unfairness: OpenCL {:.2}  EK {:.2}  accelOS {:.2}  (accelOS {:.2}x fairer)",
            self.unfairness.0,
            self.unfairness.1,
            self.unfairness.2,
            self.unfairness.0 / self.unfairness.2
        )?;
        writeln!(
            f,
            "(c) throughput speedup: EK {:.2}x  accelOS {:.2}x",
            self.speedup.0, self.speedup.1
        )
    }
}

// ---------------------------------------------------------------------
// Figures 9/10/12/13/14 + tables 1/2 — sweep projections
// ---------------------------------------------------------------------

/// The three request sizes with their sweeps on one device.
#[derive(Debug, Clone)]
pub struct DeviceSweeps {
    /// 2-, 4- and 8-request sweeps.
    pub sizes: Vec<Sweep>,
    /// Position (in set order) of the reference policy ratio figures
    /// divide by. Defaults to 0; `repro --reference <name>` picks another
    /// without reordering the set.
    pub reference: usize,
}

/// Run the paper's three sweeps (2, 4, 8 requests) on one device with one
/// policy set. Ratio figures divide by the policy at `reference` (pass 0
/// for the historical first-of-set behaviour).
///
/// # Panics
///
/// Panics if `reference` is out of range for the set.
pub fn device_sweeps(
    runner: &Runner,
    set: &PolicySet,
    cfg: &SweepConfig,
    reference: usize,
) -> DeviceSweeps {
    assert!(reference < set.len(), "reference index within the set");
    DeviceSweeps {
        sizes: [2, 4, 8]
            .iter()
            .map(|&k| sweep(runner, set, cfg, k))
            .collect(),
        reference,
    }
}

impl DeviceSweeps {
    fn labels(&self) -> &[String] {
        &self.sizes[0].policy_labels
    }

    /// The reference policy's figure label.
    fn reference_label(&self) -> &str {
        &self.labels()[self.reference]
    }

    /// Render the fig. 9 view: average unfairness per policy.
    pub fn fig9(&self) -> String {
        let mut s = format!(
            "Figure 9 — average system unfairness (lower is better), {}\n",
            self.sizes[0].device
        );
        s += &format!("  {:<10}", "requests");
        for label in self.labels() {
            s += &format!(" {label:>14}");
        }
        s += "\n";
        for sw in &self.sizes {
            let u = sw.avg_unfairness();
            s += &format!("  {:<10}", sw.request_size);
            for v in &u {
                s += &format!(" {v:>14.2}");
            }
            s += "\n";
        }
        s
    }

    /// Render the fig. 10 view: fairness-improvement distributions over
    /// the reference policy. The reference row renders explicitly (marked
    /// `*`, 1.00x by definition) so mixed sweeps stay readable.
    pub fn fig10(&self) -> String {
        let reference = self.reference_label().to_string();
        let mut s = format!(
            "Figure 10 — fairness improvement over {reference} (higher is better), {}\n",
            self.sizes[0].device
        );
        s += &format!(
            "  {:<10} {:<17} {:>7} {:>16} {:>5}\n",
            "requests", "policy", "avg", "[min..max]", "%<1"
        );
        for sw in &self.sizes {
            for i in 0..sw.policy_count() {
                let avg = sw.avg_fairness_improvement_over(self.reference, i);
                let (min, max, bad) =
                    sw.distribution(|w| w.fairness_improvement_over(self.reference, i));
                let marker = if i == self.reference { "*" } else { "" };
                s += &format!(
                    "  {:<10} {:<17} {:>6.2}x [{:>5.2}..{:>6.2}] {:>4.0}%\n",
                    sw.request_size,
                    format!("{}{marker}", sw.policy_labels[i]),
                    avg,
                    min,
                    max,
                    bad * 100.0
                );
            }
        }
        s += "  (* reference)\n";
        s
    }

    /// Render the fig. 12 view: average kernel execution overlap.
    pub fn fig12(&self) -> String {
        let mut s = format!(
            "Figure 12 — average kernel execution overlap (higher is better), {}\n",
            self.sizes[0].device
        );
        s += &format!("  {:<10}", "requests");
        for label in self.labels() {
            s += &format!(" {label:>14}");
        }
        s += "\n";
        for sw in &self.sizes {
            let o = sw.avg_overlap();
            s += &format!("  {:<10}", sw.request_size);
            for v in &o {
                s += &format!(" {:>13.0}%", v * 100.0);
            }
            s += "\n";
        }
        s
    }

    /// Render the fig. 13 view: average throughput speedups over the
    /// reference policy (rendered explicitly as a `*`-marked 1.00x
    /// column).
    pub fn fig13(&self) -> String {
        let reference = self.reference_label().to_string();
        let mut s = format!(
            "Figure 13 — average system throughput speedup over {reference}, {}\n",
            self.sizes[0].device
        );
        s += &format!("  {:<10}", "requests");
        for (i, label) in self.labels().iter().enumerate() {
            let marker = if i == self.reference { "*" } else { "" };
            s += &format!(" {:>14}", format!("{label}{marker}"));
        }
        s += "\n";
        for sw in &self.sizes {
            s += &format!("  {:<10}", sw.request_size);
            for i in 0..sw.policy_count() {
                s += &format!(
                    " {:>13.2}x",
                    sw.avg_throughput_speedup_over(self.reference, i)
                );
            }
            s += "\n";
        }
        s += "  (* reference)\n";
        s
    }

    /// Render the fig. 14 view: throughput-speedup distributions over the
    /// reference policy (reference row rendered explicitly, marked `*`).
    pub fn fig14(&self) -> String {
        let reference = self.reference_label().to_string();
        let mut s = format!(
            "Figure 14 — throughput speedup distribution over {reference}, {}\n",
            self.sizes[0].device
        );
        s += &format!(
            "  {:<10} {:<17} {:>16} {:>6}\n",
            "requests", "policy", "[min..max]", "%slow"
        );
        for sw in &self.sizes {
            for i in 0..sw.policy_count() {
                let (min, max, bad) =
                    sw.distribution(|w| w.throughput_speedup_over(self.reference, i));
                let marker = if i == self.reference { "*" } else { "" };
                s += &format!(
                    "  {:<10} {:<17} [{:>5.2}..{:>6.2}] {:>5.0}%\n",
                    sw.request_size,
                    format!("{}{marker}", sw.policy_labels[i]),
                    min,
                    max,
                    bad * 100.0
                );
            }
        }
        s += "  (* reference)\n";
        s
    }

    /// Render the table 1/2 view: STP, ANTT and worst-case ANTT per
    /// policy.
    pub fn table_stp_antt(&self) -> String {
        let mut s = format!(
            "Tables 1/2 — STP (higher better), ANTT / W.ANTT (lower better), {}\n",
            self.sizes[0].device
        );
        s += &format!(
            "  {:<6} {:<16} {:>8} {:>8} {:>8}\n",
            "RQSTs", "policy", "STP", "ANTT", "W.ANTT"
        );
        for sw in &self.sizes {
            for i in 0..sw.policy_count() {
                let (stp, antt, wa) = sw.avg_stp_antt(i);
                s += &format!(
                    "  {:<6} {:<16} {:>8.2} {:>8.2} {:>8.2}\n",
                    sw.request_size, sw.policy_labels[i], stp, antt, wa
                );
            }
        }
        s
    }
}

// ---------------------------------------------------------------------
// Figure 11 — alphabetic pairwise unfairness
// ---------------------------------------------------------------------

/// One row of fig. 11.
#[derive(Debug, Clone)]
pub struct PairRow {
    /// The two kernel names.
    pub pair: (String, String),
    /// Unfairness: (baseline, EK, accelOS).
    pub unfairness: (f64, f64, f64),
}

/// Reproduce fig. 11: unfairness for the alphabetic-neighbour pairs
/// (pairs are independent, so they fan out across the rayon pool).
pub fn fig11(runner: &Runner, seed: u64) -> Vec<PairRow> {
    let baseline = PolicySet::builtin("baseline").expect("builtin");
    let ek = PolicySet::builtin("ek").expect("builtin");
    let accelos = PolicySet::builtin("accelos").expect("builtin");
    alphabetic_pairs()
        .par_iter()
        .map(|wl| {
            let ctx = runner.rep_context(wl, seed);
            let arrivals = vec![0; wl.len()];
            let base = runner.run_in(&ctx, baseline.as_ref(), &arrivals);
            let ek = runner.run_in(&ctx, ek.as_ref(), &arrivals);
            let acc = runner.run_in(&ctx, accelos.as_ref(), &arrivals);
            PairRow {
                pair: (wl[0].name.to_string(), wl[1].name.to_string()),
                unfairness: (base.unfairness(), ek.unfairness(), acc.unfairness()),
            }
        })
        .collect()
}

/// Render fig. 11 rows.
pub fn render_fig11(rows: &[PairRow], device: &str) -> String {
    let mut s = format!("Figure 11 — unfairness for alphabetic 2-kernel workloads, {device}\n");
    s += &format!(
        "  {:<50} {:>8} {:>8} {:>8}\n",
        "pair", "OpenCL", "EK", "accelOS"
    );
    for r in rows {
        s += &format!(
            "  {:<50} {:>8.2} {:>8.2} {:>8.2}\n",
            format!("{} + {}", r.pair.0, r.pair.1),
            r.unfairness.0,
            r.unfairness.1,
            r.unfairness.2
        );
    }
    s
}

// ---------------------------------------------------------------------
// Figure 15 — single-kernel performance impact (naive vs optimized)
// ---------------------------------------------------------------------

/// One kernel's isolated speedups.
#[derive(Debug, Clone)]
pub struct SingleKernelRow {
    /// Kernel name.
    pub name: &'static str,
    /// accelOS-naive speedup over baseline (isolated).
    pub naive: f64,
    /// accelOS-optimized speedup over baseline (isolated).
    pub optimized: f64,
}

/// Reproduce fig. 15: per-kernel isolated accelOS speedups (kernels are
/// independent, so they fan out across the rayon pool).
pub fn fig15(runner: &Runner, seed: u64) -> Vec<SingleKernelRow> {
    let baseline = PolicySet::builtin("baseline").expect("builtin");
    let naive = PolicySet::builtin("accelos-naive").expect("builtin");
    let optimized = PolicySet::builtin("accelos").expect("builtin");
    KernelSpec::all()
        .par_iter()
        .map(|spec| {
            let base = runner.isolated_time(baseline.as_ref(), spec, seed) as f64;
            let n = runner.isolated_time(naive.as_ref(), spec, seed) as f64;
            let opt = runner.isolated_time(optimized.as_ref(), spec, seed) as f64;
            SingleKernelRow {
                name: spec.name,
                naive: base / n,
                optimized: base / opt,
            }
        })
        .collect()
}

/// Render fig. 15 rows plus geometric means.
pub fn render_fig15(rows: &[SingleKernelRow], device: &str) -> String {
    let mut s = format!("Figure 15 — accelOS single-kernel performance impact, {device}\n");
    s += &format!("  {:<30} {:>8} {:>10}\n", "kernel", "naive", "optimized");
    for r in rows {
        s += &format!("  {:<30} {:>7.2}x {:>9.2}x\n", r.name, r.naive, r.optimized);
    }
    let g_naive = geomean(&rows.iter().map(|r| r.naive).collect::<Vec<_>>());
    let g_opt = geomean(&rows.iter().map(|r| r.optimized).collect::<Vec<_>>());
    s += &format!(
        "  {:<30} {:>7.2}x {:>9.2}x  (geometric mean)\n",
        "geomean", g_naive, g_opt
    );
    s
}

// ---------------------------------------------------------------------
// §8.5 small kernels + §6.4 chunking ablation
// ---------------------------------------------------------------------

/// Isolated time of `spec` restricted to `wgs` work groups, as a custom
/// launch (used by the §8.5 small-kernel study and the chunk ablation).
pub fn isolated_custom(
    device: &DeviceConfig,
    spec: &KernelSpec,
    wgs: u64,
    plan_of: impl FnOnce(Vec<u64>) -> LaunchPlan,
    seed: u64,
) -> u64 {
    let costs = spec.vg_costs(wgs as usize, seed);
    let mut sim = Simulator::new(device.clone());
    sim.add_launch(KernelLaunch {
        name: spec.name.to_string(),
        arrival: 0,
        req: gpu_sim::WorkGroupReq {
            threads: spec.wg_size,
            local_mem: 0,
            regs_per_thread: 1,
        },
        mem_intensity: spec.mem_intensity,
        plan: plan_of(costs),
        max_workers: None,
    });
    sim.run().total_time().max(1)
}

/// One row of the §8.5 small-kernel study.
#[derive(Debug, Clone)]
pub struct SmallKernelRow {
    /// Kernel name.
    pub name: &'static str,
    /// Work groups launched.
    pub wgs: u64,
    /// Relative difference accelOS vs baseline (positive = slower).
    pub rel_diff: f64,
}

/// Reproduce the §8.5 small-kernel experiment: bfs/spmv/tpacf with 2, 4
/// and 8 work groups differ from standard OpenCL by only a few percent.
pub fn small_kernels(device: &DeviceConfig, seed: u64) -> Vec<SmallKernelRow> {
    let mut rows = Vec::new();
    for name in ["bfs", "spmv", "tpacf"] {
        let spec = KernelSpec::by_name(name).expect("kernel exists");
        for wgs in [2u64, 4, 8] {
            let base = isolated_custom(
                device,
                spec,
                wgs,
                |c| LaunchPlan::Hardware { wg_costs: c.into() },
                seed,
            ) as f64;
            let acc = isolated_custom(
                device,
                spec,
                wgs,
                |c| LaunchPlan::PersistentDynamic {
                    workers: wgs as u32,
                    vg_costs: c.into(),
                    chunk: 1,
                    per_vg_overhead: 2,
                },
                seed,
            ) as f64;
            rows.push(SmallKernelRow {
                name: spec.name,
                wgs,
                rel_diff: acc / base - 1.0,
            });
        }
    }
    rows
}

/// Render the small-kernel rows.
pub fn render_small_kernels(rows: &[SmallKernelRow], device: &str) -> String {
    let mut s = format!("§8.5 — small-kernel executions, accelOS vs OpenCL, {device}\n");
    s += &format!("  {:<10} {:>6} {:>12}\n", "kernel", "WGs", "difference");
    for r in rows {
        s += &format!(
            "  {:<10} {:>6} {:>11.1}%\n",
            r.name,
            r.wgs,
            r.rel_diff * 100.0
        );
    }
    s
}

/// One row of the §6.4 chunking ablation.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Kernel name.
    pub name: &'static str,
    /// Which cost regime: `true` for the artificially shortened variant
    /// (per-group cost divided by 8, the paper's "small kernel" regime).
    pub short_variant: bool,
    /// Chunk size forced for this run (0 = the guided-schedule extension).
    pub chunk: u32,
    /// Isolated speedup over the chunk=1 configuration.
    pub speedup_vs_chunk1: f64,
}

/// Ablation of §6.4: force every chunk size on representative kernels, in
/// both the normal regime and an artificially shortened one (per-group
/// costs ÷ 8, like the paper's §8.5 small datasets). Chunking pays in the
/// short regime (the atomic dequeue chain binds) and can cost in the
/// normal regime (coarser chunks hurt balance) — which is exactly why the
/// policy adapts on instruction count.
pub fn chunk_ablation(device: &DeviceConfig, seed: u64) -> Vec<AblationRow> {
    let kernels = [
        "mri-gridding_uniformAdd",
        "mri-q_ComputePhiMag",
        "histo_final",
        "sgemm",
    ];
    let mut rows = Vec::new();
    for name in kernels {
        let spec = KernelSpec::by_name(name).expect("kernel exists");
        let workers = (device.total_threads() / spec.wg_size as u64).min(spec.default_wgs) as u32;
        for short in [false, true] {
            let div = if short { 8 } else { 1 };
            let time_for = |chunk: u32| {
                isolated_custom(
                    device,
                    spec,
                    spec.default_wgs,
                    |c| LaunchPlan::PersistentDynamic {
                        workers,
                        vg_costs: c.iter().map(|&x| (x / div).max(1)).collect(),
                        chunk,
                        per_vg_overhead: 2,
                    },
                    seed,
                ) as f64
            };
            let t1 = time_for(1);
            for chunk in [1u32, 2, 4, 6, 8] {
                rows.push(AblationRow {
                    name: spec.name,
                    short_variant: short,
                    chunk,
                    speedup_vs_chunk1: t1 / time_for(chunk),
                });
            }
            // Extension: the guided (tapering) schedule, rendered as
            // chunk = 0 rows.
            let guided = isolated_custom(
                device,
                spec,
                spec.default_wgs,
                |c| LaunchPlan::PersistentGuided {
                    workers,
                    vg_costs: c.iter().map(|&x| (x / div).max(1)).collect(),
                    max_chunk: 8,
                    per_vg_overhead: 2,
                },
                seed,
            ) as f64;
            rows.push(AblationRow {
                name: spec.name,
                short_variant: short,
                chunk: 0,
                speedup_vs_chunk1: t1 / guided,
            });
        }
    }
    rows
}

/// Render the ablation rows.
pub fn render_ablation(rows: &[AblationRow], device: &str) -> String {
    let mut s = format!("§6.4 ablation — dequeue chunk size vs isolated time, {device}\n");
    s += &format!(
        "  {:<30} {:>8} {:>6} {:>14}\n",
        "kernel", "regime", "chunk", "vs chunk=1"
    );
    for r in rows {
        s += &format!(
            "  {:<30} {:>8} {:>6} {:>13.2}x\n",
            r.name,
            if r.short_variant { "short" } else { "normal" },
            if r.chunk == 0 {
                "guided".to_string()
            } else {
                r.chunk.to_string()
            },
            r.speedup_vs_chunk1
        );
    }
    s
}

// ---------------------------------------------------------------------
// Extension — dynamic tenancy (§9: "different number and types of
// applications may join or leave a system dynamically")
// ---------------------------------------------------------------------

/// One policy's outcome under dynamic tenancy.
#[derive(Debug, Clone)]
pub struct DynamicTenancyRow {
    /// Policy label.
    pub policy: String,
    /// Unfairness across the tenants.
    pub unfairness: f64,
    /// Time for the whole episode.
    pub total_time: u64,
}

/// Extension experiment: six tenants join a node at staggered times (two
/// immediately, then one every ~quarter of the first kernel's isolated
/// runtime) and leave as they finish. accelOS plans fair shares and grows
/// into freed capacity; the baseline serialises arrivals; EK's static
/// sizing never adapts. Runs every policy of `set` (render treats the
/// first as the reference).
pub fn dynamic_tenancy(runner: &Runner, set: &PolicySet, seed: u64) -> Vec<DynamicTenancyRow> {
    let names = ["tpacf", "lbm", "histo_main", "spmv", "sgemm", "stencil"];
    let workload: Workload = names
        .iter()
        .map(|n| KernelSpec::by_name(n).expect("kernel exists"))
        .collect();
    // Stagger joins relative to the first tenant's isolated runtime under
    // the reference policy.
    let t0 = runner.isolated_time(set.get(0).as_ref(), workload[0], seed);
    let arrivals: Vec<u64> = (0..workload.len() as u64)
        .map(|i| i.saturating_sub(1) * t0 / 4)
        .collect();
    let ctx = runner.rep_context(&workload, seed);
    set.iter()
        .map(|policy| {
            let run = runner.run_in(&ctx, policy.as_ref(), &arrivals);
            DynamicTenancyRow {
                policy: policy.label().to_string(),
                unfairness: run.unfairness(),
                total_time: run.total_time,
            }
        })
        .collect()
}

/// Render the dynamic-tenancy rows (times relative to row `reference`).
pub fn render_dynamic_tenancy(
    rows: &[DynamicTenancyRow],
    reference: usize,
    device: &str,
) -> String {
    let base_time = rows[reference].total_time as f64;
    let reference = &rows[reference].policy;
    let mut s = format!("Extension — dynamic tenancy (staggered joins/leaves), {device}\n");
    s += &format!(
        "  {:<16} {:>12} {:>16}\n",
        "policy",
        "unfairness",
        format!("vs {reference} time")
    );
    for r in rows {
        s += &format!(
            "  {:<16} {:>12.2} {:>15.2}x\n",
            r.policy,
            r.unfairness,
            base_time / r.total_time as f64
        );
    }
    s
}

// ---------------------------------------------------------------------
// Extension — preemptive priority (mid-flight worker reclamation)
// ---------------------------------------------------------------------

/// One policy's outcome in the mixed-priority arrival scenario.
#[derive(Debug, Clone)]
pub struct PreemptionRow {
    /// Policy label.
    pub policy: String,
    /// Turnaround of the premium tenant (arrival → completion).
    pub premium_turnaround: u64,
    /// Mean turnaround of the batch tenants.
    pub batch_mean_turnaround: f64,
    /// Time for the whole episode.
    pub total_time: u64,
    /// Reclaim commands applied across all launches.
    pub preemptions: usize,
    /// Workers retired early at chunk boundaries.
    pub reclaimed_workers: usize,
}

/// The kernels of the mixed-priority scenario: the premium tenant first
/// (so `accelos-priority`'s default premium count covers it), then the
/// two long-running batch tenants.
pub fn priority_workload() -> Workload {
    ["sgemm", "lbm", "tpacf"]
        .iter()
        .map(|n| KernelSpec::by_name(n).expect("kernel exists"))
        .collect()
}

/// Extension experiment (ROADMAP "priority/preemption"): two batch
/// tenants plan the machine between themselves at t=0; a premium tenant
/// arrives a quarter into their run. Every policy of `set` runs the same
/// staggered episode through the cohort-planned preemptive path
/// ([`Runner::run_preemptive`]): non-preemptive policies admit the
/// premium request at its share but leave it queueing behind the batch
/// tenants' resident persistent workers, while `accelos-priority`
/// reclaims those workers at chunk boundaries, so the premium tenant
/// starts within one chunk of arriving. Render treats the first row as
/// the reference.
pub fn priority_preemption(runner: &Runner, set: &PolicySet, seed: u64) -> Vec<PreemptionRow> {
    let workload = priority_workload();
    // The premium request joins a quarter into the first batch tenant's
    // isolated runtime under the reference policy.
    let t_batch = runner.isolated_time(set.get(0).as_ref(), workload[1], seed);
    let arrivals: Vec<u64> = vec![t_batch / 4, 0, 0];
    let ctx = runner.rep_context(&workload, seed);
    set.iter()
        .map(|policy| {
            let report = runner.preemptive_report(&ctx, policy.as_ref(), &arrivals);
            let batch: Vec<u64> = report.kernels[1..].iter().map(|k| k.turnaround()).collect();
            PreemptionRow {
                policy: policy.label().to_string(),
                premium_turnaround: report.kernels[0].turnaround(),
                batch_mean_turnaround: batch.iter().sum::<u64>() as f64 / batch.len() as f64,
                total_time: report.total_time(),
                preemptions: report.kernels.iter().map(|k| k.preemptions).sum(),
                reclaimed_workers: report.kernels.iter().map(|k| k.reclaimed_workers).sum(),
            }
        })
        .collect()
}

/// Render the preemption rows (premium speedup relative to row
/// `reference`).
pub fn render_priority_preemption(
    rows: &[PreemptionRow],
    reference: usize,
    device: &str,
) -> String {
    let base = rows[reference].premium_turnaround as f64;
    let ref_label = &rows[reference].policy;
    let mut s =
        format!("Extension — preemptive priority (premium tenant arrives mid-run), {device}\n");
    s += &format!(
        "  {:<17} {:>14} {:>9} {:>14} {:>9} {:>10}\n",
        "policy", "premium TT", "speedup", "batch mean TT", "preempt.", "reclaimed"
    );
    for (i, r) in rows.iter().enumerate() {
        let marker = if i == reference { "*" } else { "" };
        s += &format!(
            "  {:<17} {:>14} {:>8.2}x {:>14.0} {:>9} {:>10}\n",
            format!("{}{marker}", r.policy),
            r.premium_turnaround,
            base / r.premium_turnaround as f64,
            r.batch_mean_turnaround,
            r.preemptions,
            r.reclaimed_workers
        );
    }
    s += &format!("  (* reference: {ref_label}; TT = turnaround, cycles)\n");
    s
}

// ---------------------------------------------------------------------
// Extension — deadline- and SLA-aware preemption
// ---------------------------------------------------------------------

/// The slack factor the deadline scenario grants its premium tenant:
/// the deadline is `slack ×` the tenant's isolated time, measured from
/// the episode start. Matches the default `accelos-deadline` policy
/// (`DeadlinePolicy::default()`), so the policy plans against exactly the
/// deadline the scenario scores.
pub const DEADLINE_SLACK: f64 = 2.0;

/// One policy's outcome in the deadline arrival scenario.
#[derive(Debug, Clone)]
pub struct DeadlineRow {
    /// Policy label.
    pub policy: String,
    /// Completion time of the deadlined tenant (absolute, episode
    /// cycles — compared against the deadline).
    pub premium_end: u64,
    /// Turnaround of the deadlined tenant (arrival → completion).
    pub premium_turnaround: u64,
    /// Whether the tenant finished by the deadline.
    pub met: bool,
    /// Reclaim commands applied across all launches.
    pub preemptions: usize,
    /// Workers retired early at chunk boundaries.
    pub reclaimed_workers: usize,
    /// Full pauses (0-worker reclaims) across all launches.
    pub pauses: usize,
    /// Resume commands fired across all launches.
    pub resumes: usize,
}

/// One full deadline episode: the deadline, the tenant's arrival time,
/// and one row per swept policy.
#[derive(Debug, Clone)]
pub struct DeadlineScenario {
    /// Absolute deadline of the premium tenant (episode cycles).
    pub deadline: u64,
    /// Device time the premium tenant arrived.
    pub arrival: u64,
    /// Per-policy outcomes, in set order.
    pub rows: Vec<DeadlineRow>,
}

/// Extension experiment (ROADMAP "deadline-aware shares"): the same
/// mixed-priority episode as [`priority_preemption`] — two batch tenants
/// at t=0, the premium tenant joining a quarter into the first batch
/// tenant's run — but scored against a **deadline** of
/// [`DEADLINE_SLACK`] `×` the premium tenant's isolated time (measured
/// from the episode start, the tenant's submission instant). Queueing
/// `accelos` misses it; `accelos-priority` meets it by flooring every
/// victim; `accelos-deadline` meets it too while reclaiming strictly
/// fewer workers, because the deadline needs only part of the machine.
pub fn deadline_scenario(runner: &Runner, set: &PolicySet, seed: u64) -> DeadlineScenario {
    let workload = priority_workload();
    // The episode (arrival time, deadline) is fixed by accelOS isolated
    // times — independent of the swept set, and numerically identical to
    // the estimate `accelos-deadline` plans against (single-kernel plans
    // are the same equal-share allocation), so the scored deadline and
    // the planned deadline never diverge under a custom `--policies`
    // list.
    let accelos = accelos::policy::AccelOsPolicy::optimized();
    let t_batch = runner.isolated_time(&accelos, workload[1], seed);
    let t_premium = runner.isolated_time(&accelos, workload[0], seed);
    let deadline = (DEADLINE_SLACK * t_premium as f64).round() as u64;
    let arrival = t_batch / 4;
    let arrivals: Vec<u64> = vec![arrival, 0, 0];
    let ctx = runner.rep_context(&workload, seed);
    let rows = set
        .iter()
        .map(|policy| {
            let report = runner.preemptive_report(&ctx, policy.as_ref(), &arrivals);
            DeadlineRow {
                policy: policy.label().to_string(),
                premium_end: report.kernels[0].end,
                premium_turnaround: report.kernels[0].turnaround(),
                met: report.kernels[0].end <= deadline,
                preemptions: report.kernels.iter().map(|k| k.preemptions).sum(),
                reclaimed_workers: report.kernels.iter().map(|k| k.reclaimed_workers).sum(),
                pauses: report.kernels.iter().map(|k| k.pauses).sum(),
                resumes: report.kernels.iter().map(|k| k.resumes).sum(),
            }
        })
        .collect();
    DeadlineScenario {
        deadline,
        arrival,
        rows,
    }
}

/// The **hold rate** of each policy: the fraction of `seeds` (different
/// calibrated cost draws of the same episode) whose deadline held. The
/// per-seed scenario is [`deadline_scenario`]; episodes fan out across
/// the rayon pool.
pub fn deadline_hold_rates(runner: &Runner, set: &PolicySet, seeds: &[u64]) -> Vec<(String, f64)> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let met: Vec<Vec<bool>> = seeds
        .par_iter()
        .map(|&s| {
            deadline_scenario(runner, set, s)
                .rows
                .iter()
                .map(|r| r.met)
                .collect()
        })
        .collect();
    set.labels()
        .into_iter()
        .enumerate()
        .map(|(i, label)| {
            let held = met.iter().filter(|m| m[i]).count();
            (label, held as f64 / seeds.len() as f64)
        })
        .collect()
}

/// Render a deadline scenario plus hold rates (from
/// [`deadline_hold_rates`], typically over more seeds than the rendered
/// episode).
pub fn render_deadline(
    scenario: &DeadlineScenario,
    hold_rates: &[(String, f64)],
    device: &str,
) -> String {
    let mut s = format!(
        "Extension — deadline-aware preemption (premium arrives at t={}, deadline {}), {device}\n",
        scenario.arrival, scenario.deadline
    );
    s += &format!(
        "  {:<17} {:>12} {:>9} {:>9} {:>10} {:>7} {:>8} {:>9}\n",
        "policy",
        "premium end",
        "deadline",
        "preempt.",
        "reclaimed",
        "pauses",
        "resumes",
        "hold rate"
    );
    for (row, (label, rate)) in scenario.rows.iter().zip(hold_rates) {
        debug_assert_eq!(&row.policy, label);
        s += &format!(
            "  {:<17} {:>12} {:>9} {:>9} {:>10} {:>7} {:>8} {:>8.0}%\n",
            row.policy,
            row.premium_end,
            if row.met { "met" } else { "MISSED" },
            row.preemptions,
            row.reclaimed_workers,
            row.pauses,
            row.resumes,
            rate * 100.0
        );
    }
    s += "  (deadline = 2x the premium tenant's isolated time, from episode start;\n   hold rate = fraction of cost-draw seeds whose deadline held)\n";
    s
}

// ---------------------------------------------------------------------
// Extension — fault injection and recovery
// ---------------------------------------------------------------------

/// CU-failure counts swept by the `faults` scenario. Each count draws
/// that many repairable CU failures (plus half as many straggler
/// windows) over the clean episode's horizon; 0 is the control cell that
/// must reproduce the fault-free episode bit-for-bit.
pub const FAULT_COUNTS: [usize; 4] = [0, 1, 2, 4];

/// One `(policy, fault count)` cell of the fault sweep.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// CU failures requested from the draw.
    pub cu_failures: usize,
    /// Faults the simulator actually injected (failures + stragglers).
    pub faults_injected: usize,
    /// Episode makespan under the plan.
    pub makespan: u64,
    /// `makespan / clean makespan` for the same policy
    /// ([`sched_metrics::fault_degradation`]).
    pub degradation: f64,
    /// Turnaround of the premium tenant under the plan.
    pub premium_turnaround: u64,
    /// In-flight virtual groups lost across all launches.
    pub chunks_lost: usize,
    /// Virtual groups re-executed after a fault lost their first run.
    pub groups_retried: usize,
    /// First fault → episode completion
    /// ([`sched_metrics::recovery_latency`]; 0 in the control cell).
    pub recovery_latency: u64,
    /// The exactly-once retry witness: every lost group re-executed
    /// (`groups_retried == chunks_lost`) and no launch aborted.
    pub conserved: bool,
}

/// One policy's degradation curve across the swept fault counts.
#[derive(Debug, Clone)]
pub struct FaultPolicyRow {
    /// Policy label.
    pub policy: String,
    /// One cell per entry of [`FAULT_COUNTS`], in order.
    pub cells: Vec<FaultCell>,
}

/// One full fault sweep: the horizon faults were drawn over, and one
/// curve per swept policy.
#[derive(Debug, Clone)]
pub struct FaultScenario {
    /// Fault times were drawn uniformly from `[0, horizon)` — the
    /// reference policy's clean episode length.
    pub horizon: u64,
    /// Per-policy curves, in set order.
    pub rows: Vec<FaultPolicyRow>,
}

/// Extension experiment (ROADMAP "fault-injection plane"): the
/// mixed-priority episode of [`priority_preemption`] re-run under
/// increasingly faulty machines. For each count of [`FAULT_COUNTS`] a
/// [`FaultPlan`] is drawn once — repairable CU failures plus straggler
/// windows, seeded, identical for every policy — then every policy of
/// `set` replans around the rehearsed capacity losses
/// ([`accelos::policy::SchedulingPolicy::on_fault`]) and runs the episode with the
/// faults injected. Work is conserved by construction (no aborts are
/// drawn): every cell's `conserved` witness checks that each lost
/// in-flight group re-executed exactly once, and the zero-fault control
/// cell is bit-identical to the fault-free episode.
pub fn fault_scenario(runner: &Runner, set: &PolicySet, seed: u64) -> FaultScenario {
    let workload = priority_workload();
    // Episode shape (arrival, horizon) is fixed by the accelOS reference,
    // like the deadline scenario: independent of the swept set, so two
    // `--policies` lists see the same machine failing at the same times.
    let accelos = accelos::policy::AccelOsPolicy::optimized();
    let t_batch = runner.isolated_time(&accelos, workload[1], seed);
    let arrivals: Vec<u64> = vec![t_batch / 4, 0, 0];
    let ctx = runner.rep_context(&workload, seed);
    let horizon = runner
        .preemptive_report(&ctx, &accelos, &arrivals)
        .total_time()
        .max(1);
    let num_cus = runner.device().num_cus;
    let plans: Vec<FaultPlan> = FAULT_COUNTS
        .iter()
        .map(|&n| {
            let spec = FaultSpec {
                horizon,
                cu_failures: n,
                // Repairable at a quarter-episode: capacity degrades, the
                // machine never shrinks permanently.
                repair_delay: Some(horizon / 4),
                stragglers: n / 2,
                slowdown: 3.0,
                straggler_window: horizon / 8,
                aborts: 0,
                domain_failures: 0,
                domain_repair_delay: None,
            };
            FaultPlan::from_spec(&spec, num_cus, workload.len(), seed.wrapping_add(n as u64))
        })
        .collect();
    let rows = set
        .iter()
        .map(|policy| {
            let clean = runner
                .preemptive_report(&ctx, policy.as_ref(), &arrivals)
                .total_time()
                .max(1);
            let cells = FAULT_COUNTS
                .iter()
                .zip(&plans)
                .map(|(&n, plan)| {
                    let report = runner.faulty_report(&ctx, policy.as_ref(), &arrivals, plan);
                    let makespan = report.total_time();
                    let first_fault = plan.events.first().map(|e| e.at);
                    let lost: usize = report.kernels.iter().map(|k| k.chunks_lost).sum();
                    let retried: usize = report.kernels.iter().map(|k| k.groups_retried).sum();
                    FaultCell {
                        cu_failures: n,
                        faults_injected: report.faults_injected,
                        makespan,
                        degradation: sched_metrics::fault_degradation(clean, makespan),
                        premium_turnaround: report.kernels[0].turnaround(),
                        chunks_lost: lost,
                        groups_retried: retried,
                        recovery_latency: first_fault
                            .map(|at| sched_metrics::recovery_latency(at, makespan))
                            .unwrap_or(0),
                        conserved: retried == lost && report.kernels.iter().all(|k| !k.aborted),
                    }
                })
                .collect();
            FaultPolicyRow {
                policy: policy.label().to_string(),
                cells,
            }
        })
        .collect();
    FaultScenario { horizon, rows }
}

/// Render the fault sweep: one line per `(policy, fault count)` cell.
pub fn render_fault_scenario(scenario: &FaultScenario, device: &str) -> String {
    let mut s = format!(
        "Extension — fault injection and recovery (repairable CU failures + stragglers drawn over {} cycles), {device}\n",
        scenario.horizon
    );
    s += &format!(
        "  {:<17} {:>6} {:>9} {:>10} {:>8} {:>12} {:>6} {:>8} {:>9} {:>10}\n",
        "policy",
        "drawn",
        "injected",
        "makespan",
        "degrad.",
        "premium TT",
        "lost",
        "retried",
        "recovery",
        "conserved"
    );
    for row in &scenario.rows {
        for c in &row.cells {
            s += &format!(
                "  {:<17} {:>6} {:>9} {:>10} {:>7.2}x {:>12} {:>6} {:>8} {:>9} {:>10}\n",
                row.policy,
                c.cu_failures,
                c.faults_injected,
                c.makespan,
                c.degradation,
                c.premium_turnaround,
                c.chunks_lost,
                c.groups_retried,
                if c.recovery_latency == 0 {
                    "-".to_string()
                } else {
                    c.recovery_latency.to_string()
                },
                if c.conserved { "yes" } else { "NO" }
            );
        }
    }
    s += "  (drawn = requested CU failures; lost/retried = in-flight groups rolled back\n   and re-executed; conserved = every lost group re-ran exactly once)\n";
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::SweepConfig;

    #[test]
    fn fig2_shapes_match_the_paper() {
        let runner = Runner::new(DeviceConfig::k20m());
        let f = fig2(&runner, 1);
        // Baseline slows later arrivals more (fig. 2a): tpacf (last) worse
        // than bfs (first).
        assert!(
            f.baseline_slowdowns[3] > f.baseline_slowdowns[0],
            "baseline: {:?}",
            f.baseline_slowdowns
        );
        // accelOS is substantially fairer (paper: 5.79x).
        assert!(
            f.unfairness.0 / f.unfairness.2 > 2.0,
            "unfairness {:?}",
            f.unfairness
        );
        // accelOS improves throughput (paper: 1.31x).
        assert!(f.speedup.1 > 1.0, "accelOS speedup {:.2}", f.speedup.1);
        let _rendered = f.to_string();
    }

    #[test]
    fn tiny_sweep_reproduces_orderings() {
        let runner = Runner::new(DeviceConfig::k20m());
        let cfg = SweepConfig::test_scale();
        let set = PolicySet::paper();
        let sw = sweep(&runner, &set, &cfg, 4);
        let baseline = sw.index_of("baseline").expect("paper set has baseline");
        let accelos = sw.index_of("accelos").expect("paper set has accelos");
        let u = sw.avg_unfairness();
        // accelOS is fairer than baseline on average.
        assert!(u[accelos] < u[baseline], "unfairness {u:?}");
        // accelOS overlaps more than baseline.
        let o = sw.avg_overlap();
        assert!(o[accelos] > o[baseline]);
        // Renderers do not panic.
        let ds = DeviceSweeps {
            sizes: vec![sw],
            reference: 0,
        };
        let _ = ds.fig9();
        let _ = ds.fig10();
        let _ = ds.fig12();
        let _ = ds.fig13();
        let _ = ds.fig14();
        let _ = ds.table_stp_antt();
    }

    #[test]
    fn extended_policy_set_sweeps_through_the_same_api() {
        // The acceptance scenario: a sweep over a set with *no* paper
        // scheme but the two extensions, entirely through the trait API.
        let runner = Runner::new(DeviceConfig::k20m());
        let cfg = SweepConfig {
            pairs: 6,
            n4: 3,
            n8: 2,
            reps: 1,
            seed: 2016,
        };
        let set = PolicySet::parse("accelos,accelos-guided,accelos-weighted:3:1").unwrap();
        let sw = sweep(&runner, &set, &cfg, 2);
        assert_eq!(sw.policy_count(), 3);
        assert_eq!(sw.workloads.len(), 6);
        // Ratios are relative to the first policy of the set (accelos).
        for w in &sw.workloads {
            assert!((w.fairness_improvement(0) - 1.0).abs() < 1e-12);
            assert!((w.throughput_speedup(0) - 1.0).abs() < 1e-12);
        }
        let ds = DeviceSweeps {
            sizes: vec![sw.clone(), sw.clone(), sw.clone()],
            reference: 0,
        };
        let rendered = ds.fig9() + &ds.fig10() + &ds.fig13() + &ds.table_stp_antt();
        assert!(rendered.contains("accelOS-guided"));
        assert!(rendered.contains("accelos-weighted:3:1"));
        // The reference row renders explicitly, marked and at 1.00x.
        assert!(rendered.contains("accelOS*"));
        assert!(ds.fig13().contains("1.00x"));
        // --reference switches the denominator without reordering the set.
        let re = DeviceSweeps {
            sizes: vec![sw],
            reference: 1,
        };
        let r10 = re.fig10();
        assert!(r10.contains("over accelOS-guided"));
        assert!(r10.contains("accelOS-guided*"));
        let w = &re.sizes[0].workloads[0];
        assert!((w.fairness_improvement_over(1, 1) - 1.0).abs() < 1e-12);
        assert!((w.throughput_speedup_over(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig11_pairs_render() {
        let runner = Runner::new(DeviceConfig::k20m());
        let rows = fig11(&runner, 3);
        assert_eq!(rows.len(), 13);
        let rendered = render_fig11(&rows, "K20m");
        assert!(rendered.contains("bfs + cutcp"));
    }

    #[test]
    fn fig15_geomean_shows_optimized_gain() {
        let runner = Runner::new(DeviceConfig::k20m());
        let rows = fig15(&runner, 5);
        assert_eq!(rows.len(), 25);
        let g_opt = geomean(&rows.iter().map(|r| r.optimized).collect::<Vec<_>>());
        let g_naive = geomean(&rows.iter().map(|r| r.naive).collect::<Vec<_>>());
        assert!(
            g_opt > g_naive,
            "optimized {g_opt:.3} vs naive {g_naive:.3}"
        );
        assert!(g_opt > 1.0, "optimized should be a net win: {g_opt:.3}");
        assert!(
            g_naive > 0.85,
            "naive should be a small loss at worst: {g_naive:.3}"
        );
        let _ = render_fig15(&rows, "K20m");
    }

    #[test]
    fn small_kernels_stay_close_to_baseline() {
        let rows = small_kernels(&DeviceConfig::k20m(), 7);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(
                r.rel_diff.abs() < 0.15,
                "{} with {} WGs diverged {:.1}%",
                r.name,
                r.wgs,
                r.rel_diff * 100.0
            );
        }
        let _ = render_small_kernels(&rows, "K20m");
    }

    #[test]
    fn dynamic_tenancy_favors_accelos() {
        let runner = Runner::new(DeviceConfig::k20m());
        let rows = dynamic_tenancy(&runner, &PolicySet::paper(), 5);
        assert_eq!(rows.len(), 4);
        let by = |label: &str| rows.iter().find(|r| r.policy == label).expect("row");
        let base = by("OpenCL");
        let acc = by("accelOS");
        assert!(
            acc.unfairness < base.unfairness,
            "accelOS {:.2} vs baseline {:.2}",
            acc.unfairness,
            base.unfairness
        );
        assert!(
            acc.total_time < base.total_time,
            "accelOS should also finish the episode sooner"
        );
        let _ = render_dynamic_tenancy(&rows, 0, "K20m");
    }

    #[test]
    fn priority_preemption_scenario_rewards_the_premium_tenant() {
        let runner = Runner::new(DeviceConfig::k20m());
        let set = PolicySet::parse("accelos,accelos-priority").unwrap();
        let rows = priority_preemption(&runner, &set, 2016);
        assert_eq!(rows.len(), 2);
        let queueing = &rows[0];
        let preempting = &rows[1];
        // The acceptance bar: ≥1.5x premium turnaround improvement over
        // no-preemption accelOS on the same staggered episode.
        let gain = queueing.premium_turnaround as f64 / preempting.premium_turnaround as f64;
        assert!(gain >= 1.5, "premium gain {gain:.2}x");
        // Preemption really happened — and only under the priority policy.
        assert_eq!(queueing.preemptions, 0);
        assert_eq!(preempting.preemptions, 2, "one reclaim per batch tenant");
        assert!(preempting.reclaimed_workers > 0);
        let rendered = render_priority_preemption(&rows, 0, "K20m");
        assert!(rendered.contains("accelOS-priority"));
        assert!(rendered.contains("accelOS*"));
    }

    #[test]
    fn deadline_scenario_rewards_partial_reclamation() {
        let runner = Runner::new(DeviceConfig::k20m());
        let set = PolicySet::parse("accelos,accelos-priority,accelos-deadline").unwrap();
        let sc = deadline_scenario(&runner, &set, 2016);
        let queueing = &sc.rows[0];
        let priority = &sc.rows[1];
        let deadline = &sc.rows[2];
        assert!(!queueing.met, "queueing accelOS must miss the deadline");
        assert!(priority.met && deadline.met, "both preemptors must hold it");
        assert!(
            deadline.reclaimed_workers < priority.reclaimed_workers,
            "just-enough reclamation must take strictly fewer workers: {} vs {}",
            deadline.reclaimed_workers,
            priority.reclaimed_workers
        );
        let rates = deadline_hold_rates(&runner, &set, &[2016, 7, 99]);
        assert_eq!(rates.len(), 3);
        assert!(rates.iter().all(|(_, r)| (0.0..=1.0).contains(r)));
        let rendered = render_deadline(&sc, &rates, "K20m");
        assert!(rendered.contains("MISSED"));
        assert!(rendered.contains("accelOS-deadline"));
    }

    #[test]
    fn sla_pause_resumes_in_the_deadline_scenario() {
        let runner = Runner::new(DeviceConfig::k20m());
        // Floor 0 for the batch tenants: both are fully paused on the
        // premium arrival and resumed at its retirement.
        let set = PolicySet::parse("accelos,accelos-sla:4:0:0").unwrap();
        let sc = deadline_scenario(&runner, &set, 2016);
        let sla = &sc.rows[1];
        assert_eq!(sla.pauses, 2, "both batch tenants fully pause");
        assert_eq!(sla.resumes, 2, "and both resume on the premium retirement");
        assert!(sla.reclaimed_workers > 0);
    }

    #[test]
    fn chunking_helps_short_kernels_and_not_long_ones() {
        let rows = chunk_ablation(&DeviceConfig::k20m(), 9);
        // Short-regime uniformAdd with chunk 8 must clearly beat chunk 1
        // (the atomic dequeue chain binds otherwise).
        let ua8 = rows
            .iter()
            .find(|r| r.name == "mri-gridding_uniformAdd" && r.chunk == 8 && r.short_variant)
            .expect("row exists");
        assert!(
            ua8.speedup_vs_chunk1 > 1.2,
            "chunking gain {:.2}",
            ua8.speedup_vs_chunk1
        );
        // Normal-regime sgemm must NOT benefit from coarse chunking — this
        // asymmetry is why §6.4 adapts on instruction count.
        let sg8 = rows
            .iter()
            .find(|r| r.name == "sgemm" && r.chunk == 8 && !r.short_variant)
            .expect("row exists");
        assert!(
            sg8.speedup_vs_chunk1 < 1.05,
            "sgemm chunking {:.2}",
            sg8.speedup_vs_chunk1
        );
        // The guided extension must recover most of the fixed-chunk win in
        // the short regime without the fixed policy's normal-regime loss.
        let ua_guided = rows
            .iter()
            .find(|r| r.name == "mri-gridding_uniformAdd" && r.chunk == 0 && r.short_variant)
            .expect("row exists");
        assert!(
            ua_guided.speedup_vs_chunk1 > 1.5,
            "guided gain {:.2}",
            ua_guided.speedup_vs_chunk1
        );
        let sg_guided = rows
            .iter()
            .find(|r| r.name == "sgemm" && r.chunk == 0 && !r.short_variant)
            .expect("row exists");
        assert!(
            sg_guided.speedup_vs_chunk1 > 0.9,
            "guided avoids the coarse-chunk loss: {:.2}",
            sg_guided.speedup_vs_chunk1
        );
        let _ = render_ablation(&rows, "K20m");
    }

    #[test]
    fn fault_scenario_conserves_work_across_policies() {
        let runner = Runner::new(DeviceConfig::k20m());
        let set = PolicySet::parse("accelos,accelos-priority").unwrap();
        let sc = fault_scenario(&runner, &set, 2016);
        assert_eq!(sc.rows.len(), 2);
        for row in &sc.rows {
            assert_eq!(row.cells.len(), FAULT_COUNTS.len());
            let control = &row.cells[0];
            // The zero-fault control cell reproduces the clean episode.
            assert_eq!(control.faults_injected, 0, "{}", row.policy);
            assert!((control.degradation - 1.0).abs() < 1e-12, "{}", row.policy);
            assert_eq!(control.chunks_lost, 0);
            assert_eq!(control.recovery_latency, 0);
            for c in &row.cells {
                // The acceptance bar: every policy survives every drawn
                // CU failure with zero lost work-groups.
                assert!(
                    c.conserved,
                    "{} with {} failures: lost {} vs retried {}",
                    row.policy, c.cu_failures, c.chunks_lost, c.groups_retried
                );
            }
            // The heaviest cell really degrades something observable.
            let worst = row.cells.last().unwrap();
            assert!(worst.faults_injected > 0, "{}", row.policy);
        }
        // Determinism: the sweep is a pure function of (set, seed).
        let again = fault_scenario(&runner, &set, 2016);
        for (a, b) in sc.rows.iter().zip(&again.rows) {
            for (ca, cb) in a.cells.iter().zip(&b.cells) {
                assert_eq!(ca.makespan, cb.makespan);
                assert_eq!(ca.groups_retried, cb.groups_retried);
            }
        }
        let rendered = render_fault_scenario(&sc, "K20m");
        assert!(rendered.contains("conserved"));
        assert!(rendered.contains("accelOS-priority"));
    }
}
