//! Workload generation (paper §7.2).
//!
//! The paper evaluates all 625 pairwise combinations of the 25 Parboil
//! kernels, 16384 random 4-kernel combinations (of the 25⁴ ordered
//! combinations) and 32768 random 8-kernel combinations. The same
//! generators live here, with sample counts as parameters so tests can run
//! tiny sweeps and `--full` can run the paper-sized ones.

use parboil::KernelSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A multi-kernel workload: kernels launched concurrently, in arrival
/// order.
pub type Workload = Vec<&'static KernelSpec>;

/// All 25×25 ordered pairwise combinations (the paper's 625).
pub fn all_pairs() -> Vec<Workload> {
    let specs = KernelSpec::all();
    let mut out = Vec::with_capacity(specs.len() * specs.len());
    for a in specs {
        for b in specs {
            out.push(vec![a, b]);
        }
    }
    out
}

/// The 13 alphabetic-neighbour pairs of fig. 11 (`bfs`+`cutcp`,
/// `histo_final`+`histo_intermediates`, …; the 25th kernel pairs with the
/// first to keep 13 rows, mirroring the paper's 13 bars for 25 kernels).
pub fn alphabetic_pairs() -> Vec<Workload> {
    let specs = KernelSpec::all();
    let mut out: Vec<Workload> = specs
        .chunks(2)
        .filter(|c| c.len() == 2)
        .map(|c| vec![&c[0], &c[1]])
        .collect();
    out.push(vec![&specs[24], &specs[0]]);
    out
}

/// `count` seeded uniform random `k`-kernel workloads (ordered, with
/// replacement, like the paper's 25⁴ / 25⁸ combination spaces).
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn random_combinations(k: usize, count: usize, seed: u64) -> Vec<Workload> {
    assert!(k > 0, "workloads need at least one kernel");
    let specs = KernelSpec::all();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..k)
                .map(|_| &specs[rng.random_range(0..specs.len())])
                .collect()
        })
        .collect()
}

/// Sweep sizes: how many workloads each request size evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Pairwise workloads (max 625; the paper uses all of them).
    pub pairs: usize,
    /// Random 4-kernel workloads (paper: 16384).
    pub n4: usize,
    /// Random 8-kernel workloads (paper: 32768).
    pub n8: usize,
    /// Repetitions per workload (paper: 20; deterministic simulation makes
    /// repetitions vary only through cost-sampling seeds).
    pub reps: u32,
    /// Base RNG seed.
    pub seed: u64,
}

impl SweepConfig {
    /// The paper-sized sweep (625 / 16384 / 32768 / 20 reps).
    pub fn full() -> Self {
        SweepConfig {
            pairs: 625,
            n4: 16384,
            n8: 32768,
            reps: 20,
            seed: 2016,
        }
    }

    /// A laptop-scale default that keeps every distribution's shape
    /// (625 pairs, 256 each of 4- and 8-kernel workloads, 3 reps).
    pub fn default_scale() -> Self {
        SweepConfig {
            pairs: 625,
            n4: 256,
            n8: 256,
            reps: 3,
            seed: 2016,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn test_scale() -> Self {
        SweepConfig {
            pairs: 12,
            n4: 6,
            n8: 4,
            reps: 1,
            seed: 2016,
        }
    }

    /// The workloads of one request size (2, 4 or 8).
    ///
    /// # Panics
    ///
    /// Panics on request sizes other than 2, 4 or 8.
    pub fn workloads(&self, request_size: usize) -> Vec<Workload> {
        match request_size {
            2 => {
                let mut p = all_pairs();
                p.truncate(self.pairs);
                p
            }
            4 => random_combinations(4, self.n4, self.seed ^ 0x4444),
            8 => random_combinations(8, self.n8, self.seed ^ 0x8888),
            other => panic!("the paper evaluates 2, 4 and 8 requests, not {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_cover_the_square() {
        let p = all_pairs();
        assert_eq!(p.len(), 625);
        assert!(p.iter().all(|w| w.len() == 2));
        // First row pairs kernel 0 with every kernel.
        assert!(p[..25]
            .iter()
            .all(|w| w[0].name == KernelSpec::all()[0].name));
    }

    #[test]
    fn alphabetic_pairs_match_fig11() {
        let p = alphabetic_pairs();
        assert_eq!(p.len(), 13);
        assert_eq!(p[0][0].name, "bfs");
        assert_eq!(p[0][1].name, "cutcp");
        assert_eq!(p[1][0].name, "histo_final");
        assert_eq!(p[1][1].name, "histo_intermediates");
    }

    #[test]
    fn random_combinations_are_seeded() {
        let a = random_combinations(4, 10, 1);
        let b = random_combinations(4, 10, 1);
        let names = |w: &[Workload]| -> Vec<Vec<&str>> {
            w.iter()
                .map(|v| v.iter().map(|s| s.name).collect())
                .collect()
        };
        assert_eq!(names(&a), names(&b));
        let c = random_combinations(4, 10, 2);
        assert_ne!(names(&a), names(&c));
        assert!(a.iter().all(|w| w.len() == 4));
    }

    #[test]
    fn sweep_config_sizes() {
        let full = SweepConfig::full();
        assert_eq!(full.workloads(2).len(), 625);
        assert_eq!(full.workloads(4).len(), 16384);
        let test = SweepConfig::test_scale();
        assert_eq!(test.workloads(8).len(), 4);
    }

    #[test]
    #[should_panic(expected = "2, 4 and 8")]
    fn odd_request_sizes_rejected() {
        let _ = SweepConfig::test_scale().workloads(3);
    }
}
