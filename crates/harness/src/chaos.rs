//! Chaos soak harness (ROADMAP "fault-plane follow-ons"): the
//! mixed-priority episode swept across **fault-intensity mixes** —
//! independent CU failures × correlated domain failures × kernel aborts,
//! all drawn from one seeded [`FaultSpec`] per cell — with the fault
//! plane's standing invariants *asserted at every cell*, not just
//! rendered:
//!
//! * **exactly-once retry** — every chunk a failure knocked out of a
//!   surviving kernel is retried exactly once
//!   (`chunks_lost == groups_retried` per kernel);
//! * **work conservation** — every surviving kernel executes its plan's
//!   total group count, no more, no less, no matter how many CUs or
//!   whole domains died under it;
//! * **no double-booking** — replaying the trace, no CU ever exceeds its
//!   thread or slot budget and nothing is double-freed;
//! * **every pause resumed** — a paused victim is always woken, even
//!   when the pressuring tenant aborts instead of retiring.
//!
//! The sweep renders degradation and recovery-latency curves per policy
//! (`repro chaos`); [`ChaosGrid::smoke`] is the CI-sized grid.

use crate::experiments::priority_workload;
use crate::runner::Runner;
use accelos::policy::{FaultSchedule, PolicySet};
use gpu_sim::{
    DeviceConfig, FailureDomain, FaultPlan, FaultSpec, KernelLaunch, SimReport, Simulator,
    TraceKind,
};

/// How many failure domains the chaos sweep partitions the device into.
/// Four domains on the 13-CU K20m preset makes the largest domain 4 CUs
/// — over a quarter of the fleet, which is exactly the correlated-loss
/// severity the policy plane's exemption coherence rule is about.
pub const CHAOS_DOMAINS: usize = 4;

/// The fault-intensity grid one chaos sweep covers: the cross product of
/// independent CU-failure counts, correlated domain-failure counts, and
/// kernel-abort counts.
#[derive(Debug, Clone)]
pub struct ChaosGrid {
    /// Independent (repairable) CU failure counts to draw.
    pub independent: Vec<usize>,
    /// Correlated (permanent) domain failure counts to draw.
    pub correlated: Vec<usize>,
    /// Kernel abort counts to draw.
    pub aborts: Vec<usize>,
}

impl ChaosGrid {
    /// The full sweep: 24 cells per policy.
    pub fn full() -> Self {
        ChaosGrid {
            independent: vec![0, 1, 2, 4],
            correlated: vec![0, 1, 2],
            aborts: vec![0, 1],
        }
    }

    /// The CI smoke grid: 8 cells per policy, still covering every axis
    /// (including the ≥25%-fleet correlated loss) and the zero-fault
    /// control cell.
    pub fn smoke() -> Self {
        ChaosGrid {
            independent: vec![0, 2],
            correlated: vec![0, 1],
            aborts: vec![0, 1],
        }
    }

    /// Cells in grid order (independent outermost, aborts innermost).
    pub fn cells(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for &i in &self.independent {
            for &c in &self.correlated {
                for &a in &self.aborts {
                    out.push((i, c, a));
                }
            }
        }
        out
    }
}

/// One `(policy, fault mix)` cell of the chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Independent CU failures drawn.
    pub independent: usize,
    /// Correlated domain failures drawn.
    pub correlated: usize,
    /// Kernel aborts drawn.
    pub aborts: usize,
    /// Faults the simulator actually injected.
    pub faults_injected: usize,
    /// Episode makespan under this mix.
    pub makespan: u64,
    /// Makespan inflation over the fault-free episode
    /// ([`sched_metrics::fault_degradation`]).
    pub degradation: f64,
    /// First fault to end of episode
    /// ([`sched_metrics::recovery_latency`]; 0 in the control cell).
    pub recovery_latency: u64,
    /// In-flight chunks knocked out by failures, summed over kernels.
    pub chunks_lost: usize,
    /// Groups re-executed through retry queues, summed over kernels.
    pub groups_retried: usize,
    /// Tenants killed by aborts (their lost work is gone with them).
    pub aborted_tenants: usize,
}

/// One policy's row: a [`ChaosCell`] per grid cell, in grid order.
#[derive(Debug, Clone)]
pub struct ChaosPolicyRow {
    /// Policy display label.
    pub policy: String,
    /// One cell per entry of [`ChaosGrid::cells`], in order.
    pub cells: Vec<ChaosCell>,
}

/// The swept chaos scenario.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Fault-draw horizon (cycles) shared by every cell.
    pub horizon: u64,
    /// The failure-domain partition used ([`CHAOS_DOMAINS`] domains).
    pub domains: Vec<FailureDomain>,
    /// One row per policy of the swept set.
    pub rows: Vec<ChaosPolicyRow>,
}

/// Replay the traced report against the device budget: per-CU threads
/// and slots never exceed capacity and never go negative. Panics on the
/// first violation — this is the sweep's no-double-booking assertion.
fn assert_no_double_booking(
    cfg: &DeviceConfig,
    launches: &[KernelLaunch],
    report: &SimReport,
    cell: (usize, usize, usize),
) {
    let mut threads = vec![0i64; cfg.num_cus];
    let mut slots = vec![0i64; cfg.num_cus];
    for ev in &report.trace {
        let wg_threads = launches[ev.launch.0 as usize].req.threads as i64;
        match ev.kind {
            TraceKind::WgStart => {
                threads[ev.cu] += wg_threads;
                slots[ev.cu] += 1;
                assert!(
                    threads[ev.cu] <= cfg.threads_per_cu as i64
                        && slots[ev.cu] <= cfg.wg_slots_per_cu as i64,
                    "chaos cell {cell:?}: cu {} overbooked at t={}",
                    ev.cu,
                    ev.time
                );
            }
            TraceKind::WgEnd => {
                threads[ev.cu] -= wg_threads;
                slots[ev.cu] -= 1;
                assert!(
                    threads[ev.cu] >= 0 && slots[ev.cu] >= 0,
                    "chaos cell {cell:?}: cu {} double-freed at t={}",
                    ev.cu,
                    ev.time
                );
            }
            _ => {}
        }
    }
}

/// Run the chaos soak: every policy of `set` runs the mixed-priority
/// episode under every fault mix of `grid`, with the standing fault-plane
/// invariants asserted at each cell (see the module docs). The episode
/// shape, the domain partition and each cell's seeded [`FaultPlan`] are
/// independent of the swept set, so two `--policies` lists see the same
/// machine failing the same way at the same times.
///
/// # Panics
///
/// Panics if any cell violates an invariant — a chaos run that *returns*
/// has proven exactly-once recovery across the whole grid.
pub fn chaos_soak(runner: &Runner, set: &PolicySet, grid: &ChaosGrid, seed: u64) -> ChaosScenario {
    let workload = priority_workload();
    let accelos = accelos::policy::AccelOsPolicy::optimized();
    let t_batch = runner.isolated_time(&accelos, workload[1], seed);
    let arrivals: Vec<u64> = vec![t_batch / 4, 0, 0];
    let ctx = runner.rep_context(&workload, seed);
    let horizon = runner
        .preemptive_report(&ctx, &accelos, &arrivals)
        .total_time()
        .max(1);
    let num_cus = runner.device().num_cus;
    let domains = FailureDomain::split_evenly(num_cus, CHAOS_DOMAINS);

    // One seeded plan per cell, shared by every policy's row.
    let cells = grid.cells();
    let plans: Vec<FaultPlan> = cells
        .iter()
        .enumerate()
        .map(|(n, &(ind, cor, ab))| {
            let spec = FaultSpec {
                horizon,
                cu_failures: ind,
                // Independent failures are repairable transients...
                repair_delay: Some(horizon / 4),
                stragglers: ind / 2,
                slowdown: 3.0,
                straggler_window: horizon / 8,
                aborts: ab,
                // ...correlated domain losses are permanent: the policy
                // plane replans survivors around the missing capacity.
                domain_failures: cor,
                domain_repair_delay: None,
            };
            FaultPlan::from_spec_with_domains(
                &spec,
                num_cus,
                workload.len(),
                CHAOS_DOMAINS,
                seed.wrapping_add(n as u64),
            )
        })
        .collect();

    let rows = set
        .iter()
        .map(|policy| {
            let clean = runner
                .preemptive_report(&ctx, policy.as_ref(), &arrivals)
                .total_time()
                .max(1);
            let cells = cells
                .iter()
                .zip(&plans)
                .map(|(&(ind, cor, ab), plan)| {
                    let projected = FaultSchedule::from_fault_plan_with_domains(plan, &domains);
                    let (launches, reclaims, resumes) = runner.launches_preemptive_with_schedule(
                        &ctx,
                        policy.as_ref(),
                        &arrivals,
                        &projected,
                    );
                    let mut sim = Simulator::new(runner.device().clone())
                        .with_trace()
                        .with_domains(domains.clone());
                    for l in launches.iter().cloned() {
                        sim.add_launch(l);
                    }
                    for r in &reclaims {
                        sim.add_reclaim(*r);
                    }
                    for r in &resumes {
                        sim.add_resume(*r);
                    }
                    let report = sim.with_faults(plan.clone()).run();

                    let cell = (ind, cor, ab);
                    // The standing invariants, asserted per cell.
                    for (k, launch) in report.kernels.iter().zip(&launches) {
                        if k.aborted {
                            continue;
                        }
                        assert_eq!(
                            k.groups_retried, k.chunks_lost,
                            "chaos cell {cell:?}: kernel {} broke exactly-once retry",
                            k.name
                        );
                        assert_eq!(
                            k.groups_executed as u64,
                            launch.plan.total_groups(),
                            "chaos cell {cell:?}: kernel {} lost or duplicated work",
                            k.name
                        );
                        assert!(
                            k.pauses == 0 || k.resumes > 0,
                            "chaos cell {cell:?}: kernel {} paused but never resumed",
                            k.name
                        );
                    }
                    assert_no_double_booking(runner.device(), &launches, &report, cell);
                    if plan.events.is_empty() {
                        assert_eq!(
                            report.total_time(),
                            clean,
                            "chaos control cell must be bit-identical to the fault-free episode"
                        );
                    }

                    let first_fault = plan.events.first().map(|e| e.at);
                    let makespan = report.total_time();
                    ChaosCell {
                        independent: ind,
                        correlated: cor,
                        aborts: ab,
                        faults_injected: report.faults_injected,
                        makespan,
                        degradation: sched_metrics::fault_degradation(clean, makespan),
                        recovery_latency: first_fault
                            .map(|at| sched_metrics::recovery_latency(at, makespan))
                            .unwrap_or(0),
                        chunks_lost: report.kernels.iter().map(|k| k.chunks_lost).sum(),
                        groups_retried: report.kernels.iter().map(|k| k.groups_retried).sum(),
                        aborted_tenants: report.kernels.iter().filter(|k| k.aborted).count(),
                    }
                })
                .collect();
            ChaosPolicyRow {
                policy: policy.label().to_string(),
                cells,
            }
        })
        .collect();
    ChaosScenario {
        horizon,
        domains,
        rows,
    }
}

/// Render the chaos sweep: one line per `(policy, fault mix)` cell, with
/// the degradation and recovery-latency curves that summarise how each
/// policy rides out escalating chaos.
pub fn render_chaos(scenario: &ChaosScenario, device: &str) -> String {
    let mut s = format!(
        "Extension — chaos soak (independent × correlated × abort mixes over {} cycles, {} domains), {device}\n",
        scenario.horizon,
        scenario.domains.len()
    );
    s += &format!(
        "  {:<17} {:>3} {:>3} {:>3} {:>9} {:>10} {:>8} {:>6} {:>8} {:>7} {:>9}\n",
        "policy",
        "ind",
        "dom",
        "ab",
        "injected",
        "makespan",
        "degrad.",
        "lost",
        "retried",
        "aborted",
        "recovery"
    );
    for row in &scenario.rows {
        for c in &row.cells {
            s += &format!(
                "  {:<17} {:>3} {:>3} {:>3} {:>9} {:>10} {:>7.2}x {:>6} {:>8} {:>7} {:>9}\n",
                row.policy,
                c.independent,
                c.correlated,
                c.aborts,
                c.faults_injected,
                c.makespan,
                c.degradation,
                c.chunks_lost,
                c.groups_retried,
                c.aborted_tenants,
                if c.recovery_latency == 0 {
                    "-".to_string()
                } else {
                    c.recovery_latency.to_string()
                },
            );
        }
    }
    s += "  every cell passed exactly-once retry, work conservation, no-double-booking and pause-resume checks\n";
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_covers_every_axis_and_the_control_cell() {
        let grid = ChaosGrid::smoke();
        let cells = grid.cells();
        assert!(cells.contains(&(0, 0, 0)), "control cell missing");
        assert!(cells.iter().any(|&(i, _, _)| i > 0));
        assert!(cells.iter().any(|&(_, c, _)| c > 0));
        assert!(cells.iter().any(|&(_, _, a)| a > 0));
        assert_eq!(cells.len(), 8);
        assert_eq!(ChaosGrid::full().cells().len(), 24);
    }

    #[test]
    fn chaos_soak_smoke_holds_every_invariant() {
        // The driver asserts the invariants itself — a normal return is
        // the proof. Sweep the premium-exempting policies so domain
        // losses exercise the coherence rule too.
        let runner = Runner::new(DeviceConfig::k20m());
        let set = PolicySet::parse("accelos,accelos-priority,accelos-sla").unwrap();
        let scenario = chaos_soak(&runner, &set, &ChaosGrid::smoke(), 2016);
        assert_eq!(scenario.rows.len(), 3);
        for row in &scenario.rows {
            assert_eq!(row.cells.len(), 8);
            let control = &row.cells[0];
            assert_eq!(control.degradation, 1.0);
            assert_eq!(control.recovery_latency, 0);
            // The ≥25%-fleet correlated cells actually lost capacity and
            // recovered with exactly-once retries.
            assert!(row
                .cells
                .iter()
                .filter(|c| c.correlated > 0)
                .any(|c| c.faults_injected > 0));
        }
        let rendered = render_chaos(&scenario, "k20m");
        assert!(rendered.contains("chaos soak"));
        assert!(rendered.contains("every cell passed"));
    }
}
