//! Rendering of the `repro lint` report.
//!
//! Sweeps the bundled Parboil kernel set through the accelcheck static
//! analyses — the per-kernel race verdict from [`kernel_ir::races`] and the
//! structural lints from [`kernel_ir::lint`] — and renders one deterministic
//! text report. The same renderer backs the `repro lint` subcommand and the
//! golden-snapshot test (`tests/golden/lint_report.txt`), so the report
//! format is pinned byte-for-byte.

use kernel_ir::lint::{lint_module, Severity};
use kernel_ir::races::analyze_kernel;
use parboil::KernelSpec;
use std::fmt::Write as _;

/// The rendered report plus severity tallies for gating.
#[derive(Debug, Clone)]
pub struct LintSummary {
    /// Full human-readable report text.
    pub report: String,
    /// Number of `error` diagnostics.
    pub errors: usize,
    /// Number of `warning` diagnostics.
    pub warnings: usize,
    /// Number of `note` diagnostics.
    pub notes: usize,
}

impl LintSummary {
    /// Whether a `--deny-warnings` run should fail.
    pub fn deny_warnings_fails(&self) -> bool {
        self.errors > 0 || self.warnings > 0
    }
}

/// Run the accelcheck analyses over every bundled Parboil kernel and render
/// the lint report.
///
/// The report is fully deterministic: kernels appear in `KernelSpec::all()`
/// order, sites in program order, diagnostics in registry-then-program
/// order.
pub fn lint_parboil() -> LintSummary {
    let mut out = String::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut notes = 0usize;

    out.push_str("accelcheck lint report — bundled Parboil kernels\n");
    out.push_str("=================================================\n");

    for spec in KernelSpec::all() {
        let module = match spec.compile() {
            Ok(m) => m,
            Err(e) => {
                let _ = writeln!(out, "\n{}: COMPILE ERROR: {e}", spec.name);
                errors += 1;
                continue;
            }
        };

        let _ = writeln!(out, "\n{} (benchmark {})", spec.name, spec.benchmark);
        match analyze_kernel(&module, spec.entry) {
            Some(report) => {
                let _ = writeln!(out, "  verdict: {}", report.verdict);
                let writes = report.sites.iter().filter(|s| s.kind.is_write()).count();
                let _ = writeln!(
                    out,
                    "  global sites: {} ({} writing)",
                    report.sites.len(),
                    writes
                );
                for site in report.sites.iter().filter(|s| s.kind.is_write()) {
                    let loc = match site.span {
                        Some((l, c)) => format!("{l}:{c}"),
                        None => format!("bb{}/{}", site.block.0, site.inst),
                    };
                    let _ = writeln!(
                        out,
                        "    {} `{}` at {} ({} bytes)",
                        site.kind, site.param_name, loc, site.bytes
                    );
                }
                if !report.divergent_barriers.is_empty() {
                    let _ = writeln!(
                        out,
                        "  divergent barriers: {}",
                        report.divergent_barriers.len()
                    );
                }
            }
            None => {
                let _ = writeln!(out, "  verdict: <entry `{}` not found>", spec.entry);
            }
        }

        // Lint only the entry function: specs of one benchmark share a
        // translation unit, so module-wide reporting would duplicate
        // findings across specs.
        let diags: Vec<_> = lint_module(&module)
            .into_iter()
            .filter(|d| d.function == spec.entry)
            .collect();
        if diags.is_empty() {
            out.push_str("  lints: clean\n");
        } else {
            out.push_str("  lints:\n");
            for d in &diags {
                match d.severity {
                    Severity::Error => errors += 1,
                    Severity::Warn => warnings += 1,
                    Severity::Note => notes += 1,
                }
                let _ = writeln!(out, "    {d}");
            }
        }
    }

    let _ = writeln!(
        out,
        "\n{} error(s), {} warning(s), {} note(s)",
        errors, warnings, notes
    );
    LintSummary {
        report: out,
        errors,
        warnings,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_deterministic_and_covers_every_kernel() {
        let a = lint_parboil();
        let b = lint_parboil();
        assert_eq!(a.report, b.report, "report must be deterministic");
        for spec in KernelSpec::all() {
            assert!(
                a.report.contains(spec.name),
                "report must mention `{}`",
                spec.name
            );
        }
        assert!(a.report.contains("verdict:"));
    }
}
