//! # accel-harness — workloads and experiment drivers
//!
//! Reproduces the accelOS (CGO 2016) evaluation: workload generation
//! (§7.2), the co-execution [`runner`] for the four schemes
//! {standard OpenCL, Elastic Kernels, accelOS-naive, accelOS} on the two
//! device presets, and one [`experiments`] driver per table and figure.
//!
//! The `repro` binary renders any experiment from the command line:
//!
//! ```text
//! cargo run --release -p accel-harness --bin repro -- fig9 --device k20m
//! cargo run --release -p accel-harness --bin repro -- all --full
//! ```
//!
//! # Examples
//!
//! ```no_run
//! use accel_harness::experiments::{device_sweeps, fig2};
//! use accel_harness::runner::Runner;
//! use accel_harness::workloads::SweepConfig;
//! use gpu_sim::DeviceConfig;
//!
//! let runner = Runner::new(DeviceConfig::k20m());
//! println!("{}", fig2(&runner, 1));
//! let sweeps = device_sweeps(&runner, &SweepConfig::test_scale());
//! println!("{}", sweeps.fig9());
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod runner;
pub mod workloads;

pub use runner::{Runner, Scheme, WorkloadRun};
pub use workloads::{all_pairs, alphabetic_pairs, random_combinations, SweepConfig, Workload};
