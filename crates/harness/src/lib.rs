//! # accel-harness — workloads and experiment drivers
//!
//! Reproduces the accelOS (CGO 2016) evaluation: workload generation
//! (§7.2), the co-execution [`runner`] for any set of
//! [`SchedulingPolicy`] objects (the paper's four schemes are
//! [`PolicySet::paper`]) on the two device presets, and one
//! [`experiments`] driver per table and figure.
//!
//! The `repro` binary renders any experiment from the command line, for
//! any policy set:
//!
//! ```text
//! cargo run --release -p accel-harness --bin repro -- fig9 --device k20m
//! cargo run --release -p accel-harness --bin repro -- all --full
//! cargo run --release -p accel-harness --bin repro -- fig9 \
//!     --policies accelos,accelos-guided,accelos-weighted:3:1
//! ```
//!
//! # Examples
//!
//! ```no_run
//! use accel_harness::experiments::{device_sweeps, fig2};
//! use accel_harness::runner::Runner;
//! use accel_harness::workloads::SweepConfig;
//! use gpu_sim::DeviceConfig;
//!
//! let runner = Runner::new(DeviceConfig::k20m());
//! println!("{}", fig2(&runner, 1));
//! let set = accelos::policy::PolicySet::paper();
//! // Ratio figures divide by the policy at the given set position
//! // (`repro --reference <name>` from the command line).
//! let sweeps = device_sweeps(&runner, &set, &SweepConfig::test_scale(), 0);
//! println!("{}", sweeps.fig9());
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod disasm;
pub mod experiments;
pub mod lintreport;
pub mod runner;
pub mod shard;
pub mod workloads;

pub use accelos::policy::{PolicySet, SchedulingPolicy};
pub use runner::{RepContext, Runner, WorkloadRun};
pub use workloads::{all_pairs, alphabetic_pairs, random_combinations, SweepConfig, Workload};
