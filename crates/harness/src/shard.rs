//! Sharded paper-scale sweeps: `repro --shard i/n` + `repro merge`.
//!
//! The `--full` sweep (625 pairs, 16384 4-kernel and 32768 8-kernel
//! combinations, 20 repetitions) is hours of CPU — too much for one
//! process, trivially partitionable because every `(workload, rep)` cell
//! derives its seed from the workload's **global grid index** alone
//! (see [`crate::experiments::sweep_indexed`]). The dataflow is:
//!
//! 1. **Shard** — `repro <figs> --shard i/n --out f_i` computes the
//!    grid's stripe `{ w : w mod n = i }` for each request size and
//!    device, and serializes the per-workload metrics with bit-exact
//!    float encoding ([`f64::to_bits`] hex, so no precision is lost in
//!    transit).
//! 2. **Merge** — `repro merge --inputs f_0,...,f_{n-1} <figs>` checks
//!    the shards agree (same sweep configuration, devices, policies, and
//!    a complete disjoint cover of the grid), reassembles each sweep in
//!    global index order, and renders the figures **byte-identically**
//!    to an unsharded run with the same flags.
//!
//! Striping (rather than contiguous blocks) balances the pair grid,
//! whose early rows repeat the cheap kernels.

use crate::experiments::{sweep_indexed, Sweep, WorkloadMetrics};
use crate::runner::Runner;
use crate::workloads::SweepConfig;
use accelos::policy::PolicySet;
use std::fmt::Write as _;

/// The grid slice one shard process computes: shard `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's position (0-based).
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// Parse the command-line form `"i/n"` (e.g. `0/4`).
    ///
    /// # Errors
    ///
    /// Returns a usage message for malformed specs, `n == 0` or
    /// `i >= n`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard spec `{s}` (expected i/n, e.g. 0/4)"))?;
        let index = i
            .parse::<usize>()
            .map_err(|e| format!("bad shard index in `{s}`: {e}"))?;
        let count = n
            .parse::<usize>()
            .map_err(|e| format!("bad shard count in `{s}`: {e}"))?;
        if count == 0 {
            return Err("shard count must be positive".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Global grid indices of this shard: the stripe
    /// `index, index + count, index + 2·count, …` below `total`.
    pub fn indices(&self, total: usize) -> Vec<usize> {
        (self.index..total).step_by(self.count).collect()
    }
}

/// One request size's partial grid as computed by one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialSweep {
    /// Request size (2, 4 or 8).
    pub request_size: usize,
    /// Size of the *full* grid (all shards together).
    pub total: usize,
    /// `(global index, metrics)` cells of this shard's stripe.
    pub cells: Vec<(usize, WorkloadMetrics)>,
}

/// One device's partial sweeps as computed by one shard process.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceShard {
    /// Device name.
    pub device: String,
    /// Swept policy names, in set order.
    pub policy_names: Vec<String>,
    /// Swept policy figure labels, in set order.
    pub policy_labels: Vec<String>,
    /// The three request sizes' partial grids.
    pub sweeps: Vec<PartialSweep>,
}

/// A parsed shard file: the shard's identity, the sweep configuration it
/// ran, and one [`DeviceShard`] per device.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFile {
    /// Which slice this file holds.
    pub spec: ShardSpec,
    /// The sweep configuration (must agree across merged shards).
    pub config: SweepConfig,
    /// Per-device partial sweeps.
    pub devices: Vec<DeviceShard>,
}

/// The request sizes every sweep covers (paper §7.2).
pub const REQUEST_SIZES: [usize; 3] = [2, 4, 8];

/// Upper bound on a sweep's grid size accepted from a shard file. The
/// real grids top out at tens of thousands of workloads; anything past
/// this is a corrupt or hostile `total=`/`cells=` field, and rejecting
/// it here keeps [`merge_shards`]'s `vec![None; total]` allocation (and
/// the parser's `with_capacity`) bounded.
pub const MAX_GRID: usize = 1 << 24;

/// Compute one device's stripe of all three request-size grids.
pub fn compute_shard(
    runner: &Runner,
    set: &PolicySet,
    cfg: &SweepConfig,
    spec: ShardSpec,
) -> DeviceShard {
    let sweeps = REQUEST_SIZES
        .iter()
        .map(|&rq| {
            let total = cfg.workloads(rq).len();
            PartialSweep {
                request_size: rq,
                total,
                cells: sweep_indexed(runner, set, cfg, rq, &spec.indices(total)),
            }
        })
        .collect();
    DeviceShard {
        device: runner.device().name.clone(),
        policy_names: set.names(),
        policy_labels: set.labels(),
        sweeps,
    }
}

fn push_f64s(line: &mut String, xs: &[f64]) {
    for x in xs {
        let _ = write!(line, " {:016x}", x.to_bits());
    }
}

/// Serialize a shard file (see the module docs for the dataflow). Floats
/// are written as [`f64::to_bits`] hex so the merged numbers are
/// bit-identical to the shard's.
pub fn render_shard_file(spec: ShardSpec, cfg: &SweepConfig, devices: &[DeviceShard]) -> String {
    let mut s = String::new();
    s.push_str("accelos-shard v1\n");
    let _ = writeln!(s, "shard {}/{}", spec.index, spec.count);
    let _ = writeln!(
        s,
        "config pairs={} n4={} n8={} reps={} seed={}",
        cfg.pairs, cfg.n4, cfg.n8, cfg.reps, cfg.seed
    );
    for dev in devices {
        let _ = writeln!(s, "device {}", dev.device);
        let _ = writeln!(s, "policies {}", dev.policy_names.join(","));
        let _ = writeln!(s, "labels {}", dev.policy_labels.join("\t"));
        for sw in &dev.sweeps {
            let _ = writeln!(
                s,
                "sweep {} total={} cells={}",
                sw.request_size,
                sw.total,
                sw.cells.len()
            );
            for (gi, m) in &sw.cells {
                let mut line = format!("cell {gi}");
                push_f64s(&mut line, &m.unfairness);
                push_f64s(&mut line, &m.overlap);
                push_f64s(&mut line, &m.total_time);
                push_f64s(&mut line, &m.stp);
                push_f64s(&mut line, &m.antt);
                push_f64s(&mut line, &m.worst_antt);
                s.push_str(&line);
                s.push('\n');
            }
        }
    }
    s.push_str("end\n");
    s
}

fn parse_kv(token: &str, key: &str) -> Result<usize, String> {
    token
        .strip_prefix(key)
        .and_then(|v| v.strip_prefix('='))
        .ok_or_else(|| format!("expected `{key}=<n>`, got `{token}`"))?
        .parse::<usize>()
        .map_err(|e| format!("bad `{key}` value in `{token}`: {e}"))
}

/// Parse a shard file produced by [`render_shard_file`].
///
/// Beyond shape, the parser validates what a later [`merge_shards`]
/// could only blame on the wrong file (or not catch at all): every
/// `cell` index must fall inside its sweep's declared grid, appear at
/// most once per sweep, and each sweep must hold exactly the number of
/// cells its header declared — so a truncated or doctored file fails
/// here, by line, instead of surfacing as a confusing merge error.
///
/// # Errors
///
/// Returns a message describing the first malformed line.
pub fn parse_shard_file(text: &str) -> Result<ShardFile, String> {
    let mut lines = text.lines().enumerate();
    let mut line = |what: &str| -> Result<(usize, &str), String> {
        lines
            .next()
            .ok_or_else(|| format!("unexpected end of shard file (wanted {what})"))
    };
    let (_, header) = line("header")?;
    if header != "accelos-shard v1" {
        return Err(format!("not a v1 shard file (header `{header}`)"));
    }
    let (_, shard_line) = line("shard line")?;
    let spec = ShardSpec::parse(
        shard_line
            .strip_prefix("shard ")
            .ok_or_else(|| format!("expected `shard i/n`, got `{shard_line}`"))?,
    )?;
    let (_, cfg_line) = line("config line")?;
    let toks: Vec<&str> = cfg_line.split_whitespace().collect();
    if toks.len() != 6 || toks[0] != "config" {
        return Err(format!("bad config line `{cfg_line}`"));
    }
    let config = SweepConfig {
        pairs: parse_kv(toks[1], "pairs")?,
        n4: parse_kv(toks[2], "n4")?,
        n8: parse_kv(toks[3], "n8")?,
        reps: parse_kv(toks[4], "reps")? as u32,
        seed: parse_kv(toks[5], "seed")? as u64,
    };

    let mut devices: Vec<DeviceShard> = Vec::new();
    let mut saw_end = false;
    // Declared `cells=` count of every sweep, in file order, checked
    // against the parsed counts once the whole file is read.
    let mut declared_cells: Vec<usize> = Vec::new();
    // Global indices seen in the *current* sweep section, for rejecting
    // within-file duplicates (merge only catches cross-shard ones).
    let mut seen_gi: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for (no, raw) in lines {
        let err = |msg: String| format!("line {}: {msg}", no + 1);
        if raw == "end" {
            saw_end = true;
            continue;
        }
        if saw_end {
            return Err(err(format!("content after `end`: `{raw}`")));
        }
        if let Some(name) = raw.strip_prefix("device ") {
            devices.push(DeviceShard {
                device: name.to_string(),
                policy_names: Vec::new(),
                policy_labels: Vec::new(),
                sweeps: Vec::new(),
            });
        } else if let Some(names) = raw.strip_prefix("policies ") {
            let dev = devices
                .last_mut()
                .ok_or_else(|| err("policies before any device".into()))?;
            if !dev.policy_names.is_empty() {
                return Err(err("second `policies` line for this device".into()));
            }
            if names.trim().is_empty() || names.split(',').any(|n| n.trim().is_empty()) {
                return Err(err(format!("empty policy name in `{raw}`")));
            }
            dev.policy_names = names.split(',').map(str::to_string).collect();
        } else if let Some(labels) = raw.strip_prefix("labels ") {
            let dev = devices
                .last_mut()
                .ok_or_else(|| err("labels before any device".into()))?;
            if dev.policy_names.is_empty() {
                return Err(err("labels before the `policies` line".into()));
            }
            let labels: Vec<String> = labels.split('\t').map(str::to_string).collect();
            if labels.len() != dev.policy_names.len() {
                return Err(err(format!(
                    "{} labels for {} policies",
                    labels.len(),
                    dev.policy_names.len()
                )));
            }
            dev.policy_labels = labels;
        } else if let Some(rest) = raw.strip_prefix("sweep ") {
            let dev = devices
                .last_mut()
                .ok_or_else(|| err("sweep before any device".into()))?;
            if dev.policy_names.is_empty() {
                return Err(err("sweep before the `policies` line".into()));
            }
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() != 3 {
                return Err(err(format!("bad sweep line `{raw}`")));
            }
            let request_size = toks[0]
                .parse::<usize>()
                .map_err(|e| err(format!("bad request size: {e}")))?;
            if dev.sweeps.iter().any(|p| p.request_size == request_size) {
                return Err(err(format!(
                    "duplicate {request_size}-request sweep for device {}",
                    dev.device
                )));
            }
            let total = parse_kv(toks[1], "total").map_err(err)?;
            let cells = parse_kv(toks[2], "cells").map_err(err)?;
            if total > MAX_GRID {
                return Err(err(format!(
                    "grid of {total} workloads is implausibly large"
                )));
            }
            if cells > total {
                return Err(err(format!(
                    "sweep declares {cells} cells for a {total}-workload grid"
                )));
            }
            declared_cells.push(cells);
            seen_gi.clear();
            dev.sweeps.push(PartialSweep {
                request_size,
                total,
                cells: Vec::with_capacity(cells),
            });
        } else if let Some(rest) = raw.strip_prefix("cell ") {
            let dev = devices
                .last_mut()
                .ok_or_else(|| err("cell before any device".into()))?;
            let n_policies = dev.policy_names.len();
            let sw = dev
                .sweeps
                .last_mut()
                .ok_or_else(|| err("cell before any sweep".into()))?;
            let mut toks = rest.split_whitespace();
            let gi = toks
                .next()
                .ok_or_else(|| err("empty cell".into()))?
                .parse::<usize>()
                .map_err(|e| err(format!("bad cell index: {e}")))?;
            if gi >= sw.total {
                return Err(err(format!(
                    "cell index {gi} out of range for a {}-workload grid",
                    sw.total
                )));
            }
            if !seen_gi.insert(gi) {
                return Err(err(format!("cell index {gi} appears twice in this sweep")));
            }
            let words: Vec<f64> = toks
                .map(|t| {
                    u64::from_str_radix(t, 16)
                        .map(f64::from_bits)
                        .map_err(|e| err(format!("bad f64 hex `{t}`: {e}")))
                })
                .collect::<Result<_, _>>()?;
            if words.len() != 6 * n_policies {
                return Err(err(format!(
                    "cell {gi} has {} values, expected {}",
                    words.len(),
                    6 * n_policies
                )));
            }
            let col = |k: usize| words[k * n_policies..(k + 1) * n_policies].to_vec();
            sw.cells.push((
                gi,
                WorkloadMetrics {
                    unfairness: col(0),
                    overlap: col(1),
                    total_time: col(2),
                    stp: col(3),
                    antt: col(4),
                    worst_antt: col(5),
                },
            ));
        } else if !raw.trim().is_empty() {
            return Err(err(format!("unrecognised line `{raw}`")));
        }
    }
    if !saw_end {
        return Err("shard file truncated (missing `end`)".into());
    }
    if devices.is_empty() {
        return Err("shard file holds no device sections".into());
    }
    // Every sweep must hold exactly the cell count its header declared:
    // fewer means the file was truncated mid-sweep (the `end` sentinel
    // only guards the tail), more means lines were duplicated in.
    let mut declared = declared_cells.iter();
    for dev in &devices {
        if dev.policy_labels.is_empty() {
            return Err(format!("device {} has no `labels` line", dev.device));
        }
        for sw in &dev.sweeps {
            let want = *declared.next().expect("one declared count per sweep");
            if sw.cells.len() != want {
                return Err(format!(
                    "{}-request sweep of device {} holds {} cells but declared {want} \
                     (truncated or doctored shard file)",
                    sw.request_size,
                    dev.device,
                    sw.cells.len()
                ));
            }
        }
    }
    Ok(ShardFile {
        spec,
        config,
        devices,
    })
}

/// Merge shard files into full per-device sweeps, in the devices' shard
/// order. Validates that the shards ran the same configuration, devices
/// and policies, and that together they cover every grid index exactly
/// once.
///
/// # Errors
///
/// Returns a message naming the first inconsistency (mismatched configs,
/// duplicate shard, missing stripe, missing or duplicated grid index).
pub fn merge_shards(files: &[ShardFile]) -> Result<Vec<(String, Vec<Sweep>)>, String> {
    let first = files.first().ok_or("no shard files to merge")?;
    let count = first.spec.count;
    if files.len() != count {
        return Err(format!(
            "have {} shard files but the run was split {count} ways",
            files.len()
        ));
    }
    let mut seen = vec![false; count];
    for f in files {
        if f.config != first.config {
            return Err("shard files ran different sweep configurations".into());
        }
        if f.spec.count != count {
            return Err(format!(
                "shard {}/{} does not belong to a {count}-way split",
                f.spec.index, f.spec.count
            ));
        }
        if std::mem::replace(&mut seen[f.spec.index], true) {
            return Err(format!("shard {}/{} appears twice", f.spec.index, count));
        }
    }

    for f in files {
        if f.devices.len() != first.devices.len() {
            return Err(format!(
                "shard {}/{} swept {} devices, shard {}/{} swept {}",
                f.spec.index,
                count,
                f.devices.len(),
                first.spec.index,
                count,
                first.devices.len()
            ));
        }
    }
    let mut out = Vec::new();
    for (di, dev) in first.devices.iter().enumerate() {
        if dev.sweeps.is_empty() {
            return Err(format!("device {} holds no sweep sections", dev.device));
        }
        let mut sweeps = Vec::new();
        for (si, sw) in dev.sweeps.iter().enumerate() {
            let mut cells: Vec<Option<WorkloadMetrics>> = vec![None; sw.total];
            for f in files {
                let fdev = f.devices.get(di).ok_or_else(|| {
                    format!(
                        "shard {}/{} is missing device {}",
                        f.spec.index, count, dev.device
                    )
                })?;
                if fdev.device != dev.device
                    || fdev.policy_names != dev.policy_names
                    || fdev.policy_labels != dev.policy_labels
                {
                    return Err(format!(
                        "shard {}/{} swept different devices or policies",
                        f.spec.index, count
                    ));
                }
                let fsw = fdev.sweeps.get(si).ok_or_else(|| {
                    format!(
                        "shard {}/{} is missing the {}-request sweep",
                        f.spec.index, count, sw.request_size
                    )
                })?;
                if fsw.request_size != sw.request_size || fsw.total != sw.total {
                    return Err(format!(
                        "shard {}/{} disagrees on the {}-request grid",
                        f.spec.index, count, sw.request_size
                    ));
                }
                for (gi, m) in &fsw.cells {
                    let slot = cells.get_mut(*gi).ok_or_else(|| {
                        format!("grid index {gi} out of range ({} workloads)", sw.total)
                    })?;
                    if slot.replace(m.clone()).is_some() {
                        return Err(format!("grid index {gi} appears in two shards"));
                    }
                }
            }
            let workloads: Vec<WorkloadMetrics> = cells
                .into_iter()
                .enumerate()
                .map(|(gi, c)| c.ok_or_else(|| format!("grid index {gi} missing from all shards")))
                .collect::<Result<_, _>>()?;
            sweeps.push(Sweep {
                request_size: sw.request_size,
                device: dev.device.clone(),
                policy_names: dev.policy_names.clone(),
                policy_labels: dev.policy_labels.clone(),
                workloads,
            });
        }
        out.push((dev.device.clone(), sweeps));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_parses_and_stripes() {
        let s = ShardSpec::parse("1/3").unwrap();
        assert_eq!((s.index, s.count), (1, 3));
        assert_eq!(s.indices(8), vec![1, 4, 7]);
        assert_eq!(ShardSpec::parse("0/1").unwrap().indices(3), vec![0, 1, 2]);
        assert!(ShardSpec::parse("3/3").is_err());
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("nope").is_err());
    }

    #[test]
    fn stripes_cover_the_grid_disjointly() {
        let total = 23;
        let mut seen = vec![0u32; total];
        for i in 0..4 {
            for g in (ShardSpec { index: i, count: 4 }).indices(total) {
                seen[g] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn shard_file_roundtrips_bit_exactly() {
        // Values chosen to stress the encoding: subnormal-ish, negative
        // zero, exact integers, and long irrational expansions.
        let metrics = |salt: f64| WorkloadMetrics {
            unfairness: vec![1.0 + salt, 2.5],
            overlap: vec![0.1f64.sqrt() * salt, -0.0],
            total_time: vec![1e18 + salt, 3.0],
            stp: vec![salt / 3.0, 0.333333333333333],
            antt: vec![1.0, f64::MIN_POSITIVE * salt],
            worst_antt: vec![2.0, salt],
        };
        let shard = ShardFile {
            spec: ShardSpec { index: 1, count: 2 },
            config: SweepConfig::test_scale(),
            devices: vec![DeviceShard {
                device: "K20m".into(),
                policy_names: vec!["baseline".into(), "accelos".into()],
                policy_labels: vec!["OpenCL".into(), "accelOS".into()],
                sweeps: vec![PartialSweep {
                    request_size: 2,
                    total: 4,
                    cells: vec![(1, metrics(0.7)), (3, metrics(1.9))],
                }],
            }],
        };
        let text = render_shard_file(shard.spec, &shard.config, &shard.devices);
        let parsed = parse_shard_file(&text).unwrap();
        assert_eq!(parsed, shard);
    }

    /// A small, valid shard file to mutate in the rejection tests.
    fn good_file() -> String {
        let metrics = WorkloadMetrics {
            unfairness: vec![1.0, 2.0],
            overlap: vec![0.5, 0.6],
            total_time: vec![10.0, 11.0],
            stp: vec![1.0, 1.1],
            antt: vec![1.0, 1.2],
            worst_antt: vec![1.0, 1.3],
        };
        render_shard_file(
            ShardSpec { index: 0, count: 2 },
            &SweepConfig::test_scale(),
            &[DeviceShard {
                device: "K20m".into(),
                policy_names: vec!["baseline".into(), "accelos".into()],
                policy_labels: vec!["OpenCL".into(), "accelOS".into()],
                sweeps: vec![PartialSweep {
                    request_size: 2,
                    total: 4,
                    cells: vec![(0, metrics.clone()), (2, metrics)],
                }],
            }],
        )
    }

    /// Every rejection names the problem instead of panicking: truncated
    /// files, doctored counts, out-of-range or duplicated indices, and
    /// inconsistent policy metadata.
    #[test]
    fn parse_rejects_truncated_and_doctored_files() {
        let good = good_file();
        assert!(parse_shard_file(&good).is_ok());

        let expect_err = |text: &str, needle: &str| {
            let e = parse_shard_file(text).unwrap_err();
            assert!(e.contains(needle), "error `{e}` should mention `{needle}`");
        };

        // Truncated: drop the `end` sentinel, or cut a cell line while
        // keeping `end` (only the declared-count check can catch that).
        expect_err(good.trim_end_matches("end\n"), "truncated");
        let cut: String =
            good.lines()
                .filter(|l| !l.starts_with("cell 2"))
                .fold(String::new(), |mut s, l| {
                    s.push_str(l);
                    s.push('\n');
                    s
                });
        expect_err(&cut, "declared 2");

        let swap = |from: &str, to: &str| good.replace(from, to);
        // Doctored sweep headers.
        expect_err(
            &swap("total=4 cells=2", "total=4 cells=5"),
            "declares 5 cells",
        );
        expect_err(
            &swap("total=4 cells=2", "total=99999999999 cells=2"),
            "implausibly large",
        );
        // Cell index outside the declared grid.
        expect_err(&swap("cell 2", "cell 7"), "out of range");
        // Same global index twice within one file.
        expect_err(&swap("cell 2", "cell 0"), "appears twice");
        // Policy metadata: empty name, arity mismatch, missing labels.
        expect_err(
            &swap("policies baseline,accelos", "policies baseline,"),
            "empty policy name",
        );
        expect_err(
            &swap("labels OpenCL\taccelOS", "labels OpenCL"),
            "1 labels for 2 policies",
        );
        // A cell with the wrong number of values (corrupt column count).
        let bad_cell = good
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("cell 2 ") {
                    let keep: Vec<&str> = rest.split_whitespace().take(11).collect();
                    format!("cell 2 {}", keep.join(" "))
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        expect_err(&bad_cell, "11 values, expected 12");
    }

    #[test]
    fn parse_rejects_sections_out_of_order() {
        let good = good_file();
        let drop_line = |prefix: &str| {
            good.lines()
                .filter(|l| !l.starts_with(prefix))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let e = parse_shard_file(&drop_line("policies ")).unwrap_err();
        assert!(e.contains("before the `policies` line"), "{e}");
        let e = parse_shard_file(&drop_line("labels ")).unwrap_err();
        assert!(e.contains("no `labels` line"), "{e}");
        let e = parse_shard_file(&drop_line("device ")).unwrap_err();
        assert!(e.contains("before any device"), "{e}");
        // A second `policies` line is ambiguous, not last-wins.
        let twice = good.replace(
            "policies baseline,accelos\n",
            "policies baseline,accelos\npolicies baseline,accelos\n",
        );
        let e = parse_shard_file(&twice).unwrap_err();
        assert!(e.contains("second `policies` line"), "{e}");
        // Duplicate request-size section within one device.
        let (head, tail) = good.split_once("sweep 2 total=4 cells=2\n").unwrap();
        let dup = format!("{head}sweep 2 total=4 cells=0\nsweep 2 total=4 cells=2\n{tail}");
        let e = parse_shard_file(&dup).unwrap_err();
        assert!(e.contains("duplicate 2-request sweep"), "{e}");
    }

    #[test]
    fn merge_rejects_inconsistent_shards() {
        let mk = |index: usize, count: usize, cells: Vec<usize>| ShardFile {
            spec: ShardSpec { index, count },
            config: SweepConfig::test_scale(),
            devices: vec![DeviceShard {
                device: "K20m".into(),
                policy_names: vec!["accelos".into()],
                policy_labels: vec!["accelOS".into()],
                sweeps: vec![PartialSweep {
                    request_size: 2,
                    total: 4,
                    cells: cells
                        .into_iter()
                        .map(|gi| {
                            (
                                gi,
                                WorkloadMetrics {
                                    unfairness: vec![1.0],
                                    overlap: vec![0.5],
                                    total_time: vec![10.0],
                                    stp: vec![1.0],
                                    antt: vec![1.0],
                                    worst_antt: vec![1.0],
                                },
                            )
                        })
                        .collect(),
                }],
            }],
        };
        // Complete two-way split merges.
        let ok = merge_shards(&[mk(0, 2, vec![0, 2]), mk(1, 2, vec![1, 3])]).unwrap();
        assert_eq!(ok[0].1[0].workloads.len(), 4);
        // Missing shard.
        assert!(merge_shards(&[mk(0, 2, vec![0, 2])]).is_err());
        // Duplicate shard index.
        assert!(merge_shards(&[mk(0, 2, vec![0, 2]), mk(0, 2, vec![0, 2])]).is_err());
        // Overlapping cells.
        assert!(merge_shards(&[mk(0, 2, vec![0, 2]), mk(1, 2, vec![2, 3])]).is_err());
        // Incomplete cover.
        assert!(merge_shards(&[mk(0, 2, vec![0]), mk(1, 2, vec![1, 3])]).is_err());
        // Device-count mismatch (one shard swept an extra device).
        let mut extra = mk(1, 2, vec![1, 3]);
        extra.devices.push(extra.devices[0].clone());
        assert!(merge_shards(&[mk(0, 2, vec![0, 2]), extra]).is_err());
        // A device section with no sweeps must error, not panic later.
        let mut empty = mk(0, 1, vec![]);
        empty.devices[0].sweeps.clear();
        assert!(merge_shards(&[empty]).is_err());
    }
}
