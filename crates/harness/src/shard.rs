//! Sharded paper-scale sweeps: `repro --shard i/n` + `repro merge`.
//!
//! The `--full` sweep (625 pairs, 16384 4-kernel and 32768 8-kernel
//! combinations, 20 repetitions) is hours of CPU — too much for one
//! process, trivially partitionable because every `(workload, rep)` cell
//! derives its seed from the workload's **global grid index** alone
//! (see [`crate::experiments::sweep_indexed`]). The dataflow is:
//!
//! 1. **Shard** — `repro <figs> --shard i/n --out f_i` computes the
//!    grid's stripe `{ w : w mod n = i }` for each request size and
//!    device, and serializes the per-workload metrics with bit-exact
//!    float encoding ([`f64::to_bits`] hex, so no precision is lost in
//!    transit).
//! 2. **Merge** — `repro merge --inputs f_0,...,f_{n-1} <figs>` checks
//!    the shards agree (same sweep configuration, devices, policies, and
//!    a complete disjoint cover of the grid), reassembles each sweep in
//!    global index order, and renders the figures **byte-identically**
//!    to an unsharded run with the same flags.
//!
//! Striping (rather than contiguous blocks) balances the pair grid,
//! whose early rows repeat the cheap kernels.

use crate::experiments::{sweep_indexed, Sweep, WorkloadMetrics};
use crate::runner::Runner;
use crate::workloads::SweepConfig;
use accelos::policy::PolicySet;
use std::fmt::Write as _;

/// The grid slice one shard process computes: shard `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's position (0-based).
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// Parse the command-line form `"i/n"` (e.g. `0/4`).
    ///
    /// # Errors
    ///
    /// Returns a usage message for malformed specs, `n == 0` or
    /// `i >= n`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (i, n) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard spec `{s}` (expected i/n, e.g. 0/4)"))?;
        let index = i
            .parse::<usize>()
            .map_err(|e| format!("bad shard index in `{s}`: {e}"))?;
        let count = n
            .parse::<usize>()
            .map_err(|e| format!("bad shard count in `{s}`: {e}"))?;
        if count == 0 {
            return Err("shard count must be positive".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Global grid indices of this shard: the stripe
    /// `index, index + count, index + 2·count, …` below `total`.
    pub fn indices(&self, total: usize) -> Vec<usize> {
        (self.index..total).step_by(self.count).collect()
    }
}

/// One request size's partial grid as computed by one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialSweep {
    /// Request size (2, 4 or 8).
    pub request_size: usize,
    /// Size of the *full* grid (all shards together).
    pub total: usize,
    /// `(global index, metrics)` cells of this shard's stripe.
    pub cells: Vec<(usize, WorkloadMetrics)>,
}

/// One device's partial sweeps as computed by one shard process.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceShard {
    /// Device name.
    pub device: String,
    /// Swept policy names, in set order.
    pub policy_names: Vec<String>,
    /// Swept policy figure labels, in set order.
    pub policy_labels: Vec<String>,
    /// The three request sizes' partial grids.
    pub sweeps: Vec<PartialSweep>,
}

/// A parsed shard file: the shard's identity, the sweep configuration it
/// ran, and one [`DeviceShard`] per device.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFile {
    /// Which slice this file holds.
    pub spec: ShardSpec,
    /// The sweep configuration (must agree across merged shards).
    pub config: SweepConfig,
    /// Per-device partial sweeps.
    pub devices: Vec<DeviceShard>,
}

/// The request sizes every sweep covers (paper §7.2).
pub const REQUEST_SIZES: [usize; 3] = [2, 4, 8];

/// Compute one device's stripe of all three request-size grids.
pub fn compute_shard(
    runner: &Runner,
    set: &PolicySet,
    cfg: &SweepConfig,
    spec: ShardSpec,
) -> DeviceShard {
    let sweeps = REQUEST_SIZES
        .iter()
        .map(|&rq| {
            let total = cfg.workloads(rq).len();
            PartialSweep {
                request_size: rq,
                total,
                cells: sweep_indexed(runner, set, cfg, rq, &spec.indices(total)),
            }
        })
        .collect();
    DeviceShard {
        device: runner.device().name.clone(),
        policy_names: set.names(),
        policy_labels: set.labels(),
        sweeps,
    }
}

fn push_f64s(line: &mut String, xs: &[f64]) {
    for x in xs {
        let _ = write!(line, " {:016x}", x.to_bits());
    }
}

/// Serialize a shard file (see the module docs for the dataflow). Floats
/// are written as [`f64::to_bits`] hex so the merged numbers are
/// bit-identical to the shard's.
pub fn render_shard_file(spec: ShardSpec, cfg: &SweepConfig, devices: &[DeviceShard]) -> String {
    let mut s = String::new();
    s.push_str("accelos-shard v1\n");
    let _ = writeln!(s, "shard {}/{}", spec.index, spec.count);
    let _ = writeln!(
        s,
        "config pairs={} n4={} n8={} reps={} seed={}",
        cfg.pairs, cfg.n4, cfg.n8, cfg.reps, cfg.seed
    );
    for dev in devices {
        let _ = writeln!(s, "device {}", dev.device);
        let _ = writeln!(s, "policies {}", dev.policy_names.join(","));
        let _ = writeln!(s, "labels {}", dev.policy_labels.join("\t"));
        for sw in &dev.sweeps {
            let _ = writeln!(
                s,
                "sweep {} total={} cells={}",
                sw.request_size,
                sw.total,
                sw.cells.len()
            );
            for (gi, m) in &sw.cells {
                let mut line = format!("cell {gi}");
                push_f64s(&mut line, &m.unfairness);
                push_f64s(&mut line, &m.overlap);
                push_f64s(&mut line, &m.total_time);
                push_f64s(&mut line, &m.stp);
                push_f64s(&mut line, &m.antt);
                push_f64s(&mut line, &m.worst_antt);
                s.push_str(&line);
                s.push('\n');
            }
        }
    }
    s.push_str("end\n");
    s
}

fn parse_kv(token: &str, key: &str) -> Result<usize, String> {
    token
        .strip_prefix(key)
        .and_then(|v| v.strip_prefix('='))
        .ok_or_else(|| format!("expected `{key}=<n>`, got `{token}`"))?
        .parse::<usize>()
        .map_err(|e| format!("bad `{key}` value in `{token}`: {e}"))
}

/// Parse a shard file produced by [`render_shard_file`].
///
/// # Errors
///
/// Returns a message describing the first malformed line.
pub fn parse_shard_file(text: &str) -> Result<ShardFile, String> {
    let mut lines = text.lines().enumerate();
    let mut line = |what: &str| -> Result<(usize, &str), String> {
        lines
            .next()
            .ok_or_else(|| format!("unexpected end of shard file (wanted {what})"))
    };
    let (_, header) = line("header")?;
    if header != "accelos-shard v1" {
        return Err(format!("not a v1 shard file (header `{header}`)"));
    }
    let (_, shard_line) = line("shard line")?;
    let spec = ShardSpec::parse(
        shard_line
            .strip_prefix("shard ")
            .ok_or_else(|| format!("expected `shard i/n`, got `{shard_line}`"))?,
    )?;
    let (_, cfg_line) = line("config line")?;
    let toks: Vec<&str> = cfg_line.split_whitespace().collect();
    if toks.len() != 6 || toks[0] != "config" {
        return Err(format!("bad config line `{cfg_line}`"));
    }
    let config = SweepConfig {
        pairs: parse_kv(toks[1], "pairs")?,
        n4: parse_kv(toks[2], "n4")?,
        n8: parse_kv(toks[3], "n8")?,
        reps: parse_kv(toks[4], "reps")? as u32,
        seed: parse_kv(toks[5], "seed")? as u64,
    };

    let mut devices: Vec<DeviceShard> = Vec::new();
    let mut saw_end = false;
    for (no, raw) in lines {
        let err = |msg: String| format!("line {}: {msg}", no + 1);
        if raw == "end" {
            saw_end = true;
            continue;
        }
        if saw_end {
            return Err(err(format!("content after `end`: `{raw}`")));
        }
        if let Some(name) = raw.strip_prefix("device ") {
            devices.push(DeviceShard {
                device: name.to_string(),
                policy_names: Vec::new(),
                policy_labels: Vec::new(),
                sweeps: Vec::new(),
            });
        } else if let Some(names) = raw.strip_prefix("policies ") {
            let dev = devices
                .last_mut()
                .ok_or_else(|| err("policies before any device".into()))?;
            dev.policy_names = names.split(',').map(str::to_string).collect();
        } else if let Some(labels) = raw.strip_prefix("labels ") {
            let dev = devices
                .last_mut()
                .ok_or_else(|| err("labels before any device".into()))?;
            dev.policy_labels = labels.split('\t').map(str::to_string).collect();
        } else if let Some(rest) = raw.strip_prefix("sweep ") {
            let dev = devices
                .last_mut()
                .ok_or_else(|| err("sweep before any device".into()))?;
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() != 3 {
                return Err(err(format!("bad sweep line `{raw}`")));
            }
            let request_size = toks[0]
                .parse::<usize>()
                .map_err(|e| err(format!("bad request size: {e}")))?;
            dev.sweeps.push(PartialSweep {
                request_size,
                total: parse_kv(toks[1], "total").map_err(err)?,
                cells: Vec::with_capacity(parse_kv(toks[2], "cells").map_err(err)?),
            });
        } else if let Some(rest) = raw.strip_prefix("cell ") {
            let dev = devices
                .last_mut()
                .ok_or_else(|| err("cell before any device".into()))?;
            let n_policies = dev.policy_names.len();
            let sw = dev
                .sweeps
                .last_mut()
                .ok_or_else(|| err("cell before any sweep".into()))?;
            let mut toks = rest.split_whitespace();
            let gi = toks
                .next()
                .ok_or_else(|| err("empty cell".into()))?
                .parse::<usize>()
                .map_err(|e| err(format!("bad cell index: {e}")))?;
            let words: Vec<f64> = toks
                .map(|t| {
                    u64::from_str_radix(t, 16)
                        .map(f64::from_bits)
                        .map_err(|e| err(format!("bad f64 hex `{t}`: {e}")))
                })
                .collect::<Result<_, _>>()?;
            if words.len() != 6 * n_policies {
                return Err(err(format!(
                    "cell {gi} has {} values, expected {}",
                    words.len(),
                    6 * n_policies
                )));
            }
            let col = |k: usize| words[k * n_policies..(k + 1) * n_policies].to_vec();
            sw.cells.push((
                gi,
                WorkloadMetrics {
                    unfairness: col(0),
                    overlap: col(1),
                    total_time: col(2),
                    stp: col(3),
                    antt: col(4),
                    worst_antt: col(5),
                },
            ));
        } else if !raw.trim().is_empty() {
            return Err(err(format!("unrecognised line `{raw}`")));
        }
    }
    if !saw_end {
        return Err("shard file truncated (missing `end`)".into());
    }
    if devices.is_empty() {
        return Err("shard file holds no device sections".into());
    }
    Ok(ShardFile {
        spec,
        config,
        devices,
    })
}

/// Merge shard files into full per-device sweeps, in the devices' shard
/// order. Validates that the shards ran the same configuration, devices
/// and policies, and that together they cover every grid index exactly
/// once.
///
/// # Errors
///
/// Returns a message naming the first inconsistency (mismatched configs,
/// duplicate shard, missing stripe, missing or duplicated grid index).
pub fn merge_shards(files: &[ShardFile]) -> Result<Vec<(String, Vec<Sweep>)>, String> {
    let first = files.first().ok_or("no shard files to merge")?;
    let count = first.spec.count;
    if files.len() != count {
        return Err(format!(
            "have {} shard files but the run was split {count} ways",
            files.len()
        ));
    }
    let mut seen = vec![false; count];
    for f in files {
        if f.config != first.config {
            return Err("shard files ran different sweep configurations".into());
        }
        if f.spec.count != count {
            return Err(format!(
                "shard {}/{} does not belong to a {count}-way split",
                f.spec.index, f.spec.count
            ));
        }
        if std::mem::replace(&mut seen[f.spec.index], true) {
            return Err(format!("shard {}/{} appears twice", f.spec.index, count));
        }
    }

    for f in files {
        if f.devices.len() != first.devices.len() {
            return Err(format!(
                "shard {}/{} swept {} devices, shard {}/{} swept {}",
                f.spec.index,
                count,
                f.devices.len(),
                first.spec.index,
                count,
                first.devices.len()
            ));
        }
    }
    let mut out = Vec::new();
    for (di, dev) in first.devices.iter().enumerate() {
        if dev.sweeps.is_empty() {
            return Err(format!("device {} holds no sweep sections", dev.device));
        }
        let mut sweeps = Vec::new();
        for (si, sw) in dev.sweeps.iter().enumerate() {
            let mut cells: Vec<Option<WorkloadMetrics>> = vec![None; sw.total];
            for f in files {
                let fdev = f.devices.get(di).ok_or_else(|| {
                    format!(
                        "shard {}/{} is missing device {}",
                        f.spec.index, count, dev.device
                    )
                })?;
                if fdev.device != dev.device
                    || fdev.policy_names != dev.policy_names
                    || fdev.policy_labels != dev.policy_labels
                {
                    return Err(format!(
                        "shard {}/{} swept different devices or policies",
                        f.spec.index, count
                    ));
                }
                let fsw = fdev.sweeps.get(si).ok_or_else(|| {
                    format!(
                        "shard {}/{} is missing the {}-request sweep",
                        f.spec.index, count, sw.request_size
                    )
                })?;
                if fsw.request_size != sw.request_size || fsw.total != sw.total {
                    return Err(format!(
                        "shard {}/{} disagrees on the {}-request grid",
                        f.spec.index, count, sw.request_size
                    ));
                }
                for (gi, m) in &fsw.cells {
                    let slot = cells.get_mut(*gi).ok_or_else(|| {
                        format!("grid index {gi} out of range ({} workloads)", sw.total)
                    })?;
                    if slot.replace(m.clone()).is_some() {
                        return Err(format!("grid index {gi} appears in two shards"));
                    }
                }
            }
            let workloads: Vec<WorkloadMetrics> = cells
                .into_iter()
                .enumerate()
                .map(|(gi, c)| c.ok_or_else(|| format!("grid index {gi} missing from all shards")))
                .collect::<Result<_, _>>()?;
            sweeps.push(Sweep {
                request_size: sw.request_size,
                device: dev.device.clone(),
                policy_names: dev.policy_names.clone(),
                policy_labels: dev.policy_labels.clone(),
                workloads,
            });
        }
        out.push((dev.device.clone(), sweeps));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_parses_and_stripes() {
        let s = ShardSpec::parse("1/3").unwrap();
        assert_eq!((s.index, s.count), (1, 3));
        assert_eq!(s.indices(8), vec![1, 4, 7]);
        assert_eq!(ShardSpec::parse("0/1").unwrap().indices(3), vec![0, 1, 2]);
        assert!(ShardSpec::parse("3/3").is_err());
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("nope").is_err());
    }

    #[test]
    fn stripes_cover_the_grid_disjointly() {
        let total = 23;
        let mut seen = vec![0u32; total];
        for i in 0..4 {
            for g in (ShardSpec { index: i, count: 4 }).indices(total) {
                seen[g] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn shard_file_roundtrips_bit_exactly() {
        // Values chosen to stress the encoding: subnormal-ish, negative
        // zero, exact integers, and long irrational expansions.
        let metrics = |salt: f64| WorkloadMetrics {
            unfairness: vec![1.0 + salt, 2.5],
            overlap: vec![0.1f64.sqrt() * salt, -0.0],
            total_time: vec![1e18 + salt, 3.0],
            stp: vec![salt / 3.0, 0.333333333333333],
            antt: vec![1.0, f64::MIN_POSITIVE * salt],
            worst_antt: vec![2.0, salt],
        };
        let shard = ShardFile {
            spec: ShardSpec { index: 1, count: 2 },
            config: SweepConfig::test_scale(),
            devices: vec![DeviceShard {
                device: "K20m".into(),
                policy_names: vec!["baseline".into(), "accelos".into()],
                policy_labels: vec!["OpenCL".into(), "accelOS".into()],
                sweeps: vec![PartialSweep {
                    request_size: 2,
                    total: 4,
                    cells: vec![(1, metrics(0.7)), (3, metrics(1.9))],
                }],
            }],
        };
        let text = render_shard_file(shard.spec, &shard.config, &shard.devices);
        let parsed = parse_shard_file(&text).unwrap();
        assert_eq!(parsed, shard);
    }

    #[test]
    fn merge_rejects_inconsistent_shards() {
        let mk = |index: usize, count: usize, cells: Vec<usize>| ShardFile {
            spec: ShardSpec { index, count },
            config: SweepConfig::test_scale(),
            devices: vec![DeviceShard {
                device: "K20m".into(),
                policy_names: vec!["accelos".into()],
                policy_labels: vec!["accelOS".into()],
                sweeps: vec![PartialSweep {
                    request_size: 2,
                    total: 4,
                    cells: cells
                        .into_iter()
                        .map(|gi| {
                            (
                                gi,
                                WorkloadMetrics {
                                    unfairness: vec![1.0],
                                    overlap: vec![0.5],
                                    total_time: vec![10.0],
                                    stp: vec![1.0],
                                    antt: vec![1.0],
                                    worst_antt: vec![1.0],
                                },
                            )
                        })
                        .collect(),
                }],
            }],
        };
        // Complete two-way split merges.
        let ok = merge_shards(&[mk(0, 2, vec![0, 2]), mk(1, 2, vec![1, 3])]).unwrap();
        assert_eq!(ok[0].1[0].workloads.len(), 4);
        // Missing shard.
        assert!(merge_shards(&[mk(0, 2, vec![0, 2])]).is_err());
        // Duplicate shard index.
        assert!(merge_shards(&[mk(0, 2, vec![0, 2]), mk(0, 2, vec![0, 2])]).is_err());
        // Overlapping cells.
        assert!(merge_shards(&[mk(0, 2, vec![0, 2]), mk(1, 2, vec![2, 3])]).is_err());
        // Incomplete cover.
        assert!(merge_shards(&[mk(0, 2, vec![0]), mk(1, 2, vec![1, 3])]).is_err());
        // Device-count mismatch (one shard swept an extra device).
        let mut extra = mk(1, 2, vec![1, 3]);
        extra.devices.push(extra.devices[0].clone());
        assert!(merge_shards(&[mk(0, 2, vec![0, 2]), extra]).is_err());
        // A device section with no sweeps must error, not panic later.
        let mut empty = mk(0, 1, vec![]);
        empty.devices[0].sweeps.clear();
        assert!(merge_shards(&[empty]).is_err());
    }
}
