//! Disassembly of bundled Parboil kernels through the bytecode tier.
//!
//! Lowers a kernel at its bundled launch shape (datasets at scale 1,
//! seed 7 — the same preparation the differential suites use), runs the
//! once-per-launch optimization pipeline, and renders both programs. The
//! same renderer backs the `repro disasm <kernel>` subcommand and the
//! golden-snapshot test (`tests/golden/bytecode_spmv.txt`), so the
//! lowered and optimized forms are pinned byte-for-byte.

use clrt::{Context, Platform, Program};
use kernel_ir::interp::Interpreter;
use parboil::datasets::prepare_launch;
use parboil::KernelSpec;

/// Lower and optimize the named bundled kernel and render both forms
/// (`== lowered ==` / `== optimized ==`, one instruction per line).
///
/// # Errors
///
/// Returns a human-readable message when `name` is not a bundled kernel,
/// its dataset cannot be prepared, or the kernel refuses to lower (the
/// runtime would fall back to the tree-walker).
pub fn disassemble_parboil(name: &str) -> Result<String, String> {
    let spec = KernelSpec::by_name(name).ok_or_else(|| {
        format!(
            "unknown kernel `{name}` (bundled: {})",
            KernelSpec::all()
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    let mut ctx = Context::new(&Platform::nvidia());
    let program =
        Program::build(spec.source).map_err(|e| format!("`{name}` failed to build: {e}"))?;
    let prepared = prepare_launch(spec, &mut ctx, &program, 1, 7)
        .map_err(|e| format!("`{name}` dataset preparation failed: {e}"))?;
    let kernel = prepared.kernel;
    let args = kernel
        .resolved_args()
        .map_err(|e| format!("`{name}` arguments did not resolve: {e}"))?;
    let interp = Interpreter::with_facts(kernel.module(), kernel.facts());
    let body = interp
        .disassemble_kernel(ctx.memory_mut(), kernel.name(), prepared.ndrange, &args)
        .map_err(|e| format!("`{name}` does not lower to bytecode: {e}"))?;
    Ok(format!(
        "bytecode for `{name}` (launch {:?})\n{body}",
        prepared.ndrange
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bundled_kernel_disassembles() {
        for spec in KernelSpec::all() {
            let text =
                disassemble_parboil(spec.name).unwrap_or_else(|e| panic!("`{}`: {e}", spec.name));
            assert!(text.contains("== lowered =="), "`{}`", spec.name);
            assert!(text.contains("== optimized =="), "`{}`", spec.name);
        }
    }

    #[test]
    fn unknown_kernels_are_reported() {
        let err = disassemble_parboil("nope").unwrap_err();
        assert!(err.contains("unknown kernel `nope`"));
    }
}
