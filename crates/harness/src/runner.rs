//! The co-execution runner: one workload × one scheduling policy × one
//! device → per-kernel times, busy intervals and metrics.
//!
//! Policies are [`SchedulingPolicy`] objects (see `accelos::policy`); the
//! paper's four schemes come from
//! [`PolicySet::paper`](accelos::policy::PolicySet::paper):
//!
//! * `baseline` — standard OpenCL: every original work group is a hardware
//!   work group (serialisation emerges from the FIFO dispatcher);
//! * `ek` — the Elastic Kernels static-allocation baseline;
//! * `accelos-naive` / `accelos` — the paper's runtime, without and with
//!   §6.4 adaptive scheduling.
//!
//! Each `(workload, repetition)` measurement opens one [`RepContext`]
//! session holding everything that is *policy-independent*: the calibrated
//! per-work-group cost draw, the compiled resource demands, and lazily the
//! §3 share allocations. Every policy of the repetition plans against the
//! same session, so nothing is recomputed per policy (the ROADMAP's
//! "cost-draw sharing across schemes at the API level").
//!
//! Per-work-group resources come from *compiling* each kernel (registers,
//! local memory, §6.4 instruction counts); per-work-group costs come from
//! each kernel's calibrated cost profile, seeded per repetition so that the
//! paper's 20-repetition averaging has variance to average over.

use accelos::chunk::{chunk_for, Mode};
use accelos::policy::{plan_with_arrivals_and_faults, FaultSchedule, PlanCtx, SchedulingPolicy};
use accelos::resource::{ResourceDemand, ShareAllocation};
use accelos::scheduler::{ExecRequest, LaunchDecision};
use gpu_sim::{
    Costs, DeviceConfig, FailureDomain, FaultPlan, KernelLaunch, LaunchId, ReclaimCmd, ResumeCmd,
    SimReport, Simulator, WorkGroupReq,
};
use parboil::{KernelDb, KernelSpec};
use sched_metrics::profile::ProfileStore;
use sched_metrics::IntervalSet;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Software cost added per virtual group by the persistent-worker runtime
/// (index arithmetic of the replaced work-item functions).
const PER_VG_OVERHEAD: u64 = 2;

/// Inner level of the isolated-time cache: `(kernel, seed)` → time.
type IsolatedTimes = HashMap<(&'static str, u64), u64>;

/// Result of one workload execution under one policy.
///
/// `PartialEq` is exact (bit-level): the policy path's numbers are pinned
/// by the golden snapshots in `tests/golden/` (which retired the seed's
/// enum-dispatch parity fixture), and the determinism tests assert
/// equality through this impl.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRun {
    /// Kernel names, in arrival order.
    pub names: Vec<&'static str>,
    /// Per-kernel turnaround times in the shared run.
    pub shared: Vec<u64>,
    /// Per-kernel isolated times under the same policy.
    pub alone: Vec<u64>,
    /// Per-kernel busy intervals in the shared run.
    pub busy: Vec<IntervalSet>,
    /// Time for the whole workload to finish.
    pub total_time: u64,
}

impl WorkloadRun {
    /// Individual slowdowns `IS_i` (paper §7.4).
    pub fn slowdowns(&self) -> Vec<f64> {
        self.shared
            .iter()
            .zip(&self.alone)
            .map(|(&s, &a)| sched_metrics::individual_slowdown(s, a))
            .collect()
    }

    /// System unfairness `U`.
    pub fn unfairness(&self) -> f64 {
        sched_metrics::unfairness(&self.slowdowns())
    }

    /// Kernel execution overlap `O`.
    pub fn overlap(&self) -> f64 {
        sched_metrics::execution_overlap(&self.busy)
    }

    /// `STP` over the workload.
    pub fn stp(&self) -> f64 {
        sched_metrics::stp(&self.shared, &self.alone)
    }

    /// `ANTT` over the workload.
    pub fn antt(&self) -> f64 {
        sched_metrics::antt(&self.shared, &self.alone)
    }

    /// Worst-case `NTT` over the workload.
    pub fn worst_antt(&self) -> f64 {
        sched_metrics::worst_antt(&self.shared, &self.alone)
    }
}

/// The policy-independent facts of one kernel inside a [`RepContext`].
#[derive(Debug)]
struct RepKernel {
    spec: &'static KernelSpec,
    req: WorkGroupReq,
    demand: ResourceDemand,
    insn_count: usize,
    costs: Costs,
}

/// One `(workload, repetition)` measurement session.
///
/// Owns everything every policy of the repetition shares: the calibrated
/// cost draw (one [`Costs`] table per kernel, deduplicated when a kernel
/// appears several times in the workload), the compiled resource demands,
/// and — lazily, filled by the first policy that needs them — the §3
/// equal-share and single-kernel allocations. Handing the same context to
/// each policy is what eliminates the redundant `compute_shares` re-plans
/// and cost re-draws the seed performed per scheme.
#[derive(Debug)]
pub struct RepContext<'r> {
    runner: &'r Runner,
    seed: u64,
    kernels: Vec<RepKernel>,
    equal_shares: OnceLock<(Vec<ResourceDemand>, ShareAllocation)>,
    solo_shares: Vec<OnceLock<(ResourceDemand, u32)>>,
}

impl<'r> RepContext<'r> {
    fn new(runner: &'r Runner, workload: &[&'static KernelSpec], seed: u64) -> Self {
        assert!(!workload.is_empty(), "workloads need at least one kernel");
        // The draw is a deterministic function of (kernel, n, seed), so a
        // kernel appearing twice in a workload shares one table.
        let mut draws: HashMap<&'static str, Costs> = HashMap::new();
        let kernels = workload
            .iter()
            .map(|spec| {
                let (_, profile) = runner.db.get(spec.name).expect("spec from the same table");
                let req = WorkGroupReq {
                    threads: spec.wg_size,
                    local_mem: profile.static_local_bytes as u32,
                    regs_per_thread: profile.regs_per_item.max(1) as u32,
                };
                let costs = draws
                    .entry(spec.name)
                    .or_insert_with(|| spec.vg_costs(spec.default_wgs as usize, seed).into())
                    .clone();
                RepKernel {
                    spec,
                    req,
                    demand: ResourceDemand {
                        wg_threads: req.threads,
                        wg_local_mem: req.local_mem,
                        wg_regs: req.regs_total(),
                        original_wgs: spec.default_wgs,
                    },
                    insn_count: profile.insn_count,
                    costs,
                }
            })
            .collect::<Vec<_>>();
        let solo_shares = kernels.iter().map(|_| OnceLock::new()).collect();
        RepContext {
            runner,
            seed,
            kernels,
            equal_shares: OnceLock::new(),
            solo_shares,
        }
    }

    /// The session's repetition seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The workload, in arrival order.
    pub fn workload(&self) -> Vec<&'static KernelSpec> {
        self.kernels.iter().map(|k| k.spec).collect()
    }

    /// The calibrated cost draw of kernel `index`.
    pub fn costs(&self, index: usize) -> &Costs {
        &self.kernels[index].costs
    }

    /// The planning context policies receive: the device plus this
    /// session's share caches.
    pub fn plan_ctx(&self) -> PlanCtx<'_> {
        PlanCtx::with_caches(&self.runner.device, &self.equal_shares, &self.solo_shares)
    }

    /// A single-kernel session for kernel `index`, sharing this session's
    /// cost draw (an `Arc` clone, not a re-draw) — what isolated-time
    /// simulations plan against. Share caches start empty because a solo
    /// batch allocates differently from the full one.
    fn solo(&self, index: usize) -> RepContext<'r> {
        let k = &self.kernels[index];
        RepContext {
            runner: self.runner,
            seed: self.seed,
            kernels: vec![RepKernel {
                spec: k.spec,
                req: k.req,
                demand: k.demand,
                insn_count: k.insn_count,
                costs: k.costs.clone(),
            }],
            equal_shares: OnceLock::new(),
            solo_shares: vec![OnceLock::new()],
        }
    }

    /// The batch as [`ExecRequest`]s, with dequeue chunks compiled for
    /// `mode` (policies report their mode via
    /// [`SchedulingPolicy::chunk_mode`]).
    pub fn exec_requests(&self, mode: Mode) -> Vec<ExecRequest> {
        self.kernels
            .iter()
            .map(|k| ExecRequest {
                kernel: k.spec.name.into(),
                ndrange: k.spec.default_ndrange(),
                demand: k.demand,
                chunk: chunk_for(k.insn_count, mode),
            })
            .collect()
    }
}

/// Runs workloads on one device with cached kernel compilation and cached
/// isolated-execution times.
#[derive(Debug)]
pub struct Runner {
    device: DeviceConfig,
    db: KernelDb,
    /// Isolated times, keyed policy-name → `(kernel, seed)`. Two levels so
    /// the sweep's hot path (overwhelmingly cache hits) looks up with the
    /// borrowed `policy.name()` and never allocates a key string.
    isolated: Mutex<HashMap<String, IsolatedTimes>>,
    /// Optional calibration store ([`ProfileStore`]). When attached,
    /// preemptive planning reads isolated-time estimates from it (falling
    /// back to — and recording — the exact solo simulation for indices a
    /// policy declares via `SchedulingPolicy::estimate_indices`), and
    /// *every* request with a calibrated entry carries an estimate, so
    /// the arrival planner can prune drained victims. With no store the
    /// path is bit-identical to the pre-calibration runner.
    profile: Mutex<Option<ProfileStore>>,
}

impl Runner {
    /// Runner for `device`, compiling all 25 kernels once.
    ///
    /// # Panics
    ///
    /// Panics if the bundled kernels fail to compile (a bug caught by the
    /// parboil tests, not an input condition).
    pub fn new(device: DeviceConfig) -> Self {
        let db = KernelDb::load().expect("bundled Parboil kernels compile");
        Runner {
            device,
            db,
            isolated: Mutex::new(HashMap::new()),
            profile: Mutex::new(None),
        }
    }

    /// The device this runner simulates.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Attach a calibration store for preemptive planning to read
    /// isolated-time estimates from (and record exact solo times into,
    /// for declared indices the store has not seen). Replaces any store
    /// already attached.
    pub fn set_profile_store(&self, store: ProfileStore) {
        *self.profile.lock().unwrap() = Some(store);
    }

    /// Detach and return the calibration store, e.g. to
    /// [`ProfileStore::save`] it at session end. Later runs plan without
    /// calibrated estimates again.
    pub fn take_profile_store(&self) -> Option<ProfileStore> {
        self.profile.lock().unwrap().take()
    }

    /// The compiled kernel database.
    pub fn db(&self) -> &KernelDb {
        &self.db
    }

    /// Open a `(workload, repetition)` session: draw the repetition's
    /// costs and compile the demands once, for every policy to share.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is empty.
    pub fn rep_context<'r>(
        &'r self,
        workload: &[&'static KernelSpec],
        seed: u64,
    ) -> RepContext<'r> {
        RepContext::new(self, workload, seed)
    }

    /// Build the machine launches for the session's workload under
    /// `policy`, arriving at the given times (one per kernel). Exposed so
    /// the differential tests can simulate the raw launch vectors; most
    /// callers want [`Runner::run_in`].
    pub fn launches_in(
        &self,
        ctx: &RepContext<'_>,
        policy: &dyn SchedulingPolicy,
        arrivals: &[u64],
    ) -> Vec<KernelLaunch> {
        assert_eq!(ctx.kernels.len(), arrivals.len(), "one arrival per kernel");
        let requests = ctx.exec_requests(policy.chunk_mode());
        let plan_ctx = ctx.plan_ctx();
        let decisions = policy.plan(&plan_ctx, &requests);
        self.build_launches(ctx, policy, &plan_ctx, &requests, &decisions, arrivals)
    }

    /// Machine launches **plus timed reclamation and resumption
    /// commands** for a staggered session, planned cohort by cohort
    /// through the policy's arrival hooks
    /// ([`accelos::policy::plan_with_arrivals`]): the first cohort is
    /// planned against only itself (no clairvoyance about future
    /// arrivals), each later cohort goes through
    /// `SchedulingPolicy::on_arrival` and may shrink running launches at
    /// their next chunk boundary — down to a resumable full pause, whose
    /// paired [`ResumeCmd`] the simulator fires when the pressuring
    /// tenant retires. With all-equal arrivals this degenerates to
    /// exactly [`Runner::launches_in`] with no reclaims.
    ///
    /// For indices a policy declares via
    /// [`SchedulingPolicy::estimate_indices`] (the deadline family's
    /// deadlined tenant), the planning context carries the session's
    /// **cached isolated-time estimates** (computed through the same
    /// per-policy cache as the metrics' `alone` times), which the policy
    /// consults to reclaim just enough width for an arriving deadline to
    /// hold. Undeclared indices — and policies that declare none — skip
    /// the estimate simulations entirely: they would ignore the values
    /// anyway.
    ///
    /// With a calibration store attached ([`Runner::set_profile_store`]),
    /// calibrated entries replace the solo simulations (declared indices
    /// the store has not seen still pay one, which is then recorded),
    /// and every request with a calibrated entry carries an estimate so
    /// the arrival planner can prune victims that drained before an
    /// arrival. Store-less runs are bit-identical to the
    /// pre-calibration planner.
    pub fn launches_preemptive(
        &self,
        ctx: &RepContext<'_>,
        policy: &dyn SchedulingPolicy,
        arrivals: &[u64],
    ) -> (Vec<KernelLaunch>, Vec<ReclaimCmd>, Vec<ResumeCmd>) {
        self.launches_preemptive_with_faults(ctx, policy, arrivals, &FaultPlan::default())
    }

    /// [`Runner::launches_preemptive`] with an injected [`FaultPlan`]
    /// rehearsed into the plan: the policy's
    /// [`SchedulingPolicy::on_fault`] hook pre-shrinks survivors for the
    /// plan's permanent capacity losses and kernel aborts (transients are
    /// the simulator's business). An empty plan is bit-identical to the
    /// fault-free planner.
    pub fn launches_preemptive_with_faults(
        &self,
        ctx: &RepContext<'_>,
        policy: &dyn SchedulingPolicy,
        arrivals: &[u64],
        faults: &FaultPlan,
    ) -> (Vec<KernelLaunch>, Vec<ReclaimCmd>, Vec<ResumeCmd>) {
        self.launches_preemptive_with_schedule(
            ctx,
            policy,
            arrivals,
            &FaultSchedule::from_fault_plan(faults),
        )
    }

    /// [`Runner::launches_preemptive_with_faults`] with the fault plan
    /// already projected onto the policy plane — the domain-aware path
    /// ([`Runner::faulty_report_with_domains`]) projects with the device
    /// partition attached so correlated losses reach
    /// [`SchedulingPolicy::on_fault`] as whole-domain capacity events.
    pub fn launches_preemptive_with_schedule(
        &self,
        ctx: &RepContext<'_>,
        policy: &dyn SchedulingPolicy,
        arrivals: &[u64],
        projected: &FaultSchedule,
    ) -> (Vec<KernelLaunch>, Vec<ReclaimCmd>, Vec<ResumeCmd>) {
        assert_eq!(ctx.kernels.len(), arrivals.len(), "one arrival per kernel");
        let requests = ctx.exec_requests(policy.chunk_mode());
        let indices = policy.estimate_indices(&requests);
        let mut profile = self.profile.lock().unwrap();
        let estimates: Vec<Option<u64>> = if indices.is_empty() && profile.is_none() {
            Vec::new()
        } else {
            (0..ctx.kernels.len())
                .map(|i| {
                    let name = ctx.kernels[i].spec.name;
                    let items = requests[i].ndrange.total_items();
                    let calibrated = profile.as_ref().and_then(|s| s.estimate(name, items));
                    if calibrated.is_none() && indices.contains(&i) {
                        // A declared index the store has not seen: pay
                        // the exact solo simulation (as the store-less
                        // path always does) and record it, so the next
                        // session reads the store instead.
                        let t = self.isolated_time_in(ctx, policy, i);
                        if let Some(store) = profile.as_mut() {
                            store.record(name, items, t);
                        }
                        Some(t)
                    } else {
                        calibrated
                    }
                })
                .collect()
        };
        drop(profile);
        let mut plan_ctx = ctx.plan_ctx();
        if !estimates.is_empty() {
            plan_ctx = plan_ctx.with_estimates(&estimates);
        }
        let schedule =
            plan_with_arrivals_and_faults(policy, &plan_ctx, &requests, arrivals, projected);
        let launches = self.build_launches(
            ctx,
            policy,
            &plan_ctx,
            &requests,
            &schedule.decisions,
            arrivals,
        );
        let reclaims = schedule
            .reclaims
            .iter()
            .map(|r| ReclaimCmd {
                at: r.at,
                launch: LaunchId(r.index as u32),
                workers: r.workers,
                pressure: r.pressure.map(|p| LaunchId(p as u32)),
                chunk: None,
            })
            .collect();
        let resumes = schedule
            .resumes
            .iter()
            .map(|r| ResumeCmd {
                after: LaunchId(r.after as u32),
                launch: LaunchId(r.index as u32),
                workers: r.workers,
            })
            .collect();
        (launches, reclaims, resumes)
    }

    /// One [`KernelLaunch`] per decision, sharing the session's cost draw.
    fn build_launches(
        &self,
        ctx: &RepContext<'_>,
        policy: &dyn SchedulingPolicy,
        plan_ctx: &PlanCtx<'_>,
        requests: &[ExecRequest],
        decisions: &[LaunchDecision],
        arrivals: &[u64],
    ) -> Vec<KernelLaunch> {
        decisions
            .iter()
            .enumerate()
            .map(|(i, decision)| {
                let k = &ctx.kernels[i];
                KernelLaunch {
                    name: k.spec.name.to_string(),
                    arrival: arrivals[i],
                    req: k.req,
                    mem_intensity: k.spec.mem_intensity,
                    plan: decision.to_sim_plan(k.costs.clone(), PER_VG_OVERHEAD),
                    // Adaptive policies may grow into capacity freed when
                    // other kernels retire (the adaptivity of iterative
                    // applications, see `KernelLaunch::max_workers`), up to
                    // the share a §3 single-kernel allocation would grant.
                    max_workers: policy.solo_workers(plan_ctx, i, &requests[i]),
                }
            })
            .collect()
    }

    fn simulate(&self, launches: Vec<KernelLaunch>) -> SimReport {
        self.simulate_with(launches, Vec::new(), Vec::new(), FaultPlan::default())
    }

    fn simulate_with(
        &self,
        launches: Vec<KernelLaunch>,
        reclaims: Vec<ReclaimCmd>,
        resumes: Vec<ResumeCmd>,
        faults: FaultPlan,
    ) -> SimReport {
        self.simulate_full(launches, reclaims, resumes, faults, &[])
    }

    fn simulate_full(
        &self,
        launches: Vec<KernelLaunch>,
        reclaims: Vec<ReclaimCmd>,
        resumes: Vec<ResumeCmd>,
        faults: FaultPlan,
        domains: &[FailureDomain],
    ) -> SimReport {
        let mut sim = Simulator::new(self.device.clone());
        if !domains.is_empty() {
            sim = sim.with_domains(domains.to_vec());
        }
        for l in launches {
            sim.add_launch(l);
        }
        for r in reclaims {
            sim.add_reclaim(r);
        }
        for r in resumes {
            sim.add_resume(r);
        }
        sim.with_faults(faults).run()
    }

    /// Isolated execution time of one kernel under `policy` (cached by
    /// policy name — see [`SchedulingPolicy::name`] for why the name must
    /// identify the policy's behaviour).
    pub fn isolated_time(
        &self,
        policy: &dyn SchedulingPolicy,
        spec: &'static KernelSpec,
        seed: u64,
    ) -> u64 {
        if let Some(&t) = self
            .isolated
            .lock()
            .unwrap()
            .get(policy.name())
            .and_then(|m| m.get(&(spec.name, seed)))
        {
            return t;
        }
        let ctx = self.rep_context(&[spec], seed);
        self.isolated_time_in(&ctx, policy, 0)
    }

    /// Isolated time of the session's kernel `index` under `policy`,
    /// reusing the session's cost draw on cache misses instead of
    /// re-drawing it.
    fn isolated_time_in(
        &self,
        ctx: &RepContext<'_>,
        policy: &dyn SchedulingPolicy,
        index: usize,
    ) -> u64 {
        let spec = ctx.kernels[index].spec;
        if let Some(&t) = self
            .isolated
            .lock()
            .unwrap()
            .get(policy.name())
            .and_then(|m| m.get(&(spec.name, ctx.seed)))
        {
            return t;
        }
        let report = self.simulate(self.launches_in(&ctx.solo(index), policy, &[0]));
        let t = report.total_time().max(1);
        self.isolated
            .lock()
            .unwrap()
            .entry(policy.name().to_string())
            .or_default()
            .insert((spec.name, ctx.seed), t);
        t
    }

    /// Run one workload under one policy, all requests arriving at once.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is empty.
    pub fn run_workload(
        &self,
        policy: &dyn SchedulingPolicy,
        workload: &[&'static KernelSpec],
        seed: u64,
    ) -> WorkloadRun {
        let ctx = self.rep_context(workload, seed);
        self.run_in(&ctx, policy, &vec![0; workload.len()])
    }

    /// Run one workload with *staggered* arrivals — tenants joining (and
    /// leaving, as they finish) a shared node dynamically, the scenario §9
    /// says static code-merging approaches cannot handle.
    ///
    /// Shares are planned against the whole tenancy (the steady state an
    /// iterative application converges to); the simulator's elastic growth
    /// covers the join/leave transients.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is empty or the lengths differ.
    pub fn run_workload_with_arrivals(
        &self,
        policy: &dyn SchedulingPolicy,
        workload: &[&'static KernelSpec],
        arrivals: &[u64],
        seed: u64,
    ) -> WorkloadRun {
        let ctx = self.rep_context(workload, seed);
        self.run_in(&ctx, policy, arrivals)
    }

    /// Run one policy against an open [`RepContext`] session. The sweep
    /// calls this once per policy of a repetition, sharing the session's
    /// cost draw and share caches across all of them.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` does not match the session's workload length.
    pub fn run_in(
        &self,
        ctx: &RepContext<'_>,
        policy: &dyn SchedulingPolicy,
        arrivals: &[u64],
    ) -> WorkloadRun {
        let report = self.simulate(self.launches_in(ctx, policy, arrivals));
        self.finish_run(ctx, policy, &report)
    }

    /// Raw simulator report of a **preemptive** (cohort-planned) run:
    /// launches from [`Runner::launches_preemptive`] co-executing with its
    /// reclaim commands applied. Use this when the preemption bookkeeping
    /// matters (`KernelReport::preemptions` / `reclaimed_workers` /
    /// `groups_executed`); [`Runner::run_preemptive`] wraps it into the
    /// usual metrics.
    pub fn preemptive_report(
        &self,
        ctx: &RepContext<'_>,
        policy: &dyn SchedulingPolicy,
        arrivals: &[u64],
    ) -> SimReport {
        let (launches, reclaims, resumes) = self.launches_preemptive(ctx, policy, arrivals);
        self.simulate_with(launches, reclaims, resumes, FaultPlan::default())
    }

    /// Raw simulator report of a **faulty** cohort-planned run: the
    /// [`FaultPlan`] is rehearsed into the plan (policy-visible capacity
    /// losses and aborts drive [`SchedulingPolicy::on_fault`]) *and*
    /// injected into the machine simulation. With an empty plan this is
    /// bit-identical to [`Runner::preemptive_report`].
    pub fn faulty_report(
        &self,
        ctx: &RepContext<'_>,
        policy: &dyn SchedulingPolicy,
        arrivals: &[u64],
        faults: &FaultPlan,
    ) -> SimReport {
        let (launches, reclaims, resumes) =
            self.launches_preemptive_with_faults(ctx, policy, arrivals, faults);
        self.simulate_with(launches, reclaims, resumes, faults.clone())
    }

    /// [`Runner::faulty_report`] on a **partitioned** device: the
    /// [`FailureDomain`] partition is attached to the machine simulation
    /// (so [`gpu_sim::FaultKind::DomainFailure`] events resolve to
    /// correlated member failures) *and* to the policy projection (so a
    /// permanent domain loss reaches [`SchedulingPolicy::on_fault`] as
    /// one whole-domain capacity event rather than being dropped). With
    /// no domains and no domain faults this is bit-identical to
    /// [`Runner::faulty_report`].
    pub fn faulty_report_with_domains(
        &self,
        ctx: &RepContext<'_>,
        policy: &dyn SchedulingPolicy,
        arrivals: &[u64],
        faults: &FaultPlan,
        domains: &[FailureDomain],
    ) -> SimReport {
        let projected = FaultSchedule::from_fault_plan_with_domains(faults, domains);
        let (launches, reclaims, resumes) =
            self.launches_preemptive_with_schedule(ctx, policy, arrivals, &projected);
        self.simulate_full(launches, reclaims, resumes, faults.clone(), domains)
    }

    /// Run one staggered workload through the policy's arrival hooks
    /// (cohort planning + mid-flight reclamation). With all-equal
    /// arrivals this is bit-identical to [`Runner::run_in`]; with
    /// staggered arrivals it is the *realistic* transient — unlike
    /// [`Runner::run_workload_with_arrivals`], the first cohort is planned
    /// without clairvoyance about who joins later, and preemptive
    /// policies take workers back when premium tenants arrive.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` does not match the session's workload length.
    pub fn run_preemptive(
        &self,
        ctx: &RepContext<'_>,
        policy: &dyn SchedulingPolicy,
        arrivals: &[u64],
    ) -> WorkloadRun {
        let report = self.preemptive_report(ctx, policy, arrivals);
        self.finish_run(ctx, policy, &report)
    }

    /// Convert a shared-run report into a [`WorkloadRun`] (isolated times
    /// from the per-policy cache).
    fn finish_run(
        &self,
        ctx: &RepContext<'_>,
        policy: &dyn SchedulingPolicy,
        report: &SimReport,
    ) -> WorkloadRun {
        let names: Vec<&'static str> = ctx.kernels.iter().map(|k| k.spec.name).collect();
        let shared: Vec<u64> = report
            .kernels
            .iter()
            .map(|k| k.turnaround().max(1))
            .collect();
        let alone: Vec<u64> = (0..ctx.kernels.len())
            .map(|i| self.isolated_time_in(ctx, policy, i))
            .collect();
        let busy: Vec<IntervalSet> = report
            .kernels
            .iter()
            .map(|k| IntervalSet::from_raw(k.busy_intervals.clone()))
            .collect();
        WorkloadRun {
            names,
            shared,
            alone,
            busy,
            total_time: report.total_time().max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelos::policy::{AccelOsPolicy, BaselinePolicy, PolicySet};
    use std::sync::Arc;

    fn k(name: &str) -> &'static KernelSpec {
        KernelSpec::by_name(name).expect("kernel exists")
    }

    #[test]
    fn baseline_pair_serialises_and_is_unfair() {
        // A long kernel first, a short one behind it: the short one's
        // slowdown is dominated by the wait (paper §2.3).
        let r = Runner::new(DeviceConfig::k20m());
        let run = r.run_workload(&BaselinePolicy, &[k("mri-q_ComputeQ"), k("histo_final")], 1);
        assert!(run.unfairness() > 1.5, "baseline U = {}", run.unfairness());
        assert!(run.overlap() < 0.3, "baseline overlap = {}", run.overlap());
    }

    #[test]
    fn accelos_pair_is_fair_and_overlaps() {
        let r = Runner::new(DeviceConfig::k20m());
        let run = r.run_workload(&AccelOsPolicy::optimized(), &[k("sgemm"), k("stencil")], 1);
        assert!(run.unfairness() < 2.0, "accelOS U = {}", run.unfairness());
        assert!(run.overlap() > 0.5, "accelOS overlap = {}", run.overlap());
    }

    #[test]
    fn accelos_is_fairer_than_baseline_on_mixed_pairs() {
        // Pairs whose first kernel is long, so baseline serialisation
        // punishes the second (the paper's motivating scenario).
        let r = Runner::new(DeviceConfig::k20m());
        for pair in [
            ["lbm", "histo_final"],
            ["tpacf", "spmv"],
            ["mri-q_ComputeQ", "bfs"],
        ] {
            let wl = [k(pair[0]), k(pair[1])];
            let base = r.run_workload(&BaselinePolicy, &wl, 3);
            let acc = r.run_workload(&AccelOsPolicy::optimized(), &wl, 3);
            assert!(
                acc.unfairness() < base.unfairness(),
                "{pair:?}: accelOS {} vs baseline {}",
                acc.unfairness(),
                base.unfairness()
            );
        }
    }

    #[test]
    fn isolated_times_are_cached_and_deterministic() {
        let r = Runner::new(DeviceConfig::k20m());
        let a = r.isolated_time(&BaselinePolicy, k("bfs"), 5);
        let b = r.isolated_time(&BaselinePolicy, k("bfs"), 5);
        assert_eq!(a, b);
        let c = r.isolated_time(&BaselinePolicy, k("bfs"), 6);
        assert_ne!(a, c, "different cost draws give different times");
    }

    #[test]
    fn metrics_are_computable_for_all_policies() {
        let r = Runner::new(DeviceConfig::k20m());
        let wl = [k("histo_final"), k("mri-q_ComputePhiMag")];
        for policy in PolicySet::paper().iter() {
            let run = r.run_workload(policy.as_ref(), &wl, 9);
            assert!(run.unfairness() >= 1.0);
            assert!((0.0..=1.0).contains(&run.overlap()));
            assert!(run.stp() > 0.0);
            assert!(run.antt() >= 1.0 - 1e9);
            assert!(run.worst_antt() >= run.antt() - 1e-9);
            assert_eq!(run.names.len(), 2);
        }
    }

    #[test]
    fn one_session_serves_every_policy_of_a_rep() {
        let r = Runner::new(DeviceConfig::k20m());
        let wl = [k("sgemm"), k("spmv")];
        let ctx = r.rep_context(&wl, 11);
        let arrivals = [0, 0];
        for policy in PolicySet::paper().iter() {
            let via_session = r.run_in(&ctx, policy.as_ref(), &arrivals);
            let via_fresh = r.run_workload(policy.as_ref(), &wl, 11);
            assert_eq!(via_session, via_fresh, "{}", policy.name());
        }
        // The shared caches were actually filled by the accelOS policies.
        assert!(ctx.equal_shares.get().is_some());
        assert!(ctx.solo_shares.iter().all(|s| s.get().is_some()));
    }

    #[test]
    fn preemptive_path_matches_plain_path_without_arrivals() {
        let r = Runner::new(DeviceConfig::k20m());
        let wl = [k("sgemm"), k("spmv"), k("stencil")];
        let mut set = PolicySet::paper();
        set.push(std::sync::Arc::new(
            accelos::policy::PriorityPolicy::default(),
        ))
        .unwrap();
        set.push(std::sync::Arc::new(
            accelos::policy::DeadlinePolicy::default(),
        ))
        .unwrap();
        set.push(std::sync::Arc::new(accelos::policy::SlaPolicy::new(&[
            4, 2, 0,
        ])))
        .unwrap();
        let arrivals = [0, 0, 0];
        for policy in set.iter() {
            let ctx = r.rep_context(&wl, 17);
            let preemptive = r.run_preemptive(&ctx, policy.as_ref(), &arrivals);
            let plain = r.run_in(&ctx, policy.as_ref(), &arrivals);
            assert_eq!(preemptive, plain, "{}", policy.name());
        }
    }

    #[test]
    fn priority_preemption_cuts_premium_turnaround() {
        use accelos::policy::{AccelOsPolicy, PriorityPolicy};
        let r = Runner::new(DeviceConfig::k20m());
        // Premium tenant first in the workload (accelos-priority treats
        // index 0 as premium), arriving a quarter into the batch tenants'
        // run.
        let wl = [k("sgemm"), k("lbm"), k("tpacf")];
        let accelos = AccelOsPolicy::optimized();
        let t_batch = r.isolated_time(&accelos, wl[1], 21);
        let arrivals = [t_batch / 4, 0, 0];
        let ctx = r.rep_context(&wl, 21);
        let queueing = r.preemptive_report(&ctx, &accelos, &arrivals);
        let preempting = r.preemptive_report(&ctx, &PriorityPolicy::default(), &arrivals);
        let t_queue = queueing.kernels[0].turnaround();
        let t_preempt = preempting.kernels[0].turnaround();
        assert!(
            (t_preempt as f64) * 1.5 <= t_queue as f64,
            "preemption should cut premium turnaround ≥1.5x: {t_preempt} vs {t_queue}"
        );
        // The batch tenants really were reclaimed, and no work was lost.
        assert!(preempting.kernels[1..]
            .iter()
            .all(|k| k.preemptions == 1 && k.reclaimed_workers > 0));
        assert_eq!(queueing.kernels[0].preemptions, 0);
        for (k, launch) in preempting.kernels.iter().zip(
            r.launches_preemptive(&ctx, &PriorityPolicy::default(), &arrivals)
                .0,
        ) {
            assert_eq!(k.groups_executed as u64, launch.plan.total_groups());
        }
    }

    #[test]
    fn repeated_kernels_share_one_draw() {
        let r = Runner::new(DeviceConfig::k20m());
        let wl = [k("bfs"), k("bfs")];
        let ctx = r.rep_context(&wl, 3);
        assert!(
            Arc::ptr_eq(ctx.costs(0), ctx.costs(1)),
            "same kernel in one session should share its cost table"
        );
    }
}
