//! The co-execution runner: one workload × one scheme × one device →
//! per-kernel times, busy intervals and metrics.
//!
//! Schemes:
//!
//! * [`Scheme::Baseline`] — standard OpenCL: every original work group is a
//!   hardware work group (serialisation emerges from the FIFO dispatcher);
//! * [`Scheme::ElasticKernels`] — the static-allocation baseline;
//! * [`Scheme::AccelOsNaive`] / [`Scheme::AccelOs`] — the paper's runtime,
//!   without and with §6.4 adaptive scheduling.
//!
//! Per-work-group resources come from *compiling* each kernel (registers,
//! local memory, §6.4 instruction counts); per-work-group costs come from
//! each kernel's calibrated cost profile, seeded per repetition so that the
//! paper's 20-repetition averaging has variance to average over.

use accelos::chunk::{chunk_for, Mode};
use accelos::resource::ResourceDemand;
use accelos::scheduler::{plan_launches, ExecRequest};
use elastic_kernels::EkKernel;
use gpu_sim::{Costs, DeviceConfig, KernelLaunch, LaunchPlan, SimReport, Simulator, WorkGroupReq};
use parboil::{KernelDb, KernelSpec};
use sched_metrics::IntervalSet;
use std::collections::HashMap;
use std::sync::Mutex;

/// Entries kept in the per-runner cost-draw cache before it is cleared.
/// Draws are only reused within one repetition (the four schemes and the
/// isolated runs of the same `(workload, seed)`), so a small bound keeps
/// the hot set resident without letting a paper-sized sweep accumulate
/// gigabytes of stale tables.
const COST_CACHE_CAP: usize = 512;

/// Software cost added per virtual group by the persistent-worker runtime
/// (index arithmetic of the replaced work-item functions).
const PER_VG_OVERHEAD: u64 = 2;

/// The sharing schemes under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Standard vendor OpenCL stack.
    Baseline,
    /// Elastic Kernels (Pai et al.), as re-implemented by the paper.
    ElasticKernels,
    /// accelOS without adaptive scheduling (§8.5 "naive").
    AccelOsNaive,
    /// accelOS with adaptive scheduling (the paper's default).
    AccelOs,
}

impl Scheme {
    /// All schemes, in the order the paper's figures list them.
    pub fn all() -> [Scheme; 4] {
        [
            Scheme::Baseline,
            Scheme::ElasticKernels,
            Scheme::AccelOsNaive,
            Scheme::AccelOs,
        ]
    }

    /// Display label used in rendered tables.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Baseline => "OpenCL",
            Scheme::ElasticKernels => "EK",
            Scheme::AccelOsNaive => "accelOS-naive",
            Scheme::AccelOs => "accelOS",
        }
    }
}

/// Result of one workload execution under one scheme.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Kernel names, in arrival order.
    pub names: Vec<&'static str>,
    /// Per-kernel turnaround times in the shared run.
    pub shared: Vec<u64>,
    /// Per-kernel isolated times under the same scheme.
    pub alone: Vec<u64>,
    /// Per-kernel busy intervals in the shared run.
    pub busy: Vec<IntervalSet>,
    /// Time for the whole workload to finish.
    pub total_time: u64,
}

impl WorkloadRun {
    /// Individual slowdowns `IS_i` (paper §7.4).
    pub fn slowdowns(&self) -> Vec<f64> {
        self.shared
            .iter()
            .zip(&self.alone)
            .map(|(&s, &a)| sched_metrics::individual_slowdown(s, a))
            .collect()
    }

    /// System unfairness `U`.
    pub fn unfairness(&self) -> f64 {
        sched_metrics::unfairness(&self.slowdowns())
    }

    /// Kernel execution overlap `O`.
    pub fn overlap(&self) -> f64 {
        sched_metrics::execution_overlap(&self.busy)
    }

    /// `STP` over the workload.
    pub fn stp(&self) -> f64 {
        sched_metrics::stp(&self.shared, &self.alone)
    }

    /// `ANTT` over the workload.
    pub fn antt(&self) -> f64 {
        sched_metrics::antt(&self.shared, &self.alone)
    }

    /// Worst-case `NTT` over the workload.
    pub fn worst_antt(&self) -> f64 {
        sched_metrics::worst_antt(&self.shared, &self.alone)
    }
}

/// Runs workloads on one device with cached kernel compilation and cached
/// isolated-execution times.
#[derive(Debug)]
pub struct Runner {
    device: DeviceConfig,
    db: KernelDb,
    isolated: Mutex<HashMap<(Scheme, &'static str, u64), u64>>,
    /// Cached per-work-group cost draws keyed `(kernel, n, seed)` — every
    /// scheme of a repetition consumes the *same* draw, so without this
    /// cache a 4-scheme measurement regenerates (and re-allocates) each
    /// kernel's cost table four times.
    costs: Mutex<HashMap<(&'static str, usize, u64), Costs>>,
}

impl Runner {
    /// Runner for `device`, compiling all 25 kernels once.
    ///
    /// # Panics
    ///
    /// Panics if the bundled kernels fail to compile (a bug caught by the
    /// parboil tests, not an input condition).
    pub fn new(device: DeviceConfig) -> Self {
        let db = KernelDb::load().expect("bundled Parboil kernels compile");
        Runner {
            device,
            db,
            isolated: Mutex::new(HashMap::new()),
            costs: Mutex::new(HashMap::new()),
        }
    }

    /// The deterministic cost draw for `(spec, n, seed)` as a shared table
    /// (cached; see [`Runner::costs`]).
    fn vg_costs_cached(&self, spec: &'static KernelSpec, n: usize, seed: u64) -> Costs {
        let key = (spec.name, n, seed);
        {
            let cache = self.costs.lock().unwrap();
            if let Some(c) = cache.get(&key) {
                return c.clone();
            }
        }
        let draw: Costs = spec.vg_costs(n, seed).into();
        let mut cache = self.costs.lock().unwrap();
        if cache.len() >= COST_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, draw.clone());
        draw
    }

    /// The device this runner simulates.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// The compiled kernel database.
    pub fn db(&self) -> &KernelDb {
        &self.db
    }

    fn wg_req(&self, spec: &KernelSpec) -> WorkGroupReq {
        let (_, profile) = self.db.get(spec.name).expect("spec from the same table");
        WorkGroupReq {
            threads: spec.wg_size,
            local_mem: profile.static_local_bytes as u32,
            regs_per_thread: profile.regs_per_item.max(1) as u32,
        }
    }

    fn chunk(&self, spec: &KernelSpec, mode: Mode) -> u32 {
        let (_, profile) = self.db.get(spec.name).expect("spec from the same table");
        chunk_for(profile.insn_count, mode)
    }

    /// Build the machine launches for `workload` under `scheme`, arriving
    /// at the given times (one per kernel).
    fn launches_at(
        &self,
        scheme: Scheme,
        workload: &[&'static KernelSpec],
        arrivals: &[u64],
        seed: u64,
    ) -> Vec<KernelLaunch> {
        let costs: Vec<Costs> = workload
            .iter()
            .map(|s| self.vg_costs_cached(s, s.default_wgs as usize, seed))
            .collect();
        let plans: Vec<LaunchPlan> = match scheme {
            Scheme::Baseline => costs
                .iter()
                .map(|c| LaunchPlan::Hardware {
                    wg_costs: c.clone(),
                })
                .collect(),
            Scheme::ElasticKernels => {
                let eks: Vec<EkKernel> = workload
                    .iter()
                    .map(|s| EkKernel {
                        wg_threads: s.wg_size,
                        original_wgs: s.default_wgs,
                    })
                    .collect();
                elastic_kernels::plan(&self.device, &eks)
                    .iter()
                    .zip(&costs)
                    .map(|(d, c)| d.to_sim_plan(c.as_ref(), PER_VG_OVERHEAD))
                    .collect()
            }
            Scheme::AccelOsNaive | Scheme::AccelOs => {
                let mode = if scheme == Scheme::AccelOs {
                    Mode::Optimized
                } else {
                    Mode::Naive
                };
                let requests: Vec<ExecRequest> = workload
                    .iter()
                    .map(|s| {
                        let req = self.wg_req(s);
                        ExecRequest {
                            kernel: s.name.into(),
                            ndrange: s.default_ndrange(),
                            demand: ResourceDemand {
                                wg_threads: req.threads,
                                wg_local_mem: req.local_mem,
                                wg_regs: req.regs_total(),
                                original_wgs: s.default_wgs,
                            },
                            chunk: self.chunk(s, mode),
                        }
                    })
                    .collect();
                plan_launches(&self.device, &requests)
                    .iter()
                    .zip(&costs)
                    .map(|(d, c)| d.to_sim_plan(c.clone(), PER_VG_OVERHEAD))
                    .collect()
            }
        };
        workload
            .iter()
            .zip(plans)
            .map(|(spec, plan)| {
                // accelOS launches may grow into capacity freed when other
                // kernels retire (the adaptivity of iterative applications,
                // see `KernelLaunch::max_workers`), up to the share a §3
                // single-kernel allocation would grant. Baseline and EK
                // launches are static.
                let max_workers = match scheme {
                    Scheme::AccelOs | Scheme::AccelOsNaive => {
                        let req = self.wg_req(spec);
                        let alloc = accelos::resource::compute_shares(
                            &self.device,
                            &[ResourceDemand {
                                wg_threads: req.threads,
                                wg_local_mem: req.local_mem,
                                wg_regs: req.regs_total(),
                                original_wgs: spec.default_wgs,
                            }],
                        );
                        Some(alloc.wgs_per_kernel[0])
                    }
                    _ => None,
                };
                KernelLaunch {
                    name: spec.name.to_string(),
                    arrival: 0,
                    req: self.wg_req(spec),
                    mem_intensity: spec.mem_intensity,
                    plan,
                    max_workers,
                }
            })
            .zip(arrivals)
            .map(|(mut l, &t)| {
                l.arrival = t;
                l
            })
            .collect()
    }

    /// Build the machine launches for a concurrent batch (all at time 0).
    fn launches(
        &self,
        scheme: Scheme,
        workload: &[&'static KernelSpec],
        seed: u64,
    ) -> Vec<KernelLaunch> {
        self.launches_at(scheme, workload, &vec![0; workload.len()], seed)
    }

    fn simulate(&self, launches: Vec<KernelLaunch>) -> SimReport {
        let mut sim = Simulator::new(self.device.clone());
        for l in launches {
            sim.add_launch(l);
        }
        sim.run()
    }

    /// Isolated execution time of one kernel under `scheme` (cached).
    pub fn isolated_time(&self, scheme: Scheme, spec: &'static KernelSpec, seed: u64) -> u64 {
        if let Some(&t) = self
            .isolated
            .lock()
            .unwrap()
            .get(&(scheme, spec.name, seed))
        {
            return t;
        }
        let report = self.simulate(self.launches(scheme, &[spec], seed));
        let t = report.total_time().max(1);
        self.isolated
            .lock()
            .unwrap()
            .insert((scheme, spec.name, seed), t);
        t
    }

    /// Run one workload under one scheme, all requests arriving at once.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is empty.
    pub fn run_workload(
        &self,
        scheme: Scheme,
        workload: &[&'static KernelSpec],
        seed: u64,
    ) -> WorkloadRun {
        let arrivals = vec![0; workload.len()];
        self.run_workload_with_arrivals(scheme, workload, &arrivals, seed)
    }

    /// Run one workload with *staggered* arrivals — tenants joining (and
    /// leaving, as they finish) a shared node dynamically, the scenario §9
    /// says static code-merging approaches cannot handle.
    ///
    /// Shares are planned against the whole tenancy (the steady state an
    /// iterative application converges to); the simulator's elastic growth
    /// covers the join/leave transients.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is empty or the lengths differ.
    pub fn run_workload_with_arrivals(
        &self,
        scheme: Scheme,
        workload: &[&'static KernelSpec],
        arrivals: &[u64],
        seed: u64,
    ) -> WorkloadRun {
        assert!(!workload.is_empty(), "workloads need at least one kernel");
        assert_eq!(workload.len(), arrivals.len(), "one arrival per kernel");
        let report = self.simulate(self.launches_at(scheme, workload, arrivals, seed));
        let names: Vec<&'static str> = workload.iter().map(|s| s.name).collect();
        let shared: Vec<u64> = report
            .kernels
            .iter()
            .map(|k| k.turnaround().max(1))
            .collect();
        let alone: Vec<u64> = workload
            .iter()
            .map(|s| self.isolated_time(scheme, s, seed))
            .collect();
        let busy: Vec<IntervalSet> = report
            .kernels
            .iter()
            .map(|k| IntervalSet::from_raw(k.busy_intervals.clone()))
            .collect();
        WorkloadRun {
            names,
            shared,
            alone,
            busy,
            total_time: report.total_time().max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(name: &str) -> &'static KernelSpec {
        KernelSpec::by_name(name).expect("kernel exists")
    }

    #[test]
    fn baseline_pair_serialises_and_is_unfair() {
        // A long kernel first, a short one behind it: the short one's
        // slowdown is dominated by the wait (paper §2.3).
        let r = Runner::new(DeviceConfig::k20m());
        let run = r.run_workload(
            Scheme::Baseline,
            &[k("mri-q_ComputeQ"), k("histo_final")],
            1,
        );
        assert!(run.unfairness() > 1.5, "baseline U = {}", run.unfairness());
        assert!(run.overlap() < 0.3, "baseline overlap = {}", run.overlap());
    }

    #[test]
    fn accelos_pair_is_fair_and_overlaps() {
        let r = Runner::new(DeviceConfig::k20m());
        let run = r.run_workload(Scheme::AccelOs, &[k("sgemm"), k("stencil")], 1);
        assert!(run.unfairness() < 2.0, "accelOS U = {}", run.unfairness());
        assert!(run.overlap() > 0.5, "accelOS overlap = {}", run.overlap());
    }

    #[test]
    fn accelos_is_fairer_than_baseline_on_mixed_pairs() {
        // Pairs whose first kernel is long, so baseline serialisation
        // punishes the second (the paper's motivating scenario).
        let r = Runner::new(DeviceConfig::k20m());
        for pair in [
            ["lbm", "histo_final"],
            ["tpacf", "spmv"],
            ["mri-q_ComputeQ", "bfs"],
        ] {
            let wl = [k(pair[0]), k(pair[1])];
            let base = r.run_workload(Scheme::Baseline, &wl, 3);
            let acc = r.run_workload(Scheme::AccelOs, &wl, 3);
            assert!(
                acc.unfairness() < base.unfairness(),
                "{pair:?}: accelOS {} vs baseline {}",
                acc.unfairness(),
                base.unfairness()
            );
        }
    }

    #[test]
    fn isolated_times_are_cached_and_deterministic() {
        let r = Runner::new(DeviceConfig::k20m());
        let a = r.isolated_time(Scheme::Baseline, k("bfs"), 5);
        let b = r.isolated_time(Scheme::Baseline, k("bfs"), 5);
        assert_eq!(a, b);
        let c = r.isolated_time(Scheme::Baseline, k("bfs"), 6);
        assert_ne!(a, c, "different cost draws give different times");
    }

    #[test]
    fn metrics_are_computable_for_all_schemes() {
        let r = Runner::new(DeviceConfig::k20m());
        let wl = [k("histo_final"), k("mri-q_ComputePhiMag")];
        for scheme in Scheme::all() {
            let run = r.run_workload(scheme, &wl, 9);
            assert!(run.unfairness() >= 1.0);
            assert!((0.0..=1.0).contains(&run.overlap()));
            assert!(run.stp() > 0.0);
            assert!(run.antt() >= 1.0 - 1e9);
            assert!(run.worst_antt() >= run.antt() - 1e-9);
            assert_eq!(run.names.len(), 2);
        }
    }
}
