//! `repro` — regenerate any table or figure of the accelOS evaluation.
//!
//! ```text
//! repro <experiment>... [--device k20m|r9|both] [--full]
//!       [--policies name,name,...] [--reference name]
//!       [--pairs N] [--n4 N] [--n8 N] [--reps N] [--seed N]
//!       [--jobs N] [--sequential] [--profile-store FILE]
//!       [--shard i/n [--out FILE]]
//! repro merge --inputs FILE,FILE,... [<sweep figures>...] [--reference name]
//! repro lint [--deny-warnings]
//! repro disasm <kernel>
//!
//! experiments: fig2 fig9 fig10 fig11 fig12 fig13 fig14 table1 table2
//!              fig15 small ablation dynamic priority deadline faults
//!              chaos all
//!
//! `chaos` runs the chaos soak sweep (independent × correlated × abort
//! fault mixes with the fault-plane invariants asserted at every cell);
//! `--smoke` sweeps the CI-sized grid instead of the full one.
//! ```
//!
//! `lint` runs the accelcheck static analyses (race verdicts, barrier
//! divergence, structural lints) over the bundled Parboil kernels and
//! prints the report; `--deny-warnings` exits nonzero on any warning or
//! error, which is how CI gates the kernel set.
//!
//! `disasm` lowers one bundled Parboil kernel to the bytecode tier at its
//! bundled launch shape (scale 1, seed 7) and prints both the raw
//! lowering and the launch-optimized program — the form that
//! `tests/golden/bytecode_spmv.txt` pins for spmv.
//!
//! `--exec-tier tree|bytecode|bytecode-opt` selects the functional-plane
//! execution tier for every kernel launch of the run (it sets
//! `ACCELOS_EXEC_TIER`, which `clrt` consults at launch time; the default
//! is `bytecode-opt`). Every figure and table is tier-invariant — the
//! tiers are pinned bit-identical — so the flag exists to cross-check
//! exactly that and to time the tiers against each other.
//!
//! Defaults use [`SweepConfig::default_scale`]; `--full` switches to the
//! paper-sized sweep (625 pairs, 16384 4-kernel and 32768 8-kernel
//! workloads, 20 repetitions — hours of CPU time, so consider `--jobs`).
//!
//! `--policies` sweeps any comma-separated [`PolicySet`] (built-ins:
//! `baseline`, `ek`, `accelos-naive`, `accelos`, `accelos-guided`,
//! `accelos-weighted[:w1:w2:...]`, `accelos-priority[:n]`) through the
//! sweep figures and the dynamic-tenancy / priority experiments. Ratio
//! figures (fig10/fig13/fig14, dynamic, priority) divide by the *first*
//! listed policy unless `--reference <name>` names another member of the
//! set; the reference row/column always renders explicitly (marked `*`).
//! Defaults to the paper's four schemes.
//!
//! `priority` replays the mixed-priority arrival scenario (two batch
//! tenants at t=0, a premium tenant joining mid-run) through the
//! cohort-planned preemptive path; without `--policies` it compares
//! `accelos` (the premium request queues) against `accelos-priority`
//! (batch workers are reclaimed at chunk boundaries).
//!
//! `deadline` scores the same episode against a deadline of 2x the
//! premium tenant's isolated time and reports each policy's hold rate
//! over several cost-draw seeds; without `--policies` it compares
//! `accelos` (misses), `accelos-priority` (holds by flooring every
//! victim) and `accelos-deadline` (holds while reclaiming just enough).
//!
//! `faults` re-runs the same episode under increasingly faulty machines
//! (seeded, repairable CU failures plus straggler windows, identical
//! across policies) and reports each policy's throughput-degradation
//! curve, recovery latency and the exactly-once retry witness — every
//! in-flight group a failure rolls back must re-execute exactly once.
//!
//! Sweeps shard their `(workload × repetition)` grid across a thread pool
//! sized to the host (override with `--jobs N`; `--sequential` is
//! shorthand for `--jobs 1`). Thread count never changes the numbers:
//! per-repetition seeds derive from `(workload, rep)`, not from iteration
//! order, and results stream into per-workload accumulators in
//! deterministic repetition order.
//!
//! `--profile-store FILE` persists the calibration plane across runs:
//! the file (missing = fresh store, malformed = hard error) seeds the
//! runner's [`ProfileStore`] before any experiment, and everything
//! learned — each declared estimate index's isolated time, keyed by
//! `(kernel, shape-class)` — is saved back afterwards. A warmed store
//! lets estimate-driven policies (`accelos-deadline`) read calibrated
//! isolated times instead of re-simulating solo runs, and lets the
//! arrival planner prune drained victims. With `--device both` each
//! device reads and writes its own `FILE.<device>` file, because
//! isolated times are device-specific.
//!
//! For paper-scale runs, `--shard i/n` partitions the workload grids
//! across **independent processes**: each shard computes every `n`th
//! workload and writes its metrics (bit-exact float encoding) to a shard
//! file; `repro merge --inputs f0,f1,…` reassembles them and renders the
//! sweep figures byte-identically to an unsharded run with the same
//! flags. See `accel_harness::shard` for the dataflow.

use accel_harness::chaos::{chaos_soak, render_chaos, ChaosGrid};
use accel_harness::experiments::{
    chunk_ablation, deadline_hold_rates, deadline_scenario, device_sweeps, dynamic_tenancy,
    fault_scenario, fig11, fig15, fig2, priority_preemption, render_ablation, render_deadline,
    render_dynamic_tenancy, render_fault_scenario, render_fig11, render_fig15,
    render_priority_preemption, render_small_kernels, small_kernels, DeviceSweeps,
};
use accel_harness::runner::Runner;
use accel_harness::shard::{self, ShardSpec};
use accel_harness::workloads::SweepConfig;
use accelos::policy::PolicySet;
use gpu_sim::DeviceConfig;
use sched_metrics::profile::ProfileStore;

struct Options {
    experiments: Vec<String>,
    devices: Vec<DeviceConfig>,
    policies: PolicySet,
    policies_given: bool,
    /// Name of the ratio-figure reference policy, if given. Resolved
    /// against the set each experiment actually sweeps (`priority`
    /// defaults to `accelos,accelos-priority` when `--policies` is
    /// absent, so a global index would validate against the wrong set).
    reference: Option<String>,
    cfg: SweepConfig,
    /// `--shard i/n`: compute only this stripe of the sweep grids and
    /// write it to `out` instead of rendering figures.
    shard: Option<ShardSpec>,
    /// `--out <path>` for the shard file (defaults to
    /// `shard-<i>-of-<n>.accelshard`).
    out: Option<String>,
    /// `merge --inputs a,b,...`: shard files to reassemble.
    inputs: Vec<String>,
    /// `lint --deny-warnings`: exit nonzero on any warning or error.
    deny_warnings: bool,
    /// `chaos --smoke`: sweep the CI-sized fault grid instead of the
    /// full one.
    smoke: bool,
    /// `--profile-store <path>`: calibration-plane persistence. The file
    /// is loaded (if present) into the device's [`Runner`] before any
    /// experiment runs and saved back — with everything learned this
    /// session — afterwards. With `--device both`, each device gets its
    /// own file (`<path>.<device>`), since isolated times are
    /// device-specific.
    profile_store: Option<String>,
}

/// Position of `--reference` in the set `experiment` sweeps (0 when the
/// flag was not given); exits with a usage error for names outside it.
fn reference_index(set: &PolicySet, reference: Option<&str>) -> usize {
    match reference {
        None => 0,
        Some(name) => set.index_of(name).unwrap_or_else(|| {
            eprintln!(
                "repro: --reference `{name}` is not in the swept set ({})",
                set.names().join(",")
            );
            std::process::exit(2);
        }),
    }
}

fn parse_args() -> Result<Options, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments = Vec::new();
    let mut device = "k20m".to_string();
    let mut policies = PolicySet::paper();
    let mut policies_given = false;
    let mut reference: Option<String> = None;
    let mut cfg = SweepConfig::default_scale();
    let mut shard: Option<ShardSpec> = None;
    let mut out: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut deny_warnings = false;
    let mut smoke = false;
    let mut profile_store: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<usize, String> {
            *i += 1;
            args.get(*i)
                .ok_or_else(|| format!("missing value after {}", args[*i - 1]))?
                .parse::<usize>()
                .map_err(|e| format!("bad number after {}: {e}", args[*i - 1]))
        };
        match args[i].as_str() {
            "--device" => {
                i += 1;
                device = args.get(i).ok_or("missing value after --device")?.clone();
            }
            "--policies" => {
                i += 1;
                let spec = args.get(i).ok_or("missing value after --policies")?;
                policies = PolicySet::parse(spec)?;
                policies_given = true;
            }
            "--reference" => {
                i += 1;
                reference = Some(
                    args.get(i)
                        .ok_or("missing value after --reference")?
                        .clone(),
                );
            }
            "--shard" => {
                i += 1;
                let spec = args.get(i).ok_or("missing value after --shard")?;
                shard = Some(ShardSpec::parse(spec)?);
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).ok_or("missing value after --out")?.clone());
            }
            "--inputs" => {
                i += 1;
                let list = args.get(i).ok_or("missing value after --inputs")?;
                inputs.extend(list.split(',').map(str::to_string));
            }
            "--deny-warnings" => deny_warnings = true,
            "--smoke" => smoke = true,
            "--profile-store" => {
                i += 1;
                profile_store = Some(
                    args.get(i)
                        .ok_or("missing value after --profile-store")?
                        .clone(),
                );
            }
            "--exec-tier" => {
                i += 1;
                let tier = args.get(i).ok_or("missing value after --exec-tier")?;
                match tier.as_str() {
                    "tree" | "bytecode" | "bytecode-opt" => {
                        std::env::set_var("ACCELOS_EXEC_TIER", tier)
                    }
                    other => {
                        return Err(format!(
                            "unknown exec tier `{other}` (tree | bytecode | bytecode-opt)"
                        ))
                    }
                }
            }
            "--full" => cfg = SweepConfig::full(),
            "--pairs" => cfg.pairs = take(&mut i)?,
            "--n4" => cfg.n4 = take(&mut i)?,
            "--n8" => cfg.n8 = take(&mut i)?,
            "--reps" => cfg.reps = take(&mut i)? as u32,
            "--seed" => cfg.seed = take(&mut i)? as u64,
            "--jobs" => {
                let n = take(&mut i)?.max(1);
                std::env::set_var("RAYON_NUM_THREADS", n.to_string());
            }
            "--sequential" => std::env::set_var("RAYON_NUM_THREADS", "1"),
            exp if !exp.starts_with('-') => experiments.push(exp.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    let devices = match device.as_str() {
        "k20m" | "nvidia" => vec![DeviceConfig::k20m()],
        "r9" | "amd" => vec![DeviceConfig::r9_295x2()],
        "both" => vec![DeviceConfig::k20m(), DeviceConfig::r9_295x2()],
        other => return Err(format!("unknown device `{other}` (k20m | r9 | both)")),
    };
    if shard.is_some() && experiments.iter().any(|e| e == "merge") {
        return Err("--shard and merge are different phases; run them separately".into());
    }
    if out.is_some() && shard.is_none() {
        return Err("--out names the shard file and needs --shard i/n".into());
    }
    Ok(Options {
        experiments,
        devices,
        policies,
        policies_given,
        reference,
        cfg,
        shard,
        out,
        inputs,
        deny_warnings,
        smoke,
        profile_store,
    })
}

fn wants(experiments: &[String], name: &str) -> bool {
    experiments.iter().any(|e| e == name || e == "all")
}

fn entries_noun(n: usize) -> &'static str {
    if n == 1 {
        "entry"
    } else {
        "entries"
    }
}

/// The set the `priority` experiment sweeps: `--policies` when given,
/// otherwise the natural queueing-vs-preemption comparison.
fn priority_set(opts: &Options) -> PolicySet {
    if opts.policies_given {
        opts.policies.clone()
    } else {
        PolicySet::parse("accelos,accelos-priority").expect("builtin names")
    }
}

/// The set the `deadline` experiment sweeps: `--policies` when given,
/// otherwise queueing vs all-or-floor preemption vs just-enough
/// reclamation.
fn deadline_set(opts: &Options) -> PolicySet {
    if opts.policies_given {
        opts.policies.clone()
    } else {
        PolicySet::parse("accelos,accelos-priority,accelos-deadline").expect("builtin names")
    }
}

/// The set the `faults` experiment sweeps: `--policies` when given,
/// otherwise the queueing-vs-preemption comparison (the interesting
/// question is whether preemptive replanning survives capacity loss).
fn faults_set(opts: &Options) -> PolicySet {
    if opts.policies_given {
        opts.policies.clone()
    } else {
        PolicySet::parse("accelos,accelos-priority").expect("builtin names")
    }
}

/// The set the `chaos` experiment sweeps: `--policies` when given,
/// otherwise equal shares plus both premium-exempting policies, so the
/// correlated-loss coherence rule (premium scales too once ≥25% of the
/// fleet vanishes at once) is exercised by default.
fn chaos_set(opts: &Options) -> PolicySet {
    if opts.policies_given {
        opts.policies.clone()
    } else {
        PolicySet::parse("accelos,accelos-priority,accelos-sla").expect("builtin names")
    }
}

/// Fail fast on a bad `--reference` before any sweeping starts: validate
/// the name against the set of **every** requested ratio experiment, so a
/// later experiment cannot abort the run after minutes of compute.
fn validate_reference(opts: &Options) {
    let Some(name) = opts.reference.as_deref() else {
        return;
    };
    let exps = &opts.experiments;
    if needs_sweep(exps) || wants(exps, "dynamic") {
        reference_index(&opts.policies, Some(name));
    }
    if wants(exps, "priority") {
        reference_index(&priority_set(opts), Some(name));
    }
}

/// The sweep-projection experiment names. One shared list — the
/// unsharded path, `--shard` and `merge` all derive from it, so the
/// byte-identity contract between `merge` and an unsharded run cannot
/// be broken by updating one copy and not another.
const SWEEP_FIGS: [&str; 7] = [
    "fig9", "fig10", "fig12", "fig13", "fig14", "table1", "table2",
];

fn needs_sweep(experiments: &[String]) -> bool {
    SWEEP_FIGS.iter().any(|e| wants(experiments, e))
}

/// Render the requested sweep views of one device — the single code
/// path behind both the unsharded figures and `merge`'s reassembled
/// ones (CI diffs the two stdouts byte-for-byte).
fn render_sweep_views(ds: &DeviceSweeps, exps: &[String]) {
    if wants(exps, "fig9") {
        println!("{}", ds.fig9());
    }
    if wants(exps, "fig10") {
        println!("{}", ds.fig10());
    }
    if wants(exps, "fig12") {
        println!("{}", ds.fig12());
    }
    if wants(exps, "fig13") {
        println!("{}", ds.fig13());
    }
    if wants(exps, "fig14") {
        println!("{}", ds.fig14());
    }
    if wants(exps, "table1") || wants(exps, "table2") {
        println!("{}", ds.table_stp_antt());
    }
}

/// Position of `--reference` among the policy `names` recorded in shard
/// files (merge has no [`PolicySet`] to resolve against).
fn reference_index_names(names: &[String], reference: Option<&str>) -> usize {
    match reference {
        None => 0,
        Some(name) => names.iter().position(|n| n == name).unwrap_or_else(|| {
            eprintln!(
                "repro: --reference `{name}` is not in the sharded set ({})",
                names.join(",")
            );
            std::process::exit(2);
        }),
    }
}

/// `--shard i/n`: compute this process's stripe of the three sweep grids
/// for every requested device and write the shard file. No figures are
/// rendered — reassembling and rendering is `merge`'s job, so stdout
/// stays empty and the run composes with shell parallelism.
fn run_shard(opts: &Options, spec: ShardSpec) {
    // A shard always computes the three sweep grids and nothing else;
    // say so when the command line names experiments the shard file
    // cannot carry, instead of silently dropping them.
    let ignored: Vec<&str> = opts
        .experiments
        .iter()
        .map(String::as_str)
        .filter(|e| *e != "all" && !SWEEP_FIGS.contains(e))
        .collect();
    if !ignored.is_empty() {
        eprintln!(
            "repro: note: --shard computes only the sweep grids; ignoring {}",
            ignored.join(", ")
        );
    }
    let devices: Vec<shard::DeviceShard> = opts
        .devices
        .iter()
        .map(|device| {
            let runner = Runner::new(device.clone());
            eprintln!(
                "[shard {}/{}: sweeping every {}th workload of {} pairs, {} x4, {} x8, \
                 {} reps, policies {} on {}…]",
                spec.index,
                spec.count,
                spec.count,
                opts.cfg.pairs,
                opts.cfg.n4,
                opts.cfg.n8,
                opts.cfg.reps,
                opts.policies.names().join(","),
                device.name
            );
            shard::compute_shard(&runner, &opts.policies, &opts.cfg, spec)
        })
        .collect();
    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("shard-{}-of-{}.accelshard", spec.index, spec.count));
    let text = shard::render_shard_file(spec, &opts.cfg, &devices);
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("repro: cannot write shard file `{path}`: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "[shard {}/{} written to {path}; reassemble with `repro merge --inputs …`]",
        spec.index, spec.count
    );
}

/// `merge --inputs f0,f1,…`: reassemble shard files into full sweeps and
/// render the requested sweep figures byte-identically to an unsharded
/// run with the same flags.
fn run_merge(opts: &Options) {
    if opts.inputs.is_empty() {
        eprintln!("repro: merge needs `--inputs shard0,shard1,…`");
        std::process::exit(2);
    }
    let files: Vec<shard::ShardFile> = opts
        .inputs
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("repro: cannot read shard file `{path}`: {e}");
                std::process::exit(1);
            });
            shard::parse_shard_file(&text).unwrap_or_else(|e| {
                eprintln!("repro: `{path}` is not a valid shard file: {e}");
                std::process::exit(1);
            })
        })
        .collect();
    let merged = shard::merge_shards(&files).unwrap_or_else(|e| {
        eprintln!("repro: cannot merge shards: {e}");
        std::process::exit(1);
    });
    // Figure selection: the requested experiments, or every sweep view
    // when the command line is a plain `repro merge --inputs …`. A list
    // that names only non-sweep experiments stays as given — it renders
    // nothing beyond the device headers (with a note), never the full
    // figure dump the caller did not ask for.
    let only_merge = opts.experiments.iter().all(|e| e == "merge");
    let exps: Vec<String> = if only_merge {
        vec!["all".to_string()]
    } else {
        opts.experiments.clone()
    };
    let ignored: Vec<&str> = opts
        .experiments
        .iter()
        .map(String::as_str)
        .filter(|e| *e != "merge" && *e != "all" && !SWEEP_FIGS.contains(e))
        .collect();
    if !ignored.is_empty() {
        eprintln!(
            "repro: note: merge renders only the sweep views; ignoring {}",
            ignored.join(", ")
        );
    }
    // Fail a bad --reference before any stdout, like the unsharded
    // path's up-front validate_reference.
    for (_, sizes) in &merged {
        let _ = reference_index_names(&sizes[0].policy_names, opts.reference.as_deref());
    }
    for (device, sizes) in merged {
        println!("=== {device} ===\n");
        let reference = reference_index_names(&sizes[0].policy_names, opts.reference.as_deref());
        let ds = DeviceSweeps { sizes, reference };
        render_sweep_views(&ds, &exps);
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("repro: {e}");
            eprintln!(
                "usage: repro <fig2|fig9|fig10|fig11|fig12|fig13|fig14|table1|table2|fig15|small|ablation|dynamic|priority|deadline|faults|chaos|all>... \
                 [--device k20m|r9|both] [--policies name,name,...] [--reference name] [--full] \
                 [--pairs N] [--n4 N] [--n8 N] [--reps N] [--seed N] \
                 [--jobs N] [--sequential] [--profile-store FILE] \
                 [--shard i/n [--out FILE]] \
                 [--exec-tier tree|bytecode|bytecode-opt]\n\
                 usage: repro merge --inputs FILE,FILE,... [<sweep figures>...] [--reference name]\n\
                 usage: repro lint [--deny-warnings]\n\
                 usage: repro disasm <kernel>"
            );
            eprintln!(
                "  --reference <name>  divide ratio figures (fig10/fig13/fig14, dynamic, priority) \
                 by this policy of the set instead of the first; the reference row renders \
                 explicitly, marked `*`"
            );
            eprintln!(
                "  --shard i/n         compute only every nth workload of the sweep grids and \
                 write a shard file (--out, default shard-i-of-n.accelshard) instead of figures; \
                 `merge` reassembles shard files bit-identically to an unsharded run"
            );
            eprintln!(
                "  --profile-store FILE  load (if present) and save back the calibration-plane \
                 profile store; estimate-driven policies read isolated times from it instead of \
                 re-simulating solo runs (with --device both: one FILE.<device> per device)"
            );
            std::process::exit(2);
        }
    };
    if let Some(pos) = opts.experiments.iter().position(|e| e == "disasm") {
        // `disasm` is its own phase: the word after it names the kernel.
        let Some(kernel) = opts.experiments.get(pos + 1) else {
            eprintln!(
                "repro disasm: name a bundled kernel (e.g. `repro disasm spmv`); \
                 see `repro lint` for the kernel list"
            );
            std::process::exit(2);
        };
        match accel_harness::disasm::disassemble_parboil(kernel) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("repro disasm: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if opts.experiments.iter().any(|e| e == "lint") {
        // `lint` is its own phase, like `merge`: sweep the bundled Parboil
        // kernels through accelcheck and print the report. With
        // `--deny-warnings`, any warning or error fails the run (the CI
        // gate).
        let summary = accel_harness::lintreport::lint_parboil();
        print!("{}", summary.report);
        if opts.deny_warnings && summary.deny_warnings_fails() {
            eprintln!(
                "repro lint: {} error(s) and {} warning(s) with --deny-warnings",
                summary.errors, summary.warnings
            );
            std::process::exit(1);
        }
        return;
    }
    if opts.experiments.iter().any(|e| e == "merge") {
        run_merge(&opts);
        return;
    }
    if let Some(spec) = opts.shard {
        run_shard(&opts, spec);
        return;
    }
    let exps = &opts.experiments;
    validate_reference(&opts);

    // The sweep figures and `dynamic` honour --policies; the remaining
    // experiments reproduce fixed paper comparisons. Say so rather than
    // silently rendering baseline/EK/accelOS columns under a custom set.
    if opts.policies_given {
        let fixed: Vec<&str> = ["fig2", "fig11", "fig15", "small", "ablation"]
            .into_iter()
            .filter(|e| wants(exps, e))
            .collect();
        if !fixed.is_empty() {
            eprintln!(
                "repro: note: {} use the paper's fixed policies and ignore --policies \
                 (it applies to fig9/fig10/fig12/fig13/fig14/table1/table2/dynamic)",
                fixed.join(", ")
            );
        }
    }

    for device in &opts.devices {
        let runner = Runner::new(device.clone());
        let store_path = opts.profile_store.as_ref().map(|path| {
            // Isolated times are device-specific, so a multi-device run
            // keeps one file per device rather than mixing calibrations.
            if opts.devices.len() == 1 {
                path.clone()
            } else {
                format!("{path}.{}", device.name)
            }
        });
        if let Some(path) = &store_path {
            // A missing file is a fresh store (first session); a present
            // but malformed one is a hard error — silently discarding a
            // corrupt calibration would change plans without a trace.
            match ProfileStore::load(path) {
                Ok(store) => {
                    eprintln!(
                        "[profile store: {} {} from {path}]",
                        store.len(),
                        entries_noun(store.len())
                    );
                    runner.set_profile_store(store);
                }
                Err(_) if !std::path::Path::new(path).exists() => {
                    eprintln!("[profile store: {path} not found, starting fresh]");
                    runner.set_profile_store(ProfileStore::new());
                }
                Err(e) => {
                    eprintln!("repro: {e}");
                    std::process::exit(1);
                }
            }
        }
        println!("=== {} ===\n", device.name);

        if wants(exps, "fig2") {
            println!("{}", fig2(&runner, opts.cfg.seed));
        }

        let sweeps: Option<DeviceSweeps> = if needs_sweep(exps) {
            eprintln!(
                "[sweeping {} pairs, {} x4, {} x8, {} reps, policies {}…]",
                opts.cfg.pairs,
                opts.cfg.n4,
                opts.cfg.n8,
                opts.cfg.reps,
                opts.policies.names().join(",")
            );
            Some(device_sweeps(
                &runner,
                &opts.policies,
                &opts.cfg,
                reference_index(&opts.policies, opts.reference.as_deref()),
            ))
        } else {
            None
        };
        if let Some(ds) = &sweeps {
            render_sweep_views(ds, exps);
        }

        if wants(exps, "fig11") {
            println!(
                "{}",
                render_fig11(&fig11(&runner, opts.cfg.seed), &device.name)
            );
        }
        if wants(exps, "fig15") {
            println!(
                "{}",
                render_fig15(&fig15(&runner, opts.cfg.seed), &device.name)
            );
        }
        if wants(exps, "small") {
            println!(
                "{}",
                render_small_kernels(&small_kernels(device, opts.cfg.seed), &device.name)
            );
        }
        if wants(exps, "ablation") {
            println!(
                "{}",
                render_ablation(&chunk_ablation(device, opts.cfg.seed), &device.name)
            );
        }
        if wants(exps, "dynamic") {
            println!(
                "{}",
                render_dynamic_tenancy(
                    &dynamic_tenancy(&runner, &opts.policies, opts.cfg.seed),
                    reference_index(&opts.policies, opts.reference.as_deref()),
                    &device.name
                )
            );
        }
        if wants(exps, "deadline") {
            let set = deadline_set(&opts);
            // Hold rates over 8 cost-draw seeds starting at the
            // configured one; the rendered episode doubles as the first
            // sample so the base seed is simulated only once.
            let scenario = deadline_scenario(&runner, &set, opts.cfg.seed);
            let extra: Vec<u64> = (1..8).map(|i| opts.cfg.seed.wrapping_add(i)).collect();
            let rates: Vec<(String, f64)> = deadline_hold_rates(&runner, &set, &extra)
                .into_iter()
                .zip(&scenario.rows)
                .map(|((label, rate), row)| {
                    let held = rate * extra.len() as f64 + if row.met { 1.0 } else { 0.0 };
                    (label, held / (extra.len() + 1) as f64)
                })
                .collect();
            println!("{}", render_deadline(&scenario, &rates, &device.name));
        }
        if wants(exps, "faults") {
            let set = faults_set(&opts);
            println!(
                "{}",
                render_fault_scenario(&fault_scenario(&runner, &set, opts.cfg.seed), &device.name)
            );
        }
        if wants(exps, "chaos") {
            let set = chaos_set(&opts);
            let grid = if opts.smoke {
                ChaosGrid::smoke()
            } else {
                ChaosGrid::full()
            };
            println!(
                "{}",
                render_chaos(
                    &chaos_soak(&runner, &set, &grid, opts.cfg.seed),
                    &device.name
                )
            );
        }
        if wants(exps, "priority") {
            // Without --policies, the natural comparison is queueing
            // accelOS against the preemptive policy (the paper set has no
            // preemption to show). --reference resolves against whichever
            // set the experiment actually sweeps.
            let set = priority_set(&opts);
            println!(
                "{}",
                render_priority_preemption(
                    &priority_preemption(&runner, &set, opts.cfg.seed),
                    reference_index(&set, opts.reference.as_deref()),
                    &device.name
                )
            );
        }
        if let Some(path) = &store_path {
            let store = runner
                .take_profile_store()
                .expect("store attached above and nothing detaches it");
            if let Err(e) = store.save(path) {
                eprintln!("repro: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "[profile store: {} {} saved to {path}]",
                store.len(),
                entries_noun(store.len())
            );
        }
    }
}
