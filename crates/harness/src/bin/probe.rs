//! Calibration probe (internal).
use accel_harness::runner::Runner;
use accelos::policy::PolicySet;
use gpu_sim::DeviceConfig;
use parboil::KernelSpec;

fn probe_sweep() {
    use accel_harness::experiments::{device_sweeps, DeviceSweeps};
    use accel_harness::workloads::SweepConfig;
    let cfg = SweepConfig {
        pairs: 80,
        n4: 40,
        n8: 30,
        reps: 1,
        seed: 2016,
    };
    let r = Runner::new(DeviceConfig::k20m());
    let ds: DeviceSweeps = device_sweeps(&r, &PolicySet::paper(), &cfg, 0);
    println!("{}", ds.fig9());
    println!("{}", ds.fig10());
    println!("{}", ds.fig12());
    println!("{}", ds.fig13());
    println!("{}", ds.fig14());
    println!("{}", ds.table_stp_antt());
}

fn main() {
    if std::env::args().any(|a| a == "sweep") {
        probe_sweep();
        return;
    }
    let r = Runner::new(DeviceConfig::k20m());
    let baseline = PolicySet::builtin("baseline").unwrap();
    let naive = PolicySet::builtin("accelos-naive").unwrap();
    let opt = PolicySet::builtin("accelos").unwrap();
    println!(
        "{:<30} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "kernel", "base", "naive", "opt", "n/b", "o/b"
    );
    for spec in KernelSpec::all() {
        let b = r.isolated_time(baseline.as_ref(), spec, 5) as f64;
        let n = r.isolated_time(naive.as_ref(), spec, 5) as f64;
        let o = r.isolated_time(opt.as_ref(), spec, 5) as f64;
        println!(
            "{:<30} {:>10.0} {:>10.0} {:>10.0} {:>8.3} {:>8.3}",
            spec.name,
            b,
            n,
            o,
            b / n,
            b / o
        );
    }
    // insn counts + chunks
    for spec in KernelSpec::all() {
        let (_, prof) = r.db().get(spec.name).unwrap();
        println!("insns {:<30} {:>5}", spec.name, prof.insn_count);
    }
    // fig2 pieces
    let wl: Vec<_> = ["bfs", "cutcp", "stencil", "tpacf"]
        .iter()
        .map(|n| KernelSpec::by_name(n).unwrap())
        .collect();
    for policy in PolicySet::parse("baseline,ek,accelos").unwrap().iter() {
        let run = r.run_workload(policy.as_ref(), &wl, 1);
        println!(
            "{}: total={} U={:.2} overlap={:.2} slow={:?}",
            policy.name(),
            run.total_time,
            run.unfairness(),
            run.overlap(),
            run.slowdowns()
                .iter()
                .map(|x| (x * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
}
